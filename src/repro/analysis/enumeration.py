"""Fraud-instance enumeration over time (Figure 15).

Figure 15 of the paper shows, per timespan over a week of traffic, how many
fraud instances Spade newly identified and of which pattern.  The
reproduction replays the increment stream span by span, enumerates the
dense communities after each span (Appendix C.2) and attributes each
enumerated instance to the injected pattern it overlaps most.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.communities import best_match
from repro.core.spade import Spade
from repro.peeling.semantics import PeelingSemantics
from repro.workloads.datasets import Dataset

__all__ = ["TimespanCount", "EnumerationTimeline", "enumerate_over_time"]


@dataclass(frozen=True)
class TimespanCount:
    """Instances newly identified within one timespan."""

    index: int
    start: float
    end: float
    #: pattern name -> number of newly identified instances.
    counts: Dict[str, int]
    #: total dense instances enumerated (labelled or not).
    total_instances: int

    def total_labelled(self) -> int:
        """Return the number of instances attributed to an injected pattern."""
        return sum(self.counts.values())


@dataclass
class EnumerationTimeline:
    """The Figure 15 series: per-timespan instance counts."""

    spans: List[TimespanCount] = field(default_factory=list)

    def patterns(self) -> List[str]:
        """Return every pattern observed in the timeline."""
        seen = []
        for span in self.spans:
            for pattern in span.counts:
                if pattern not in seen:
                    seen.append(pattern)
        return seen

    def series(self, pattern: str) -> List[int]:
        """Return the per-timespan counts of one pattern."""
        return [span.counts.get(pattern, 0) for span in self.spans]

    def normalised_series(self, pattern: str) -> List[float]:
        """Return counts normalised to the first non-zero timespan (as in Fig. 15)."""
        raw = self.series(pattern)
        base = next((v for v in raw if v > 0), 0)
        if base == 0:
            return [0.0 for _ in raw]
        return [v / base for v in raw]

    def as_rows(self) -> List[Dict[str, object]]:
        """Flatten for table rendering."""
        rows = []
        for span in self.spans:
            row: Dict[str, object] = {
                "timespan": f"T{span.index + 1}",
                "start": round(span.start, 1),
                "end": round(span.end, 1),
                "instances": span.total_instances,
            }
            row.update(span.counts)
            rows.append(row)
        return rows


def enumerate_over_time(
    dataset: Dataset,
    semantics: PeelingSemantics,
    num_spans: int = 28,
    max_instances: int = 5,
    min_f1: float = 0.3,
    min_density: Optional[float] = None,
    backend: Optional[str] = None,
) -> EnumerationTimeline:
    """Replay the increments in ``num_spans`` slices, enumerating after each.

    After every slice the current dense communities are enumerated; an
    enumerated instance is attributed to the injected pattern whose member
    set matches it best (F1 above ``min_f1``).  An instance is only counted
    in the first timespan it appears in ("newly identified"), matching the
    semantics of Figure 15.

    ``backend`` selects the graph storage (``None`` = process default).
    On the array backend each per-span enumeration runs over one immutable
    CSR snapshot (see :func:`repro.core.enumeration.enumerate_communities`),
    which is what keeps the 28-span replay tractable at Grab scale.
    """
    spade = Spade(semantics, backend=backend)
    spade.load_graph(dataset.initial_graph(semantics))
    if min_density is None:
        min_density = spade.detect().density

    truth = {c.label: c.members for c in dataset.fraud_communities}
    label_to_pattern = {c.label: c.pattern for c in dataset.fraud_communities}
    already_counted: set = set()

    start, end = dataset.increments.span()
    if end <= start:
        end = start + 1.0
    span_length = (end - start) / num_spans

    timeline = EnumerationTimeline()
    for index in range(num_spans):
        span_start = start + index * span_length
        span_end = start + (index + 1) * span_length
        window = dataset.increments.window(span_start, span_end if index < num_spans - 1 else end + 1.0)
        if len(window):
            spade.insert_batch_edges([e.as_update() for e in window])

        counts: Dict[str, int] = {}
        instances = spade.enumerate_frauds(max_instances=max_instances, min_density=min_density * 0.9)
        for instance in instances:
            match = best_match(instance.vertices, truth)
            if match is None or match.f1 < min_f1:
                continue
            if match.label in already_counted:
                continue
            already_counted.add(match.label)
            pattern = label_to_pattern[match.label]
            counts[pattern] = counts.get(pattern, 0) + 1
        timeline.spans.append(
            TimespanCount(
                index=index,
                start=span_start,
                end=span_end,
                counts=counts,
                total_instances=len(instances),
            )
        )
    return timeline
