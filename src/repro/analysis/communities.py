"""Community quality metrics against injected ground truth.

The paper evaluates effectiveness through prevention ratios and case
studies; because this reproduction *injects* its fraud communities it can
additionally report classic set-overlap metrics, which the tests use to
assert that the detector actually finds what was planted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Dict, Mapping, Optional

from repro.graph.graph import Vertex

__all__ = ["CommunityMatch", "match_communities", "best_match"]


@dataclass(frozen=True)
class CommunityMatch:
    """Overlap statistics between a detected and a ground-truth community."""

    label: str
    detected_size: int
    truth_size: int
    overlap: int

    @property
    def precision(self) -> float:
        """Fraction of detected vertices that are true members."""
        return self.overlap / self.detected_size if self.detected_size else 0.0

    @property
    def recall(self) -> float:
        """Fraction of true members that were detected."""
        return self.overlap / self.truth_size if self.truth_size else 0.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def jaccard(self) -> float:
        """Intersection over union."""
        union = self.detected_size + self.truth_size - self.overlap
        return self.overlap / union if union else 0.0


def match_communities(
    detected: AbstractSet[Vertex],
    truth: Mapping[str, AbstractSet[Vertex]],
) -> Dict[str, CommunityMatch]:
    """Compute overlap statistics of ``detected`` against every truth label."""
    matches = {}
    for label, members in truth.items():
        overlap = len(set(detected) & set(members))
        matches[label] = CommunityMatch(
            label=label,
            detected_size=len(detected),
            truth_size=len(members),
            overlap=overlap,
        )
    return matches


def best_match(
    detected: AbstractSet[Vertex],
    truth: Mapping[str, AbstractSet[Vertex]],
) -> Optional[CommunityMatch]:
    """Return the ground-truth community with the highest F1 against ``detected``."""
    matches = match_communities(detected, truth)
    if not matches:
        return None
    return max(matches.values(), key=lambda m: m.f1)
