"""Effectiveness analysis: how well the detected communities match reality.

The efficiency side of the evaluation lives in :mod:`repro.streaming` and
:mod:`repro.bench`; this subpackage covers the effectiveness side:

* :mod:`repro.analysis.communities` — precision / recall / F1 / Jaccard of
  a detected community against injected ground truth;
* :mod:`repro.analysis.casestudy` — the Figure 12/13 case-study timelines
  (real-time Spade vs the periodic static baseline, transactions that could
  have been prevented);
* :mod:`repro.analysis.enumeration` — fraud-instance counting per timespan
  (Figure 15).
"""

from repro.analysis.communities import CommunityMatch, match_communities, best_match
from repro.analysis.casestudy import CaseStudyResult, run_case_study
from repro.analysis.enumeration import EnumerationTimeline, enumerate_over_time

__all__ = [
    "CommunityMatch",
    "match_communities",
    "best_match",
    "CaseStudyResult",
    "run_case_study",
    "EnumerationTimeline",
    "enumerate_over_time",
]
