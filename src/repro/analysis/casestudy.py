"""Case studies: real-time Spade vs the periodic static baseline (Fig. 12/13).

Each case study in the paper follows the same script.  A fraud burst starts
at ``T0``.  The incremental detector (IncDG / IncDW / IncFD) recognises the
community at ``T1``, essentially as soon as enough of the burst has arrived
for it to become the densest subgraph.  The static baseline only recognises
it at ``T2``, the end of the *next* periodic from-scratch run — roughly one
period later.  Every transaction the community generates inside ``(T1, T2]``
could have been prevented by the real-time detector but not by the
baseline; the paper counts 720 / 71 / 1853 such transactions for the three
patterns.

:func:`run_case_study` reproduces that script on an injected dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.spade import Spade
from repro.peeling.semantics import PeelingSemantics
from repro.streaming.policies import PerEdgePolicy, PeriodicStaticPolicy
from repro.streaming.replay import replay_stream
from repro.workloads.datasets import Dataset

__all__ = ["CaseStudyResult", "run_case_study"]


@dataclass(frozen=True)
class CaseStudyResult:
    """Outcome of one case study (one fraud label under one semantics)."""

    label: str
    pattern: str
    semantics: str
    #: Stream time at which the burst started (``T0``).
    burst_start: float
    #: Detection time of the incremental detector (``T1``), None if missed.
    incremental_detection: Optional[float]
    #: Detection time of the periodic static baseline (``T2``), None if missed.
    static_detection: Optional[float]
    #: Transactions of the community generated in ``(T1, T2]``.
    preventable_transactions: int
    #: Total labelled transactions of the community.
    total_transactions: int
    #: The static baseline's re-detection period used for the comparison.
    static_period: float

    @property
    def incremental_delay(self) -> Optional[float]:
        """``T1 - T0``: how quickly Spade reacted."""
        if self.incremental_detection is None:
            return None
        return self.incremental_detection - self.burst_start

    @property
    def static_delay(self) -> Optional[float]:
        """``T2 - T0``: how quickly the periodic baseline reacted."""
        if self.static_detection is None:
            return None
        return self.static_detection - self.burst_start

    def as_row(self) -> Dict[str, object]:
        """Flatten for table rendering."""
        return {
            "pattern": self.pattern,
            "semantics": self.semantics,
            "T1 - T0 (s)": None if self.incremental_delay is None else round(self.incremental_delay, 2),
            "T2 - T0 (s)": None if self.static_delay is None else round(self.static_delay, 2),
            "preventable tx": self.preventable_transactions,
            "total tx": self.total_transactions,
        }


def run_case_study(
    dataset: Dataset,
    label: str,
    semantics: PeelingSemantics,
    static_period: float = 60.0,
    detection_overlap: float = 0.5,
) -> CaseStudyResult:
    """Run one Figure 12/13 case study on an injected dataset.

    Parameters
    ----------
    dataset:
        A dataset whose increments contain the labelled fraud burst.
    label:
        The fraud community to study.
    semantics:
        Which peeling semantics both detectors use (the paper pairs
        collusion with DG, deal-hunter with DW and click-farming with FD).
    static_period:
        The period of the from-scratch baseline, i.e. how often the static
        algorithm finishes a full pass (≈60 s in the paper's case studies).
    """
    community = next(c for c in dataset.fraud_communities if c.label == label)
    truth = {label: community.members}

    # Each case is studied in isolation, as in the paper: the replayed stream
    # contains the background traffic plus only the studied burst, so an
    # earlier (denser) burst of a different pattern cannot mask it.
    from repro.streaming.stream import UpdateStream

    stream = UpdateStream(
        [e for e in dataset.increments if e.fraud_label in (None, label)]
    )

    # Real-time incremental detector: per-edge maintenance.
    spade_inc = Spade(semantics)
    spade_inc.load_graph(dataset.initial_graph(semantics))
    report_inc = replay_stream(
        spade_inc,
        stream,
        PerEdgePolicy(label=f"Inc{semantics.name}"),
        fraud_communities=truth,
        detection_overlap=detection_overlap,
    )

    # Periodic static baseline.
    spade_static = Spade(semantics)
    spade_static.load_graph(dataset.initial_graph(semantics))
    report_static = replay_stream(
        spade_static,
        stream,
        PeriodicStaticPolicy(static_period, label=semantics.name),
        fraud_communities=truth,
        detection_overlap=detection_overlap,
    )

    t1 = report_inc.prevention.detection_time(label)
    t2 = report_static.prevention.detection_time(label)

    timestamps = [e.timestamp for e in stream if e.fraud_label == label]
    preventable = 0
    if t1 is not None:
        horizon = t2 if t2 is not None else max(timestamps, default=t1)
        preventable = sum(1 for t in timestamps if t1 < t <= horizon)

    return CaseStudyResult(
        label=label,
        pattern=community.pattern,
        semantics=semantics.name,
        burst_start=community.start_time,
        incremental_detection=t1,
        static_detection=t2,
        preventable_transactions=preventable,
        total_transactions=len(timestamps),
        static_period=static_period,
    )
