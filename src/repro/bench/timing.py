"""Wall-clock measurement helpers shared by the experiment harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Tuple, TypeVar

import numpy as np

__all__ = ["time_call", "Timer", "DurationStats", "summarize"]

T = TypeVar("T")


def time_call(fn: Callable[[], T]) -> Tuple[T, float]:
    """Call ``fn`` and return ``(result, elapsed_seconds)``."""
    began = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - began


class Timer:
    """Context manager measuring a block's wall-clock time.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed > 0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._began = 0.0

    def __enter__(self) -> "Timer":
        self._began = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._began


@dataclass(frozen=True)
class DurationStats:
    """Summary statistics of a collection of durations (seconds)."""

    count: int
    total: float
    mean: float
    median: float
    p95: float
    minimum: float
    maximum: float

    def as_row(self) -> dict:
        """Flatten for table rendering (microseconds for the small values)."""
        return {
            "count": self.count,
            "total (s)": round(self.total, 4),
            "mean (us)": round(self.mean * 1e6, 2),
            "median (us)": round(self.median * 1e6, 2),
            "p95 (us)": round(self.p95 * 1e6, 2),
            "max (us)": round(self.maximum * 1e6, 2),
        }


def summarize(durations: List[float]) -> DurationStats:
    """Summarise a list of durations into :class:`DurationStats`."""
    if not durations:
        return DurationStats(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    arr = np.asarray(durations, dtype=np.float64)
    return DurationStats(
        count=len(durations),
        total=float(arr.sum()),
        mean=float(arr.mean()),
        median=float(np.median(arr)),
        p95=float(np.percentile(arr, 95)),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )
