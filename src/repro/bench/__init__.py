"""Benchmark harness: regenerate every table and figure of the paper.

Each module under :mod:`repro.bench.experiments` reproduces one table or
figure of the evaluation section and can be run directly, e.g.::

    python -m repro.bench.experiments.table4 --quick
    python -m repro.bench.experiments.fig9a

The shared pieces are:

* :mod:`repro.bench.timing` — wall-clock measurement helpers;
* :mod:`repro.bench.tables` — plain-text / markdown table rendering;
* :mod:`repro.bench.harness` — experiment configuration, engine
  construction and result persistence.

The pytest-benchmark targets under ``benchmarks/`` exercise the same
experiment code on the ``*-small`` datasets so that
``pytest benchmarks/ --benchmark-only`` stays fast, while
``python -m repro.bench.run_all`` produces the full numbers recorded in
``EXPERIMENTS.md``.
"""

from repro.bench.harness import ExperimentConfig, ExperimentResult, build_engine, save_result
from repro.bench.tables import render_table, render_markdown
from repro.bench.timing import Timer, time_call

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "build_engine",
    "save_result",
    "render_table",
    "render_markdown",
    "Timer",
    "time_call",
]
