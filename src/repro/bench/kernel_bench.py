"""Kernel micro-benchmark: python vs native C hot loops, bit-identity gated.

The native kernels of :mod:`repro.native` replace the two hot loops the
profiles blame — the flat greedy peel over a CSR snapshot's incidence
arrays and the reorder inner loop over the dense-id peeling state — with
hand-written C compiled on demand.  This module measures both loops under
``kernel="python"`` and ``kernel="native"`` on the same fig10-style
workload (reusing :func:`repro.bench.backend_bench.generate_stream`) and
reports:

* ``static`` — the snapshot-resident ``peel_csr`` on the frozen initial
  graph, per kernel (best of ``repeats``), plus the speedup;
* ``incremental`` — the single-edge insert stream through the peeling
  state's reorder path, per kernel, plus per-edge latencies and speedup.

Both phases are gated on **bit-identity**: the static peels must produce
the same order / weights / community, and the incremental replays must
finish with identical peeling sequences (and pass
``check_consistency``).  A mismatch makes the process exit non-zero so
CI fails loudly — a fast wrong kernel is worse than no kernel.

Acceptance bar: native ``peel_csr`` ≥ 3× the python ``peel_csr`` on the
default workload.  ``python -m repro.bench.kernel_bench`` writes
``BENCH_kernel.json``; ``--quick`` shrinks the workload for CI smoke
runs.  Without a usable C toolchain the bench exits non-zero immediately
(it exists to measure the native kernels; the no-compiler fallback path
is covered by the test suite instead).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List

from repro import native
from repro._version import __version__
from repro.bench.backend_bench import (
    DEFAULT_INCREMENTS,
    DEFAULT_INITIAL_EDGES,
    DEFAULT_VERTICES,
    QUICK_INCREMENTS,
    QUICK_INITIAL_EDGES,
    QUICK_VERTICES,
    _results_match,
    generate_stream,
)
from repro.core.insertion import insert_edge
from repro.core.state import PeelingState
from repro.peeling.semantics import dw_semantics
from repro.peeling.static import peel_csr

__all__ = ["run_kernel_comparison", "main"]


def _static_phase(
    initial: List[tuple], repeats: int
) -> Dict[str, object]:
    """Time ``peel_csr`` per kernel on one frozen snapshot (best of N)."""
    semantics = dw_semantics()
    graph = semantics.materialize(initial, backend="array")
    snapshot = graph.freeze()
    snapshot.incidence()  # build the combined incidence outside the timers

    times = {"python": float("inf"), "native": float("inf")}
    results = {}
    for _ in range(repeats):
        for kernel in ("python", "native"):
            began = time.perf_counter()
            result = peel_csr(snapshot, semantics.name, kernel=kernel)
            times[kernel] = min(times[kernel], time.perf_counter() - began)
            results[kernel] = result
    match = _results_match(results["python"], results["native"])
    return {
        "python_peel_s": round(times["python"], 6),
        "native_peel_s": round(times["native"], 6),
        "speedup_native_over_python": round(times["python"] / times["native"], 2),
        "sequences_match": bool(match),
    }


def _incremental_phase(
    initial: List[tuple], increments: List[tuple], repeats: int
) -> Dict[str, object]:
    """Replay the insert stream through the reorder path, per kernel.

    Each repeat rebuilds the state from scratch so every run pays the
    same static peel and reorders the same sequence; the timer covers
    only the increment replay.  The final peeling sequences of the two
    kernels must be bit-identical.
    """
    semantics = dw_semantics()
    times = {"python": float("inf"), "native": float("inf")}
    sequences = {}
    for _ in range(repeats):
        for kernel in ("python", "native"):
            graph = semantics.materialize(initial, backend="array")
            state = PeelingState(graph, semantics, kernel=kernel)
            began = time.perf_counter()
            for src, dst, weight in increments:
                insert_edge(state, src, dst, weight)
            times[kernel] = min(times[kernel], time.perf_counter() - began)
            state.check_consistency()
            sequences[kernel] = (list(state.order), list(state.weights))
    match = sequences["python"] == sequences["native"]
    per_edge = {k: times[k] / len(increments) for k in times}
    return {
        "python_insert_s": round(times["python"], 6),
        "native_insert_s": round(times["native"], 6),
        "python_insert_per_edge_us": round(per_edge["python"] * 1e6, 3),
        "native_insert_per_edge_us": round(per_edge["native"] * 1e6, 3),
        "speedup_native_over_python": round(times["python"] / times["native"], 2),
        "sequences_match": bool(match),
    }


def run_kernel_comparison(
    num_vertices: int = DEFAULT_VERTICES,
    num_initial: int = DEFAULT_INITIAL_EDGES,
    num_increments: int = DEFAULT_INCREMENTS,
    seed: int = 42,
    repeats: int = 3,
) -> Dict[str, object]:
    """Run both phases and assemble the ``BENCH_kernel.json`` report.

    Requires the native kernels (raises
    :class:`~repro.errors.KernelUnavailableError` through
    :func:`repro.native.resolve_kernel` when they cannot be built).
    """
    native.resolve_kernel("native")  # fail loud before measuring anything
    initial, increments = generate_stream(num_vertices, num_initial, num_increments, seed)
    static = _static_phase(initial, repeats)
    incremental = _incremental_phase(initial, increments, repeats)
    match = bool(static["sequences_match"] and incremental["sequences_match"])
    speedup = static["speedup_native_over_python"]
    status = native.status()
    return {
        "experiment": "kernel-python-vs-native",
        "description": (
            "peel and reorder hot loops under kernel=python vs kernel=native "
            "(compiled C) on the fig10 workload: snapshot-resident peel_csr "
            "and the single-edge insert/reorder stream, bit-identity gated"
        ),
        "version": __version__,
        "workload": {
            "num_vertices": num_vertices,
            "initial_edges": num_initial,
            "increment_edges": num_increments,
            "seed": seed,
            "semantics": "DW",
            "backend": "array",
            "repeats": repeats,
        },
        "native": {
            "cc": status.get("cc"),
            "so_path": status.get("so_path"),
            "build_cached": status.get("build_cached"),
        },
        "static": static,
        "incremental": incremental,
        "sequences_match": match,
        "target": "native peel_csr >= 3x python peel_csr",
        "target_met": bool(match and speedup >= 3.0),
    }


def main() -> None:
    """CLI entry point: run the comparison and persist ``BENCH_kernel.json``."""
    parser = argparse.ArgumentParser(
        description="python vs native C kernel micro-benchmark"
    )
    parser.add_argument("--vertices", type=int, default=None)
    parser.add_argument("--initial-edges", type=int, default=None)
    parser.add_argument("--increments", type=int, default=None)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--quick", action="store_true", help="small workload for CI smoke runs"
    )
    parser.add_argument("--output", type=Path, default=Path("BENCH_kernel.json"))
    args = parser.parse_args()

    if not native.available():
        reason = native.status().get("reason")
        print(f"ERROR: native kernels unavailable: {reason}", file=sys.stderr)
        sys.exit(1)

    defaults = (
        (QUICK_VERTICES, QUICK_INITIAL_EDGES, QUICK_INCREMENTS)
        if args.quick
        else (DEFAULT_VERTICES, DEFAULT_INITIAL_EDGES, DEFAULT_INCREMENTS)
    )
    report = run_kernel_comparison(
        num_vertices=args.vertices if args.vertices is not None else defaults[0],
        num_initial=args.initial_edges if args.initial_edges is not None else defaults[1],
        num_increments=args.increments if args.increments is not None else defaults[2],
        seed=args.seed,
        repeats=args.repeats,
    )
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    static, incremental = report["static"], report["incremental"]
    print(
        f"static peel_csr: python {static['python_peel_s']:.3f}s vs native "
        f"{static['native_peel_s']:.3f}s — "
        f"{static['speedup_native_over_python']}x, sequences "
        f"{'MATCH' if static['sequences_match'] else 'MISMATCH'}"
    )
    print(
        f"insert stream: python {incremental['python_insert_per_edge_us']:9.2f} us/edge "
        f"vs native {incremental['native_insert_per_edge_us']:9.2f} us/edge — "
        f"{incremental['speedup_native_over_python']}x, sequences "
        f"{'MATCH' if incremental['sequences_match'] else 'MISMATCH'}"
    )
    print(
        f"target ({report['target']}): {'MET' if report['target_met'] else 'NOT MET'}"
    )
    if not report["sequences_match"]:
        print(
            "ERROR: native kernel sequences diverged from python", file=sys.stderr
        )
        sys.exit(1)


if __name__ == "__main__":
    main()
