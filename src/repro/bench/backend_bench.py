"""Backend micro-benchmark: dict vs array graph core on fig10-style updates.

Figure 10 of the paper measures single-edge incremental maintenance
(``|ΔE| = 1``).  This module re-runs that micro-benchmark once per graph
backend on the same synthetic transaction stream and reports:

* ``insert_per_edge_us`` / ``insert_throughput_eps`` — the maintenance
  path alone (``insert_edge`` on the peeling state: graph update +
  sequence reordering), which is what the backend refactor targets;
* ``detect_per_edge_us`` — maintenance *plus* a community detection per
  edge (the full ``Spade.insert_edge``), whose numpy suffix scan is
  backend-independent;
* ``static_peel_s`` — one from-scratch heap peel on the initial graph, for
  the classic fig10 static-vs-incremental ratio.

The run is parametrized with ``--backends dict array`` and
``--static heap csr``: ``python -m repro.bench.backend_bench`` writes the
backend comparison to ``BENCH_backend.json`` and — whenever the ``csr``
method is selected — the heap-vs-CSR static-peel comparison
(:func:`run_static_comparison`: cold freeze, snapshot-resident peel and a
bit-identity check) to ``BENCH_csr.json``.
With ``--shards N`` (N > 1) the run additionally compares the single
engine against a hash-partitioned :class:`~repro.engine.ShardedSpade` on
the same stream (:func:`run_sharded_comparison`, ``BENCH_shard.json``)
and verifies the merged sharded detection is identical to the single
engine's.

Acceptance bars: array ≥ 2× dict single-edge insert throughput, the
snapshot-resident CSR peel ≥ 3× the heap peel, and the sharded engine
≥ 1.5× the single engine's insert throughput at 4 shards.  ``--quick``
shrinks the workload for CI smoke runs; a sequence mismatch between the
heap and CSR peels — or between the sharded and single communities —
makes the process exit non-zero so CI fails loudly.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro import native as _native
from repro._version import __version__
from repro.api.config import EngineConfig
from repro.config import VALID_BACKENDS, VALID_KERNELS, VALID_STATIC, validate_config
from repro.core.insertion import insert_edge
from repro.core.state import PeelingState
from repro.peeling.semantics import dw_semantics
from repro.peeling.static import peel, peel_csr

__all__ = [
    "generate_stream",
    "run_backend",
    "run_comparison",
    "run_static_comparison",
    "run_sharded_comparison",
    "main",
]

#: Default workload shape: fig10-style single-edge updates on a graph at
#: the scale of the paper's public datasets (amazon / wiki-vote are in the
#: 10^4..10^6 vertex range).  Size matters for fidelity here — the array
#: backend's contiguous pools are a *cache* win, which only shows once the
#: adjacency structures outgrow the caches that hide dict overhead on toy
#: graphs.
DEFAULT_VERTICES = 20000
DEFAULT_INITIAL_EDGES = 120000
DEFAULT_INCREMENTS = 400

#: ``--quick`` workload for CI smoke runs.
QUICK_VERTICES = 2000
QUICK_INITIAL_EDGES = 12000
QUICK_INCREMENTS = 60


def generate_stream(
    num_vertices: int = DEFAULT_VERTICES,
    num_initial: int = DEFAULT_INITIAL_EDGES,
    num_increments: int = DEFAULT_INCREMENTS,
    seed: int = 42,
) -> Tuple[List[tuple], List[tuple]]:
    """Return ``(initial_edges, increment_edges)`` for a synthetic stream.

    Weights are dyadic (multiples of 1/64) so both backends follow exactly
    the same arithmetic, and endpoints are skewed towards a dense core the
    way transaction graphs are.
    """
    rng = random.Random(seed)
    core = max(8, num_vertices // 40)

    def endpoint() -> int:
        # Half of the traffic hits a small dense core, giving the hub
        # vertices the heavy-tailed degrees of real transaction graphs.
        if rng.random() < 0.5:
            return rng.randrange(core)
        return rng.randrange(num_vertices)

    seen = set()
    edges: List[tuple] = []
    while len(edges) < num_initial + num_increments:
        src, dst = endpoint(), endpoint()
        if src == dst or (src, dst) in seen:
            continue
        seen.add((src, dst))
        edges.append((src, dst, rng.randint(1, 320) / 64.0))
    return edges[:num_initial], edges[num_initial:]


def _results_match(a, b) -> bool:
    """Bit-identity check between two peeling results."""
    return (
        list(a.order) == list(b.order)
        and list(a.weights) == list(b.weights)
        and a.best_density == b.best_density
        and a.community == b.community
    )


def run_backend(
    backend: str,
    initial: List[tuple],
    increments: List[tuple],
    kernel: str = "python",
) -> Dict[str, float]:
    """Benchmark one backend; returns the metric row for the JSON report.

    The heap static peel measured here is the fig10 baseline; the
    heap-vs-CSR static comparison lives in :func:`run_static_comparison`
    (``BENCH_csr.json``) so the same quantity is not measured — and
    reported — twice.  ``kernel`` pins the hot-loop implementation
    (default ``"python"`` so the backend axis measures the backend, not
    the kernel; the kernel axis has its own report,
    ``repro.bench.kernel_bench`` → ``BENCH_kernel.json``).
    """
    semantics = dw_semantics()

    # Static baseline on the initial graph (one from-scratch peel).
    graph = semantics.materialize(initial, backend=backend)
    began = time.perf_counter()
    peel(graph, semantics.name)
    static_seconds = time.perf_counter() - began

    row: Dict[str, float] = {
        "backend": backend,
        "static_peel_s": round(static_seconds, 6),
    }

    # Maintenance-only single-edge inserts (the refactor's hot path).
    graph = semantics.materialize(initial, backend=backend)
    state = PeelingState(graph, semantics, kernel=kernel)
    began = time.perf_counter()
    for src, dst, weight in increments:
        insert_edge(state, src, dst, weight)
    insert_seconds = time.perf_counter() - began
    state.check_consistency()

    # Full Spade path: maintenance + community detection per edge.  The
    # engine is constructed through the public EngineConfig (the timed
    # loop still drives the engine directly — the façade's per-event
    # report building is not what this micro-benchmark measures).
    spade = EngineConfig(semantics="DW", backend=backend, kernel=kernel).build(semantics)
    spade.load_edges(initial)
    began = time.perf_counter()
    for src, dst, weight in increments:
        spade.insert_edge(src, dst, weight)
    detect_seconds = time.perf_counter() - began

    per_edge = insert_seconds / len(increments)
    row.update(
        {
            "insert_per_edge_us": round(per_edge * 1e6, 3),
            "insert_throughput_eps": round(1.0 / per_edge, 1),
            "detect_per_edge_us": round(detect_seconds / len(increments) * 1e6, 3),
            "static_vs_incremental_speedup": round(static_seconds / per_edge, 1),
        }
    )
    return row


def run_comparison(
    num_vertices: int = DEFAULT_VERTICES,
    num_initial: int = DEFAULT_INITIAL_EDGES,
    num_increments: int = DEFAULT_INCREMENTS,
    seed: int = 42,
    repeats: int = 2,
    backends: Sequence[str] = ("dict", "array"),
    kernel: str = "python",
) -> Dict[str, object]:
    """Run the fig10 single-edge micro-benchmark on the selected backends.

    Each backend is measured ``repeats`` times and the best run kept
    (minimum per-edge time), which filters allocator/JIT-warmup noise the
    same way timeit does.  ``kernel`` is pinned per row so the comparison
    isolates the backend axis.
    """
    initial, increments = generate_stream(num_vertices, num_initial, num_increments, seed)
    rows: Dict[str, Dict[str, float]] = {}
    for backend in backends:
        best: Dict[str, float] = {}
        for _ in range(repeats):
            row = run_backend(backend, initial, increments, kernel=kernel)
            if not best or row["insert_per_edge_us"] < best["insert_per_edge_us"]:
                best = row
        rows[backend] = best
    report: Dict[str, object] = {
        "experiment": "fig10-single-edge-insert-backend-comparison",
        "description": (
            "single-edge incremental maintenance (|ΔE| = 1) on a synthetic "
            "fig10-style stream, per graph backend and static-peel method"
        ),
        "version": __version__,
        "workload": {
            "num_vertices": num_vertices,
            "initial_edges": num_initial,
            "increment_edges": num_increments,
            "seed": seed,
            "semantics": "DW",
            "repeats": repeats,
            "backends": list(backends),
            "kernel": kernel,
        },
        "backends": rows,
    }
    if "dict" in rows and "array" in rows:
        speedup = rows["dict"]["insert_per_edge_us"] / rows["array"]["insert_per_edge_us"]
        detect_speedup = (
            rows["dict"]["detect_per_edge_us"] / rows["array"]["detect_per_edge_us"]
        )
        report.update(
            {
                "array_over_dict_insert_speedup": round(speedup, 2),
                "array_over_dict_detect_speedup": round(detect_speedup, 2),
                "target": "array backend >= 2x dict single-edge insert throughput",
                "target_met": bool(speedup >= 2.0),
            }
        )
    return report


def run_static_comparison(
    num_vertices: int = DEFAULT_VERTICES,
    num_initial: int = DEFAULT_INITIAL_EDGES,
    seed: int = 42,
    repeats: int = 3,
) -> Dict[str, object]:
    """Benchmark the heap vs CSR static peel on the fig10 initial graph.

    Each repeat re-materialises the array-backend graph from scratch —
    deliberately, so the ``freeze_s`` measurement is always a cold freeze
    rather than a hit on the graph's version-keyed snapshot cache — and
    then measures the heap peel (:func:`peel`), the freeze (including the
    combined-incidence build), and the snapshot-resident CSR peel
    (:func:`peel_csr` on the frozen snapshot — the steady-state cost
    every re-run of the static baseline pays).  Also asserts the two
    peels are bit-identical; the report lands in ``BENCH_csr.json``.

    The CSR row pins ``kernel="python"`` so the numbers stay an
    apples-to-apples python comparison; when the native C kernels are
    available a third row measures ``peel_csr(..., kernel="native")`` on
    the same snapshot and its bit-identity against the other two.
    """
    initial, _ = generate_stream(num_vertices, num_initial, 0, seed)
    semantics = dw_semantics()
    native_available = _native.available()

    heap_s = freeze_s = csr_s = float("inf")
    native_s: Optional[float] = float("inf") if native_available else None
    match = True
    for _ in range(repeats):
        graph = semantics.materialize(initial, backend="array")
        began = time.perf_counter()
        heap_result = peel(graph, semantics.name)
        heap_s = min(heap_s, time.perf_counter() - began)

        began = time.perf_counter()
        snapshot = graph.freeze()
        snapshot.incidence()
        freeze_s = min(freeze_s, time.perf_counter() - began)

        began = time.perf_counter()
        csr_result = peel_csr(snapshot, semantics.name, kernel="python")
        csr_s = min(csr_s, time.perf_counter() - began)
        match = match and _results_match(heap_result, csr_result)

        if native_available:
            began = time.perf_counter()
            native_result = peel_csr(snapshot, semantics.name, kernel="native")
            native_s = min(native_s, time.perf_counter() - began)
            match = match and _results_match(heap_result, native_result)

    return {
        "experiment": "fig10-static-peel-heap-vs-csr",
        "description": (
            "from-scratch static peel (Algorithm 1) on the fig10 initial graph: "
            "heap-based peel over the mutable ArrayGraph vs vectorized peel_csr "
            "over an immutable CSR snapshot"
        ),
        "version": __version__,
        "workload": {
            "num_vertices": num_vertices,
            "initial_edges": num_initial,
            "seed": seed,
            "semantics": "DW",
            "repeats": repeats,
        },
        "heap_peel_s": round(heap_s, 6),
        "freeze_s": round(freeze_s, 6),
        "csr_peel_s": round(csr_s, 6),
        "csr_peel_cold_s": round(freeze_s + csr_s, 6),
        "native_peel_s": round(native_s, 6) if native_s is not None else None,
        "native_available": bool(native_available),
        "speedup_csr_over_heap": round(heap_s / csr_s, 2),
        "speedup_incl_freeze": round(heap_s / (freeze_s + csr_s), 2),
        "speedup_native_over_csr": (
            round(csr_s / native_s, 2) if native_s else None
        ),
        "speedup_native_over_heap": (
            round(heap_s / native_s, 2) if native_s else None
        ),
        "sequences_match": bool(match),
        "target": "snapshot-resident peel_csr >= 3x heap peel",
        "target_met": bool(match and heap_s / csr_s >= 3.0),
    }


def run_sharded_comparison(
    num_vertices: int = DEFAULT_VERTICES,
    num_initial: int = DEFAULT_INITIAL_EDGES,
    num_increments: int = DEFAULT_INCREMENTS,
    seed: int = 42,
    repeats: int = 2,
    num_shards: int = 4,
    coordinator_interval: int = 1024,
) -> Dict[str, object]:
    """Single engine vs ``ShardedSpade`` on the fig10 single-edge stream.

    Both engines replay the same increments through their public
    ``insert_edge`` (each returning its per-update community view: exact
    for the single engine, shard-local for the sharded one); the sharded
    timing *includes* the final coordinator pass that drains the
    cross-shard queue, so no parked work escapes the measurement.  After
    the replay the sharded engine's merged ``detect()`` is compared with
    the single engine's — the stream is dyadic, so the communities must
    be identical bit for bit; a mismatch fails the caller (CI smoke).
    """
    initial, increments = generate_stream(num_vertices, num_initial, num_increments, seed)

    single_config = EngineConfig(semantics="DW", backend="array")
    sharded_config = single_config.replace(
        shards=num_shards, coordinator_interval=coordinator_interval
    )

    single_s = float("inf")
    single = None
    for _ in range(repeats):
        single = single_config.build()
        single.load_edges(initial)
        began = time.perf_counter()
        for src, dst, weight in increments:
            single.insert_edge(src, dst, weight)
        single_s = min(single_s, time.perf_counter() - began)

    sharded_s = float("inf")
    sharded = None
    for _ in range(repeats):
        sharded = sharded_config.build()
        sharded.load_edges(initial)
        began = time.perf_counter()
        for src, dst, weight in increments:
            sharded.insert_edge(src, dst, weight)
        sharded.flush_pending()
        sharded_s = min(sharded_s, time.perf_counter() - began)

    single_community = single.detect()
    merged_community = sharded.detect()
    match = (
        single_community.vertices == merged_community.vertices
        and single_community.density == merged_community.density
    )
    speedup = single_s / sharded_s if sharded_s > 0 else float("inf")
    per_edge_single = single_s / len(increments)
    per_edge_sharded = sharded_s / len(increments)
    total_routed = sharded.intra_shard_updates + sharded.cross_shard_updates
    return {
        "experiment": "fig10-single-vs-sharded-insert-throughput",
        "description": (
            "single-edge insertion throughput (|ΔE| = 1, DW, array backend) of "
            "the single Spade engine vs ShardedSpade with hash-partitioned "
            "shards; sharded timing includes the coordinator pass"
        ),
        "version": __version__,
        "workload": {
            "num_vertices": num_vertices,
            "initial_edges": num_initial,
            "increment_edges": num_increments,
            "seed": seed,
            "semantics": "DW",
            "repeats": repeats,
            "num_shards": num_shards,
            "coordinator_interval": coordinator_interval,
        },
        "single": {
            "insert_per_edge_us": round(per_edge_single * 1e6, 3),
            "insert_throughput_eps": round(1.0 / per_edge_single, 1),
        },
        "sharded": {
            "insert_per_edge_us": round(per_edge_sharded * 1e6, 3),
            "insert_throughput_eps": round(1.0 / per_edge_sharded, 1),
            "shard_vertex_counts": sharded.router.partition_counts(),
            "cross_shard_share": round(
                sharded.cross_shard_updates / total_routed if total_routed else 0.0, 4
            ),
            "coordinator_flushes": sharded.coordinator_flushes,
        },
        "sharded_over_single_insert_speedup": round(speedup, 2),
        "communities_match": bool(match),
        "target": f"ShardedSpade >= 1.5x single-engine insert throughput at {num_shards} shards",
        "target_met": bool(match and speedup >= 1.5),
    }


def main() -> None:
    """CLI entry point: run the comparisons and persist the JSON reports."""
    parser = argparse.ArgumentParser(description="dict vs array backend micro-benchmark")
    parser.add_argument("--vertices", type=int, default=None)
    parser.add_argument("--initial-edges", type=int, default=None)
    parser.add_argument("--increments", type=int, default=None)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument(
        "--backends",
        nargs="+",
        choices=list(VALID_BACKENDS),
        default=list(VALID_BACKENDS),
        help="graph backends to measure",
    )
    parser.add_argument(
        "--static",
        nargs="+",
        choices=list(VALID_STATIC),
        default=list(VALID_STATIC),
        help="static-peel methods to measure",
    )
    parser.add_argument(
        "--kernel",
        choices=list(VALID_KERNELS),
        default="python",
        help="hot-loop kernel pinned for the backend rows (default python so "
        "the backend axis stays isolated; the kernel axis is "
        "repro.bench.kernel_bench)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="small workload for CI smoke runs"
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help="also run the single-vs-sharded comparison with this many "
        "shard engines (>= 1; 0 = skip); a sharded-vs-single community "
        "mismatch makes the process exit non-zero",
    )
    parser.add_argument("--output", type=Path, default=Path("BENCH_backend.json"))
    parser.add_argument(
        "--csr-output",
        type=Path,
        default=Path("BENCH_csr.json"),
        help="where the heap-vs-CSR static comparison is written",
    )
    parser.add_argument(
        "--shard-output",
        type=Path,
        default=Path("BENCH_shard.json"),
        help="where the single-vs-sharded comparison is written",
    )
    args = parser.parse_args()
    # Central validation (the single ConfigError choke point) on top of
    # argparse's flag-level ``choices``; --shards 0 means "skip".
    for backend in args.backends:
        validate_config(backend=backend)
    for static in args.static:
        validate_config(static=static)
    validate_config(kernel=args.kernel)
    if args.shards:
        validate_config(shards=args.shards)

    defaults = (
        (QUICK_VERTICES, QUICK_INITIAL_EDGES, QUICK_INCREMENTS)
        if args.quick
        else (DEFAULT_VERTICES, DEFAULT_INITIAL_EDGES, DEFAULT_INCREMENTS)
    )
    vertices = args.vertices if args.vertices is not None else defaults[0]
    initial_edges = args.initial_edges if args.initial_edges is not None else defaults[1]
    increments = args.increments if args.increments is not None else defaults[2]

    report = run_comparison(
        num_vertices=vertices,
        num_initial=initial_edges,
        num_increments=increments,
        seed=args.seed,
        repeats=args.repeats,
        backends=args.backends,
        kernel=args.kernel,
    )
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    for backend, row in report["backends"].items():
        print(
            f"{backend:>5}: {row['insert_per_edge_us']:9.2f} us/edge maintenance, "
            f"{row['detect_per_edge_us']:9.2f} us/edge with detection"
        )
    if "array_over_dict_insert_speedup" in report:
        print(
            f"array over dict: {report['array_over_dict_insert_speedup']}x insert, "
            f"{report['array_over_dict_detect_speedup']}x detect "
            f"(target >= 2x insert: {'MET' if report['target_met'] else 'NOT MET'})"
        )

    ok = True
    if "csr" in args.static:
        csr_report = run_static_comparison(
            num_vertices=vertices,
            num_initial=initial_edges,
            seed=args.seed,
            repeats=max(args.repeats, 2),
        )
        args.csr_output.write_text(json.dumps(csr_report, indent=2) + "\n")
        print(
            f"static peel: heap {csr_report['heap_peel_s']:.3f}s vs csr "
            f"{csr_report['csr_peel_s']:.3f}s (+{csr_report['freeze_s']:.3f}s freeze) — "
            f"{csr_report['speedup_csr_over_heap']}x, sequences "
            f"{'MATCH' if csr_report['sequences_match'] else 'MISMATCH'}"
        )
        if csr_report["native_peel_s"] is not None:
            print(
                f"native peel: {csr_report['native_peel_s']:.3f}s — "
                f"{csr_report['speedup_native_over_csr']}x over csr, "
                f"{csr_report['speedup_native_over_heap']}x over heap"
            )
        ok = bool(csr_report["sequences_match"])
    if args.shards >= 1:
        shard_report = run_sharded_comparison(
            num_vertices=vertices,
            num_initial=initial_edges,
            num_increments=increments,
            seed=args.seed,
            repeats=args.repeats,
            num_shards=args.shards,
        )
        args.shard_output.write_text(json.dumps(shard_report, indent=2) + "\n")
        print(
            f"sharded ({args.shards} shards): "
            f"{shard_report['sharded']['insert_per_edge_us']:9.2f} us/edge vs single "
            f"{shard_report['single']['insert_per_edge_us']:9.2f} us/edge — "
            f"{shard_report['sharded_over_single_insert_speedup']}x, communities "
            f"{'MATCH' if shard_report['communities_match'] else 'MISMATCH'}"
        )
        if not shard_report["communities_match"]:
            print(
                "ERROR: sharded merged detect() diverged from the single engine",
                file=sys.stderr,
            )
            ok = False
    if not ok:
        print("ERROR: benchmark consistency check failed", file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
