"""Backend micro-benchmark: dict vs array graph core on fig10-style updates.

Figure 10 of the paper measures single-edge incremental maintenance
(``|ΔE| = 1``).  This module re-runs that micro-benchmark once per graph
backend on the same synthetic transaction stream and reports:

* ``insert_per_edge_us`` / ``insert_throughput_eps`` — the maintenance
  path alone (``insert_edge`` on the peeling state: graph update +
  sequence reordering), which is what the backend refactor targets;
* ``detect_per_edge_us`` — maintenance *plus* a community detection per
  edge (the full ``Spade.insert_edge``), whose numpy suffix scan is
  backend-independent;
* ``static_peel_s`` — one from-scratch peel on the initial graph, for the
  classic fig10 static-vs-incremental ratio.

``python -m repro.bench.backend_bench`` writes the comparison to
``BENCH_backend.json`` (repo root by default); the acceptance bar for the
array backend is ≥2× dict single-edge insert throughput.
"""

from __future__ import annotations

import argparse
import json
import random
import time
from pathlib import Path
from typing import Dict, List, Tuple

from repro._version import __version__
from repro.core.insertion import insert_edge
from repro.core.spade import Spade
from repro.core.state import PeelingState
from repro.peeling.semantics import dw_semantics
from repro.peeling.static import peel

__all__ = ["generate_stream", "run_backend", "run_comparison", "main"]

#: Default workload shape: fig10-style single-edge updates on a graph at
#: the scale of the paper's public datasets (amazon / wiki-vote are in the
#: 10^4..10^6 vertex range).  Size matters for fidelity here — the array
#: backend's contiguous pools are a *cache* win, which only shows once the
#: adjacency structures outgrow the caches that hide dict overhead on toy
#: graphs.
DEFAULT_VERTICES = 20000
DEFAULT_INITIAL_EDGES = 120000
DEFAULT_INCREMENTS = 400


def generate_stream(
    num_vertices: int = DEFAULT_VERTICES,
    num_initial: int = DEFAULT_INITIAL_EDGES,
    num_increments: int = DEFAULT_INCREMENTS,
    seed: int = 42,
) -> Tuple[List[tuple], List[tuple]]:
    """Return ``(initial_edges, increment_edges)`` for a synthetic stream.

    Weights are dyadic (multiples of 1/64) so both backends follow exactly
    the same arithmetic, and endpoints are skewed towards a dense core the
    way transaction graphs are.
    """
    rng = random.Random(seed)
    core = max(8, num_vertices // 40)

    def endpoint() -> int:
        # Half of the traffic hits a small dense core, giving the hub
        # vertices the heavy-tailed degrees of real transaction graphs.
        if rng.random() < 0.5:
            return rng.randrange(core)
        return rng.randrange(num_vertices)

    seen = set()
    edges: List[tuple] = []
    while len(edges) < num_initial + num_increments:
        src, dst = endpoint(), endpoint()
        if src == dst or (src, dst) in seen:
            continue
        seen.add((src, dst))
        edges.append((src, dst, rng.randint(1, 320) / 64.0))
    return edges[:num_initial], edges[num_initial:]


def run_backend(
    backend: str,
    initial: List[tuple],
    increments: List[tuple],
) -> Dict[str, float]:
    """Benchmark one backend; returns the metric row for the JSON report."""
    semantics = dw_semantics()

    # Static baseline on the initial graph (one from-scratch peel).
    graph = semantics.materialize(initial, backend=backend)
    began = time.perf_counter()
    peel(graph, semantics.name)
    static_seconds = time.perf_counter() - began

    # Maintenance-only single-edge inserts (the refactor's hot path).
    graph = semantics.materialize(initial, backend=backend)
    state = PeelingState(graph, semantics)
    began = time.perf_counter()
    for src, dst, weight in increments:
        insert_edge(state, src, dst, weight)
    insert_seconds = time.perf_counter() - began
    state.check_consistency()

    # Full Spade path: maintenance + community detection per edge.
    spade = Spade(semantics, backend=backend)
    spade.load_edges(initial)
    began = time.perf_counter()
    for src, dst, weight in increments:
        spade.insert_edge(src, dst, weight)
    detect_seconds = time.perf_counter() - began

    per_edge = insert_seconds / len(increments)
    return {
        "backend": backend,
        "static_peel_s": round(static_seconds, 6),
        "insert_per_edge_us": round(per_edge * 1e6, 3),
        "insert_throughput_eps": round(1.0 / per_edge, 1),
        "detect_per_edge_us": round(detect_seconds / len(increments) * 1e6, 3),
        "static_vs_incremental_speedup": round(static_seconds / per_edge, 1),
    }


def run_comparison(
    num_vertices: int = DEFAULT_VERTICES,
    num_initial: int = DEFAULT_INITIAL_EDGES,
    num_increments: int = DEFAULT_INCREMENTS,
    seed: int = 42,
    repeats: int = 2,
) -> Dict[str, object]:
    """Run the fig10 single-edge micro-benchmark on both backends.

    Each backend is measured ``repeats`` times and the best run kept
    (minimum per-edge time), which filters allocator/JIT-warmup noise the
    same way timeit does.
    """
    initial, increments = generate_stream(num_vertices, num_initial, num_increments, seed)
    rows: Dict[str, Dict[str, float]] = {}
    for backend in ("dict", "array"):
        best: Dict[str, float] = {}
        for _ in range(repeats):
            row = run_backend(backend, initial, increments)
            if not best or row["insert_per_edge_us"] < best["insert_per_edge_us"]:
                best = row
        rows[backend] = best
    speedup = rows["dict"]["insert_per_edge_us"] / rows["array"]["insert_per_edge_us"]
    detect_speedup = rows["dict"]["detect_per_edge_us"] / rows["array"]["detect_per_edge_us"]
    return {
        "experiment": "fig10-single-edge-insert-backend-comparison",
        "description": (
            "single-edge incremental maintenance (|ΔE| = 1) on a synthetic "
            "fig10-style stream, dict vs array graph backend"
        ),
        "version": __version__,
        "workload": {
            "num_vertices": num_vertices,
            "initial_edges": num_initial,
            "increment_edges": num_increments,
            "seed": seed,
            "semantics": "DW",
            "repeats": repeats,
        },
        "backends": rows,
        "array_over_dict_insert_speedup": round(speedup, 2),
        "array_over_dict_detect_speedup": round(detect_speedup, 2),
        "target": "array backend >= 2x dict single-edge insert throughput",
        "target_met": bool(speedup >= 2.0),
    }


def main() -> None:
    """CLI entry point: run the comparison and persist ``BENCH_backend.json``."""
    parser = argparse.ArgumentParser(description="dict vs array backend micro-benchmark")
    parser.add_argument("--vertices", type=int, default=DEFAULT_VERTICES)
    parser.add_argument("--initial-edges", type=int, default=DEFAULT_INITIAL_EDGES)
    parser.add_argument("--increments", type=int, default=DEFAULT_INCREMENTS)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--output", type=Path, default=Path("BENCH_backend.json"))
    args = parser.parse_args()
    report = run_comparison(
        num_vertices=args.vertices,
        num_initial=args.initial_edges,
        num_increments=args.increments,
        seed=args.seed,
        repeats=args.repeats,
    )
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    for backend, row in report["backends"].items():
        print(
            f"{backend:>5}: {row['insert_per_edge_us']:9.2f} us/edge maintenance, "
            f"{row['detect_per_edge_us']:9.2f} us/edge with detection"
        )
    print(
        f"array over dict: {report['array_over_dict_insert_speedup']}x insert, "
        f"{report['array_over_dict_detect_speedup']}x detect "
        f"(target >= 2x insert: {'MET' if report['target_met'] else 'NOT MET'})"
    )


if __name__ == "__main__":
    main()
