"""Run every experiment and write the tables used by EXPERIMENTS.md.

Usage::

    python -m repro.bench.run_all --output-dir results/ [--quick]
    python -m repro.bench.run_all --only table4 fig10

``--quick`` uses the ``*-small`` datasets and capped increment counts; the
full run uses the benchmark-scale datasets and takes considerably longer.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

from repro.bench.experiments import ALL_EXPERIMENTS
from repro.bench.harness import config_from_args, save_result, standard_argument_parser

__all__ = ["main"]


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = standard_argument_parser("Run all Spade reproduction experiments")
    parser.add_argument(
        "--only",
        nargs="*",
        default=None,
        help="subset of experiments to run (names like table4, fig10)",
    )
    args = parser.parse_args(argv)
    config = config_from_args(args)

    selected = args.only or list(ALL_EXPERIMENTS)
    unknown = [name for name in selected if name not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        return 2

    for name in selected:
        module = ALL_EXPERIMENTS[name]
        print(f"\n=== {name} ===", flush=True)
        began = time.perf_counter()
        result = module.run(config)
        elapsed = time.perf_counter() - began
        print(result.to_text())
        print(f"[{name} finished in {elapsed:.1f}s]")
        save_result(result, config)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
