"""Shared experiment configuration and helpers.

Every experiment module consumes an :class:`ExperimentConfig` (which
datasets, which semantics, how many increments, quick vs full scale) and
produces an :class:`ExperimentResult` (rows + free-form notes) that can be
rendered with :mod:`repro.bench.tables` and persisted next to the generated
data with :func:`save_result`.
"""

from __future__ import annotations

import argparse
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.config import EngineConfig
from repro.config import (
    SEMANTICS_FACTORIES,
    VALID_BACKENDS,
    VALID_STATIC,
    validate_config,
)
from repro.engine import DetectionEngine
from repro.peeling.semantics import PeelingSemantics
from repro.workloads.datasets import Dataset, generate_dataset

__all__ = [
    "SEMANTICS_FACTORIES",
    "ExperimentConfig",
    "ExperimentResult",
    "build_engine",
    "load_dataset",
    "save_result",
    "standard_argument_parser",
    "static_peel_fn",
    "config_from_args",
]

#: Benchmark-scale and test-scale dataset groups.
FULL_DATASETS = ["grab1", "grab2", "grab3", "grab4", "amazon", "wiki-vote", "epinion"]
QUICK_DATASETS = ["grab1-small", "grab2-small", "amazon-small", "wiki-vote-small"]
FULL_GRAB = ["grab1", "grab2", "grab3", "grab4"]
QUICK_GRAB = ["grab1-small", "grab2-small"]


@dataclass
class ExperimentConfig:
    """Configuration shared by every experiment runner."""

    #: Datasets to run on (names from the registry).
    datasets: Sequence[str] = field(default_factory=lambda: list(FULL_DATASETS))
    #: Peeling algorithms to compare.
    semantics: Sequence[str] = field(default_factory=lambda: ["DG", "DW", "FD"])
    #: Cap on the number of replayed increments per configuration
    #: (None = replay everything the dataset provides).
    max_increments: Optional[int] = None
    #: Batch sizes for the batching experiments.
    batch_sizes: Sequence[int] = field(default_factory=lambda: [1, 10, 100, 1000, 10000])
    #: RNG seed forwarded to the dataset generators.
    seed: int = 0
    #: Where results are written (tables + JSON); None disables persistence.
    output_dir: Optional[Path] = None
    #: Quick mode: small datasets, few increments — used by pytest targets.
    quick: bool = False
    #: Graph backend for the engines ("dict" / "array"); None = process default.
    backend: Optional[str] = None
    #: Static-peel method for the baselines: "heap" (Algorithm 1 over the
    #: mutable graph) or "csr" (vectorised peel over a frozen CSR snapshot).
    static: str = "heap"
    #: Number of shard engines (1 = single-engine Spade; > 1 builds a
    #: ShardedSpade partitioned over that many shards).
    shards: int = 1

    @classmethod
    def quick_config(cls, **overrides) -> "ExperimentConfig":
        """A configuration sized for CI and pytest-benchmark runs."""
        config = cls(
            datasets=list(QUICK_DATASETS),
            max_increments=300,
            batch_sizes=[1, 10, 100],
            quick=True,
        )
        for key, value in overrides.items():
            setattr(config, key, value)
        return config

    def grab_datasets(self) -> List[str]:
        """Return only the Grab-family datasets of this configuration."""
        return [name for name in self.datasets if name.startswith("grab")]

    def semantics_instances(self) -> List[Tuple[str, PeelingSemantics]]:
        """Instantiate the configured semantics."""
        return [(name, SEMANTICS_FACTORIES[name]()) for name in self.semantics]

    def engine_config(
        self, semantics: str = "DG", edge_grouping: bool = False
    ) -> EngineConfig:
        """Export this experiment's engine knobs as a public-API config.

        The one bridge between the experiment harness and engine
        construction: every experiment builds its engines through the
        :class:`~repro.api.EngineConfig` this returns (validated once,
        round-trippable through JSON next to the result tables).
        """
        return EngineConfig(
            semantics=semantics,
            backend=self.backend,
            static=self.static,
            shards=self.shards,
            edge_grouping=edge_grouping,
        )


@dataclass
class ExperimentResult:
    """Rows plus notes produced by one experiment runner."""

    experiment: str
    description: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    columns: Optional[Sequence[str]] = None

    def add_row(self, **values: object) -> None:
        """Append one result row."""
        self.rows.append(dict(values))

    def add_note(self, note: str) -> None:
        """Append a free-form observation."""
        self.notes.append(note)

    def to_text(self) -> str:
        """Render the result as plain text (table + notes)."""
        from repro.bench.tables import render_table

        parts = [render_table(self.rows, columns=self.columns, title=f"{self.experiment}: {self.description}")]
        if self.notes:
            parts.append("")
            parts.extend(f"note: {note}" for note in self.notes)
        return "\n".join(parts)

    def to_markdown(self) -> str:
        """Render the result as markdown."""
        from repro.bench.tables import render_markdown

        parts = [render_markdown(self.rows, columns=self.columns, title=f"{self.experiment}: {self.description}")]
        if self.notes:
            parts.append("")
            parts.extend(f"*{note}*" for note in self.notes)
        return "\n".join(parts)


# ---------------------------------------------------------------------- #
# Engine / dataset construction
# ---------------------------------------------------------------------- #
_DATASET_CACHE: Dict[Tuple[str, int], Dataset] = {}


def load_dataset(name: str, seed: int = 0, cache: bool = True) -> Dataset:
    """Generate (and memoise) a named dataset.

    Experiments frequently need the same dataset under several semantics
    and policies; memoising the generation keeps the harness runtime
    dominated by the algorithms being measured rather than by workload
    synthesis.
    """
    key = (name, seed)
    if cache and key in _DATASET_CACHE:
        return _DATASET_CACHE[key]
    dataset = generate_dataset(name, seed=seed)
    if cache:
        _DATASET_CACHE[key] = dataset
    return dataset


def build_engine(
    dataset: Dataset,
    semantics: PeelingSemantics,
    edge_grouping: bool = False,
    backend: Optional[str] = None,
    shards: int = 1,
    config: Optional[EngineConfig] = None,
) -> DetectionEngine:
    """Build a detection engine loaded with the dataset's initial graph.

    Construction goes through the public :class:`~repro.api.EngineConfig`
    — pass one directly (usually ``ExperimentConfig.engine_config()``) or
    let the legacy keyword knobs be folded into one.  ``shards = 1`` (the
    default) builds the classic single-engine ``Spade``, larger values a
    ``ShardedSpade`` hash-partitioned over that many shard engines.
    """
    if config is None:
        config = EngineConfig(backend=backend, shards=shards, edge_grouping=edge_grouping)
    spade = config.build(semantics)
    spade.load_graph(dataset.initial_graph(semantics))
    return spade


def static_peel_fn(config: ExperimentConfig):
    """Return the static-peel callable selected by ``config.static``.

    ``"heap"`` is Algorithm 1 over the mutable graph
    (:func:`repro.peeling.static.peel`); ``"csr"`` freezes the graph into
    an immutable CSR snapshot and runs the vectorised
    :func:`repro.peeling.static.peel_csr` — both produce bit-identical
    results, so experiments may use either as the static baseline.
    """
    from repro.peeling.static import peel, peel_csr

    if config.static == "csr":
        return peel_csr
    return peel


def save_result(result: ExperimentResult, config: ExperimentConfig) -> Optional[Path]:
    """Persist a result under ``config.output_dir`` (tables + JSON)."""
    if config.output_dir is None:
        return None
    out = Path(config.output_dir)
    out.mkdir(parents=True, exist_ok=True)
    text_path = out / f"{result.experiment}.txt"
    text_path.write_text(result.to_text() + "\n", encoding="utf-8")
    json_path = out / f"{result.experiment}.json"
    json_path.write_text(
        json.dumps(
            {
                "experiment": result.experiment,
                "description": result.description,
                "rows": result.rows,
                "notes": result.notes,
            },
            indent=2,
            default=str,
        ),
        encoding="utf-8",
    )
    return text_path


def standard_argument_parser(description: str) -> argparse.ArgumentParser:
    """Build the CLI parser shared by ``python -m repro.bench.experiments.*``."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument("--quick", action="store_true", help="run on the small datasets")
    parser.add_argument("--seed", type=int, default=0, help="dataset generation seed")
    parser.add_argument(
        "--max-increments", type=int, default=None, help="cap on replayed increments"
    )
    parser.add_argument(
        "--output-dir", type=Path, default=None, help="directory for result tables"
    )
    parser.add_argument(
        "--datasets", nargs="*", default=None, help="override the dataset list"
    )
    parser.add_argument(
        "--backend",
        choices=list(VALID_BACKENDS),
        default=None,
        help="graph backend for the engines (default: process default)",
    )
    parser.add_argument(
        "--static",
        choices=list(VALID_STATIC),
        default="heap",
        help="static-peel method for baselines: heap (Algorithm 1) or csr "
        "(vectorised peel over a frozen CSR snapshot)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="number of shard engines (1 = single-engine Spade, > 1 = "
        "hash-partitioned ShardedSpade)",
    )
    return parser


def config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    """Convert parsed CLI arguments into an :class:`ExperimentConfig`."""
    if args.quick:
        config = ExperimentConfig.quick_config(seed=args.seed, output_dir=args.output_dir)
    else:
        config = ExperimentConfig(seed=args.seed, output_dir=args.output_dir)
    if args.max_increments is not None:
        config.max_increments = args.max_increments
    if args.datasets:
        config.datasets = list(args.datasets)
    if getattr(args, "backend", None):
        config.backend = args.backend
    if getattr(args, "static", None):
        config.static = args.static
    if getattr(args, "shards", None):
        config.shards = args.shards
    # One validation choke point for every experiment CLI (argparse
    # ``choices`` already guards flag values; this also covers configs
    # built programmatically and the shards count).
    validate_config(backend=config.backend, static=config.static, shards=config.shards)
    return config
