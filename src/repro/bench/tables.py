"""Plain-text and markdown rendering of experiment result tables."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = ["render_table", "render_markdown"]


def _columns(rows: Sequence[Dict[str, object]], columns: Optional[Sequence[str]]) -> List[str]:
    """Determine the column order (explicit, else first-seen order)."""
    if columns is not None:
        return list(columns)
    seen: List[str] = []
    for row in rows:
        for key in row:
            if key not in seen:
                seen.append(key)
    return seen


def _cell(value: object) -> str:
    """Format one cell."""
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def render_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned plain-text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    cols = _columns(rows, columns)
    cells = [[_cell(row.get(col)) for col in cols] for row in rows]
    widths = [max(len(col), *(len(line[i]) for line in cells)) for i, col in enumerate(cols)]

    def fmt(values: Sequence[str]) -> str:
        return "  ".join(value.ljust(widths[i]) for i, value in enumerate(values)).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt(cols))
    lines.append(fmt(["-" * w for w in widths]))
    lines.extend(fmt(line) for line in cells)
    return "\n".join(lines)


def render_markdown(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render rows as a GitHub-flavoured markdown table."""
    if not rows:
        return (f"### {title}\n\n" if title else "") + "_no rows_"
    cols = _columns(rows, columns)
    lines = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append("| " + " | ".join(cols) + " |")
    lines.append("|" + "|".join("---" for _ in cols) + "|")
    for row in rows:
        lines.append("| " + " | ".join(_cell(row.get(col)) for col in cols) + " |")
    return "\n".join(lines)
