"""Time-travel and cold-store bench: as-of latency and indexer throughput.

Builds one durable deployment (WAL + checkpoints) from the fig10-style
workload generator, then measures the two hot paths of
:mod:`repro.history` into ``BENCH_history.json``:

* ``asof`` — cold versus cached ``GET /v1/detect?asof=SEQ`` latency.  A
  cold read pays checkpoint load + WAL-suffix replay + freeze
  (:meth:`AsofService.snapshot_at` with an empty cache); a cached read is
  an LRU hit on the frozen snapshot.  The sample sequences are spread
  evenly across the WAL, so the cold numbers average short and long
  replay suffixes the way a forensic workload would;
* ``indexer`` — epochs/s for a full catch-up :meth:`HistoryIndexer.step`
  over the same WAL (reconstruct + enumerate + SQLite append per epoch),
  plus the no-op resume step that proves idempotency costs one WAL tail
  scan, not a re-index.

The server only runs while the WAL is being produced; both measured
phases read the finished directory, so the numbers are pure history-path
cost.  ``--quick`` shrinks the workload for CI; ``--check`` asserts the
cache actually pays (cached p50 strictly below cold p50) and that the
indexer makes progress.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro._version import __version__
from repro.api.config import EngineConfig
from repro.bench.backend_bench import (
    DEFAULT_INITIAL_EDGES,
    DEFAULT_VERTICES,
    QUICK_INITIAL_EDGES,
    QUICK_VERTICES,
    generate_stream,
)
from repro.bench.serve_bench import _AppThread, _ingest_bulk, _percentile
from repro.history.asof import AsofService
from repro.history.config import HistoryConfig
from repro.history.indexer import HistoryIndexer, resolve_db_path
from repro.history.store import HistoryStore
from repro.serve.app import ServeApp
from repro.serve.config import ServeConfig

__all__ = ["run_history_bench", "main"]


def _sample_seqs(head: int, samples: int) -> List[int]:
    """``samples`` distinct sequences spread evenly across ``[1, head]``."""
    if head < 1:
        return []
    count = min(samples, head)
    return sorted({max(1, round(head * (i + 1) / count)) for i in range(count)})


def run_history_bench(
    num_vertices: int = DEFAULT_VERTICES,
    num_initial: int = DEFAULT_INITIAL_EDGES,
    num_increments: int = 2000,
    seed: int = 42,
    bulk_size: int = 50,
    checkpoint_interval: int = 500,
    epoch_interval: int = 4,
    asof_samples: int = 8,
) -> Dict[str, object]:
    """Produce one WAL, then measure as-of reads and the indexer over it."""
    initial, increments = generate_stream(num_vertices, num_initial, num_increments, seed)
    initial = [(f"v{s}", f"v{d}", w) for s, d, w in initial]
    increments = [(f"v{s}", f"v{d}", w) for s, d, w in increments]

    wal_tmp = Path(tempfile.mkdtemp(prefix="repro-history-bench-"))
    config = EngineConfig(
        semantics="DW",
        backend="array",
        serve=ServeConfig(
            port=0,
            wal_dir=str(wal_tmp),
            fsync=False,
            max_batch=256,
            max_delay_ms=2.0,
            checkpoint_interval=checkpoint_interval,
        ),
    )
    failures: List[str] = []
    try:
        # Phase 0 (unmeasured): produce the WAL + checkpoints over the wire.
        runner = _AppThread(ServeApp(config, initial_edges=initial))
        port = runner.start()
        try:
            _, ingest_failures = _ingest_bulk(port, increments, bulk_size)
            failures.extend(ingest_failures)
        finally:
            runner.stop()

        # Phase 1: cold as-of reads.  A cache large enough to hold every
        # sample means each sequence is reconstructed exactly once cold.
        service = AsofService(config, cache_size=asof_samples + 1)
        head = service.head_seq()
        seqs = _sample_seqs(head, asof_samples)
        cold: List[float] = []
        for seq in seqs:
            began = time.perf_counter()
            service.snapshot_at(seq, head)
            cold.append(time.perf_counter() - began)

        # Phase 2: the same sequences again — every read is an LRU hit.
        cached: List[float] = []
        for seq in seqs:
            began = time.perf_counter()
            service.snapshot_at(seq, head)
            cached.append(time.perf_counter() - began)
        if service.hits != len(seqs):
            failures.append(
                f"expected {len(seqs)} cache hits, observed {service.hits}"
            )

        # Phase 3: full indexer catch-up over the same WAL, then the no-op
        # resume step a restarted indexer performs.
        history = HistoryConfig(epoch_interval=epoch_interval)
        indexer = HistoryIndexer(wal_tmp, history, config=config)
        began = time.perf_counter()
        report = indexer.step()
        index_seconds = time.perf_counter() - began
        began = time.perf_counter()
        resume_report = HistoryIndexer(wal_tmp, history, config=config).step()
        resume_seconds = time.perf_counter() - began
        if resume_report["new_epochs"] != 0:
            failures.append(
                f"resume step indexed {resume_report['new_epochs']} epochs, expected 0"
            )
        with HistoryStore(resolve_db_path(wal_tmp, history)) as store:
            db_stats = store.stats()
    finally:
        shutil.rmtree(wal_tmp, ignore_errors=True)

    cold_p50 = _percentile(cold, 0.50)
    cached_p50 = _percentile(cached, 0.50)
    epochs = int(report["new_epochs"])
    return {
        "bench": "history",
        "version": __version__,
        "workload": {
            "num_vertices": num_vertices,
            "num_initial": num_initial,
            "num_increments": num_increments,
            "seed": seed,
            "semantics": "DW",
            "backend": "array",
            "bulk_size": bulk_size,
            "checkpoint_interval": checkpoint_interval,
            "epoch_interval": epoch_interval,
            "wal_head_seq": head,
        },
        "asof": {
            "samples": len(seqs),
            "sample_seqs": seqs,
            "cold_p50_ms": round(cold_p50 * 1e3, 3),
            "cold_mean_ms": round(sum(cold) / len(cold) * 1e3, 3) if cold else 0.0,
            "cold_max_ms": round(max(cold) * 1e3, 3) if cold else 0.0,
            "cached_p50_ms": round(cached_p50 * 1e3, 3),
            "cached_mean_ms": round(sum(cached) / len(cached) * 1e3, 3)
            if cached
            else 0.0,
            "cache_speedup": round(cold_p50 / cached_p50, 1) if cached_p50 else 0.0,
        },
        "indexer": {
            "epochs": epochs,
            "last_indexed_seq": report["last_indexed_seq"],
            "seconds": round(index_seconds, 4),
            "epochs_per_s": round(epochs / index_seconds, 2) if index_seconds else 0.0,
            "resume_seconds": round(resume_seconds, 4),
            "resume_new_epochs": resume_report["new_epochs"],
            "store": db_stats,
        },
        "failures": failures,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.history_bench",
        description="As-of read latency and cold-store indexer throughput bench.",
    )
    parser.add_argument("--quick", action="store_true", help="small CI workload")
    parser.add_argument("--vertices", type=int, default=None)
    parser.add_argument("--initial", type=int, default=None)
    parser.add_argument("--increments", type=int, default=None)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--bulk-size", type=int, default=50)
    parser.add_argument("--checkpoint-interval", type=int, default=None)
    parser.add_argument("--epoch-interval", type=int, default=None)
    parser.add_argument("--asof-samples", type=int, default=8)
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless the as-of cache beats cold reconstruction "
        "and the indexer recorded at least one epoch",
    )
    parser.add_argument("--output", type=Path, default=Path("BENCH_history.json"))
    args = parser.parse_args(argv)

    if args.quick:
        vertices = args.vertices or QUICK_VERTICES
        initial = args.initial or QUICK_INITIAL_EDGES
        increments = args.increments or 600
        checkpoint_interval = args.checkpoint_interval or 200
        epoch_interval = args.epoch_interval or 3
    else:
        vertices = args.vertices or DEFAULT_VERTICES
        initial = args.initial or DEFAULT_INITIAL_EDGES
        increments = args.increments or 2000
        checkpoint_interval = args.checkpoint_interval or 500
        epoch_interval = args.epoch_interval or 4

    report = run_history_bench(
        num_vertices=vertices,
        num_initial=initial,
        num_increments=increments,
        seed=args.seed,
        bulk_size=args.bulk_size,
        checkpoint_interval=checkpoint_interval,
        epoch_interval=epoch_interval,
        asof_samples=args.asof_samples,
    )
    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    asof = report["asof"]
    indexer = report["indexer"]
    print(
        f"asof: cold p50 {asof['cold_p50_ms']} ms (max {asof['cold_max_ms']} ms), "
        f"cached p50 {asof['cached_p50_ms']} ms "
        f"({asof['cache_speedup']}x) over {asof['samples']} samples | "
        f"indexer: {indexer['epochs']} epochs in {indexer['seconds']} s "
        f"({indexer['epochs_per_s']} epochs/s), "
        f"resume {indexer['resume_seconds']} s"
    )
    failures = report["failures"]
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    if args.check:
        if indexer["epochs"] < 1:
            print("FAIL: the indexer recorded no epochs", file=sys.stderr)
            return 1
        if asof["cached_p50_ms"] >= asof["cold_p50_ms"]:
            print(
                f"FAIL: cached as-of p50 {asof['cached_p50_ms']} ms did not beat "
                f"cold p50 {asof['cold_p50_ms']} ms",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
