"""HTTP serving bench: ingest throughput and query latency over the wire.

Drives the fig10-style workload (same generator as
:mod:`repro.bench.backend_bench`) through a real ``repro.serve`` server —
initial graph loaded at boot, increments ingested over HTTP — and records
wall-clock percentiles into ``BENCH_serve.json``:

* ``single`` — keep-alive single-edge ``POST /v1/edges`` from ``--clients``
  concurrent connections: sustained events/s plus p50/p99 ack latency
  (each ack means the edge is WAL-logged *and* applied).  Every event pays
  a full per-event detection here, so at fig10 scale this measures the
  engine's detect-per-edge cost through the wire;
* ``bulk`` — the same stream in ``--bulk-size`` chunks: one Algorithm-2
  pass + one detection per chunk, the sustained-ingest mode a production
  deployment would use;
* ``query_under_load`` — ``GET /v1/detect`` latency percentiles measured
  *while* the single-edge ingest runs, demonstrating that snapshot-isolated
  reads do not stall behind the writer (the ISSUE's "non-blocking p99");
* ``tracing_overhead`` — the bulk stream re-run at ``trace_sample`` 0 /
  default (0.1) / 1.0 against a WAL-backed server, reporting the relative
  throughput cost of the :mod:`repro.obs` layer (the acceptance bar is
  < 5% at the default rate);
* ``stage_breakdown`` — per-stage latency percentiles (queue wait, WAL
  append, engine apply, worker round trip) aggregated from the fully
  sampled leg's ``/debug/traces`` spans: where a bulk request's time goes.

The server runs in-process on a background event-loop thread (same
interpreter, real sockets), so the bench measures the serving stack rather
than process spawn noise.  ``--quick`` shrinks the workload for CI; the
acceptance bar asserted by ``--check`` is sustained HTTP ingest (the
faster of the two modes) ≥ 1000 events/s.

``--workers`` adds the process-resident shard deployment as an axis: a
single value benches that topology, a comma-separated sweep (e.g.
``--workers 0,4``) runs each deployment against the identical workload
and emits a ``workers_comparison`` table — bulk/single speedups of every
run against the in-process baseline.
"""

from __future__ import annotations

import argparse
import asyncio
import http.client
import json
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro._version import __version__
from repro.api.config import EngineConfig
from repro.config import VALID_KERNELS
from repro.bench.backend_bench import (
    DEFAULT_INCREMENTS,
    DEFAULT_INITIAL_EDGES,
    DEFAULT_VERTICES,
    QUICK_INCREMENTS,
    QUICK_INITIAL_EDGES,
    QUICK_VERTICES,
    generate_stream,
)
from repro.serve.app import ServeApp
from repro.serve.config import ServeConfig

__all__ = ["run_serve_bench", "main"]


def _percentile(samples: Sequence[float], q: float) -> float:
    """Exact percentile over the raw samples (same method as timing.py)."""
    if not samples:
        return 0.0
    return float(np.percentile(samples, q * 100.0))


class _AppThread:
    """Run a :class:`ServeApp` on its own event loop in a daemon thread."""

    def __init__(self, app: ServeApp) -> None:
        self.app = app
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run, name="serve-bench-loop", daemon=True)

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_forever()

    def start(self) -> int:
        self._thread.start()
        asyncio.run_coroutine_threadsafe(self.app.start(), self.loop).result(timeout=60)
        return self.app.server.port

    def stop(self) -> None:
        asyncio.run_coroutine_threadsafe(self.app.stop(), self.loop).result(timeout=60)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=30)
        self.loop.close()


def _post_worker(
    port: int,
    rows: Sequence[tuple],
    latencies: List[float],
    failures: List[str],
) -> None:
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        for src, dst, weight in rows:
            body = json.dumps({"src": src, "dst": dst, "weight": weight})
            began = time.perf_counter()
            connection.request(
                "POST", "/v1/edges", body=body, headers={"Content-Type": "application/json"}
            )
            response = connection.getresponse()
            response.read()
            latencies.append(time.perf_counter() - began)
            if response.status != 200:
                failures.append(f"POST /v1/edges -> {response.status}")
                return
    except Exception as exc:  # noqa: BLE001 - report into the bench result
        failures.append(f"{type(exc).__name__}: {exc}")
    finally:
        connection.close()


def _ingest_single(
    port: int, increments: Sequence[tuple], clients: int
) -> Tuple[Dict[str, float], List[str]]:
    shards: List[List[tuple]] = [list(increments[i::clients]) for i in range(clients)]
    latencies: List[List[float]] = [[] for _ in range(clients)]
    failures: List[str] = []
    threads = [
        threading.Thread(target=_post_worker, args=(port, shard, lat, failures))
        for shard, lat in zip(shards, latencies)
    ]
    began = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - began
    flat = [sample for lane in latencies for sample in lane]
    row = {
        "events": len(flat),
        "clients": clients,
        "seconds": round(elapsed, 4),
        "throughput_eps": round(len(flat) / elapsed, 1) if elapsed else 0.0,
        "p50_ms": round(_percentile(flat, 0.50) * 1e3, 3),
        "p99_ms": round(_percentile(flat, 0.99) * 1e3, 3),
    }
    return row, failures


def _ingest_bulk(
    port: int, increments: Sequence[tuple], bulk_size: int
) -> Tuple[Dict[str, float], List[str]]:
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    latencies: List[float] = []
    failures: List[str] = []
    sent = 0
    began = time.perf_counter()
    try:
        for index in range(0, len(increments), bulk_size):
            chunk = [
                [src, dst, weight]
                for src, dst, weight in increments[index : index + bulk_size]
            ]
            body = json.dumps({"edges": chunk})
            chunk_began = time.perf_counter()
            connection.request(
                "POST", "/v1/edges", body=body, headers={"Content-Type": "application/json"}
            )
            response = connection.getresponse()
            response.read()
            latencies.append(time.perf_counter() - chunk_began)
            if response.status != 200:
                failures.append(f"bulk POST /v1/edges -> {response.status}")
                break
            sent += len(chunk)
    except Exception as exc:  # noqa: BLE001
        failures.append(f"{type(exc).__name__}: {exc}")
    finally:
        connection.close()
    elapsed = time.perf_counter() - began
    row = {
        "events": sent,
        "bulk_size": bulk_size,
        "requests": len(latencies),
        "seconds": round(elapsed, 4),
        "throughput_eps": round(sent / elapsed, 1) if elapsed else 0.0,
        "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
        "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
    }
    return row, failures


def _query_worker(
    port: int, stop: threading.Event, latencies: List[float], failures: List[str]
) -> None:
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        while not stop.is_set():
            began = time.perf_counter()
            connection.request("GET", "/v1/detect")
            response = connection.getresponse()
            response.read()
            latencies.append(time.perf_counter() - began)
            if response.status != 200:
                failures.append(f"GET /v1/detect -> {response.status}")
                return
    except Exception as exc:  # noqa: BLE001
        failures.append(f"{type(exc).__name__}: {exc}")
    finally:
        connection.close()


def _scrape_stage_breakdown(port: int, limit: int = 5000) -> Dict[str, Dict[str, float]]:
    """Aggregate per-stage latency percentiles from ``/debug/traces`` spans."""
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        connection.request("GET", f"/debug/traces?limit={limit}")
        response = connection.getresponse()
        payload = json.loads(response.read())
    finally:
        connection.close()
    samples: Dict[str, List[float]] = {}
    for trace in payload.get("traces", []):
        for span in trace.get("spans", []):
            samples.setdefault(str(span["name"]), []).append(
                float(span["duration_ms"])
            )
    return {
        name: {
            "count": len(values),
            "p50_ms": round(_percentile(values, 0.50), 3),
            "p99_ms": round(_percentile(values, 0.99), 3),
        }
        for name, values in sorted(samples.items())
    }


def _tracing_legs(
    base_config: EngineConfig,
    initial: Sequence[tuple],
    increments: Sequence[tuple],
    bulk_size: int,
    reps: int = 3,
) -> Tuple[Dict[str, object], Dict[str, Dict[str, float]], List[str]]:
    """Re-run the bulk stream at three sample rates against a WAL-backed server.

    Every leg shares one config shape (tmpdir WAL, no fsync) and differs
    only in ``trace_sample``, so the throughput deltas isolate the tracing
    layer.  Each leg replays the stream ``reps`` times against its server
    and keeps the **best** repetition — detection-cost spikes (a peel
    landing inside one chunk) swing a single pass's mean by far more than
    the tracing layer costs, and the graph grows identically across the
    legs, so best-of-``reps`` compares like with like.  The fully sampled
    leg also yields the stage breakdown — its recorder holds a span tree
    for every bulk request.
    """
    import shutil
    import tempfile

    legs: Dict[float, float] = {}
    breakdown: Dict[str, Dict[str, float]] = {}
    failures: List[str] = []
    for rate in (0.0, 0.1, 1.0):
        wal_tmp = Path(tempfile.mkdtemp(prefix="repro-serve-bench-obs-"))
        config = base_config.replace(
            serve=base_config.serve.replace(  # type: ignore[union-attr]
                wal_dir=str(wal_tmp),
                fsync=False,
                obs={"trace_sample": rate, "slow_ms": 0.0},
            )
        )
        runner = _AppThread(ServeApp(config, initial_edges=list(initial)))
        try:
            port = runner.start()
            best = 0.0
            for _rep in range(reps):
                row, leg_failures = _ingest_bulk(port, increments, bulk_size)
                failures.extend(leg_failures)
                if leg_failures:
                    break
                best = max(best, float(row["throughput_eps"]))
            legs[rate] = best
            if rate == 1.0 and not failures:
                breakdown = _scrape_stage_breakdown(port)
        finally:
            runner.stop()
            shutil.rmtree(wal_tmp, ignore_errors=True)

    off = legs.get(0.0, 0.0)

    def _overhead(rate: float) -> float:
        if not off:
            return 0.0
        return round((off - legs.get(rate, 0.0)) / off * 100.0, 2)

    overhead_row: Dict[str, object] = {
        "bulk_eps_off": legs.get(0.0, 0.0),
        "bulk_eps_default": legs.get(0.1, 0.0),
        "bulk_eps_full": legs.get(1.0, 0.0),
        "overhead_pct_default": _overhead(0.1),
        "overhead_pct_full": _overhead(1.0),
    }
    return overhead_row, breakdown, failures


def run_serve_bench(
    num_vertices: int = DEFAULT_VERTICES,
    num_initial: int = DEFAULT_INITIAL_EDGES,
    num_increments: int = 4000,
    seed: int = 42,
    clients: int = 16,
    bulk_size: int = 200,
    fsync: bool = False,
    max_batch: int = 256,
    max_delay_ms: float = 2.0,
    workers: int = 0,
    kernel: str = "auto",
) -> Dict[str, object]:
    """Run the three phases against one in-process server; return the report.

    ``workers >= 2`` benches the process-resident shard deployment
    (``repro.serve.workers``): the same HTTP surface, with shard
    maintenance scattered across worker processes.
    """
    initial, increments = generate_stream(num_vertices, num_initial, num_increments, seed)
    # Labels over the wire are JSON strings; keep the offline shape equal.
    initial = [(f"v{s}", f"v{d}", w) for s, d, w in initial]
    increments = [(f"v{s}", f"v{d}", w) for s, d, w in increments]

    config = EngineConfig(
        semantics="DW",
        backend="array",
        kernel=kernel,
        serve=ServeConfig(
            port=0,
            wal_dir=None,  # pure serving-path measurement; --fsync adds the WAL
            fsync=False,
            max_batch=max_batch,
            max_delay_ms=max_delay_ms,
            queue_size=4096,
            workers=workers,
        ),
    )
    wal_tmp: Optional[Path] = None
    if fsync:
        import tempfile

        wal_tmp = Path(tempfile.mkdtemp(prefix="repro-serve-bench-"))
        config = config.replace(
            serve=config.serve.replace(wal_dir=str(wal_tmp), fsync=True)  # type: ignore[union-attr]
        )

    runner = _AppThread(ServeApp(config, initial_edges=initial))
    port = runner.start()
    failures: List[str] = []
    try:
        half = len(increments) // 2
        # Phase 1: single-edge ingest alone.
        single_row, phase_failures = _ingest_single(port, increments[:half], clients)
        failures.extend(phase_failures)

        # Phase 2: queries concurrent with the second ingest half.
        stop = threading.Event()
        query_latencies: List[float] = []
        query_thread = threading.Thread(
            target=_query_worker, args=(port, stop, query_latencies, failures)
        )
        query_thread.start()
        under_load_row, phase_failures = _ingest_single(port, increments[half:], clients)
        failures.extend(phase_failures)
        stop.set()
        query_thread.join()
        query_row = {
            "queries": len(query_latencies),
            "p50_ms": round(_percentile(query_latencies, 0.50) * 1e3, 3),
            "p99_ms": round(_percentile(query_latencies, 0.99) * 1e3, 3),
        }

        # Phase 3: the same increment stream again, bulk-chunked.
        bulk_row, phase_failures = _ingest_bulk(port, increments, bulk_size)
        failures.extend(phase_failures)
    finally:
        runner.stop()
        if wal_tmp is not None:
            import shutil

            shutil.rmtree(wal_tmp, ignore_errors=True)

    # Phase 4: tracing overhead + per-stage breakdown (fresh WAL-backed
    # servers so the legs include the append path the spans describe).
    tracing_row, stage_breakdown, phase_failures = _tracing_legs(
        config, initial, increments, bulk_size
    )
    failures.extend(phase_failures)

    return {
        "bench": "serve",
        "version": __version__,
        "workload": {
            "num_vertices": num_vertices,
            "num_initial": num_initial,
            "num_increments": num_increments,
            "seed": seed,
            "semantics": "DW",
            "backend": "array",
            "durability": "wal+fsync" if fsync else "none",
            "workers": workers,
            "kernel": kernel,
        },
        "single": single_row,
        "single_under_queries": under_load_row,
        "query_under_load": query_row,
        "bulk": bulk_row,
        "tracing_overhead": tracing_row,
        "stage_breakdown": stage_breakdown,
        "failures": failures,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.serve_bench",
        description="HTTP ingest/query latency bench for repro.serve.",
    )
    parser.add_argument("--quick", action="store_true", help="small CI workload")
    parser.add_argument("--vertices", type=int, default=None)
    parser.add_argument("--initial", type=int, default=None)
    parser.add_argument("--increments", type=int, default=None)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--clients", type=int, default=16)
    parser.add_argument("--bulk-size", type=int, default=200)
    parser.add_argument("--max-batch", type=int, default=256)
    parser.add_argument("--max-delay-ms", type=float, default=2.0)
    parser.add_argument(
        "--fsync", action="store_true", help="enable the WAL + fsync during the bench"
    )
    parser.add_argument(
        "--kernel",
        choices=list(VALID_KERNELS),
        default="auto",
        help="hot-loop kernel for the served engine (native C when available)",
    )
    parser.add_argument(
        "--workers",
        type=str,
        default="0",
        help=(
            "process-resident shard workers axis: a single value (e.g. 4) or a "
            "comma-separated sweep (e.g. 0,4); a sweep emits a workers-vs-"
            "single comparison in the report (0 = in-process engine)"
        ),
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=(
            "exit non-zero unless sustained HTTP ingest (the faster of the "
            "single-edge and bulk modes) reaches >= 1000 events/s"
        ),
    )
    parser.add_argument("--output", type=Path, default=Path("BENCH_serve.json"))
    args = parser.parse_args(argv)

    if args.quick:
        vertices = args.vertices or QUICK_VERTICES
        initial = args.initial or QUICK_INITIAL_EDGES
        increments = args.increments or max(QUICK_INCREMENTS * 20, 1200)
    else:
        vertices = args.vertices or DEFAULT_VERTICES
        initial = args.initial or DEFAULT_INITIAL_EDGES
        increments = args.increments or 4000

    try:
        workers_axis = [int(value) for value in args.workers.split(",") if value != ""]
    except ValueError:
        print(f"FAIL: --workers must be integers, got {args.workers!r}", file=sys.stderr)
        return 2
    if not workers_axis:
        workers_axis = [0]

    runs: List[Dict[str, object]] = []
    for workers in workers_axis:
        runs.append(
            run_serve_bench(
                num_vertices=vertices,
                num_initial=initial,
                num_increments=increments,
                seed=args.seed,
                clients=args.clients,
                bulk_size=args.bulk_size,
                fsync=args.fsync,
                max_batch=args.max_batch,
                max_delay_ms=args.max_delay_ms,
                workers=workers,
                kernel=args.kernel,
            )
        )

    # The headline report is the last (most-parallel) run; a sweep adds the
    # per-deployment rows and the workers-vs-single comparison next to it.
    report = dict(runs[-1])
    if len(runs) > 1:
        report["runs"] = [
            {
                "workers": run["workload"]["workers"],  # type: ignore[index]
                "single": run["single"],
                "single_under_queries": run["single_under_queries"],
                "query_under_load": run["query_under_load"],
                "bulk": run["bulk"],
                "failures": run["failures"],
            }
            for run in runs
        ]
        report["failures"] = [
            failure for run in runs for failure in run["failures"]  # type: ignore[union-attr]
        ]
        baseline = next(
            (run for run in runs if int(run["workload"]["workers"]) <= 1), runs[0]  # type: ignore[index]
        )
        base_single = float(baseline["single"]["throughput_eps"])  # type: ignore[index]
        base_bulk = float(baseline["bulk"]["throughput_eps"])  # type: ignore[index]
        report["workers_comparison"] = {
            "baseline_workers": baseline["workload"]["workers"],  # type: ignore[index]
            "rows": [
                {
                    "workers": run["workload"]["workers"],  # type: ignore[index]
                    "single_eps": run["single"]["throughput_eps"],  # type: ignore[index]
                    "bulk_eps": run["bulk"]["throughput_eps"],  # type: ignore[index]
                    "single_speedup": round(
                        float(run["single"]["throughput_eps"]) / base_single, 2  # type: ignore[index]
                    )
                    if base_single
                    else 0.0,
                    "bulk_speedup": round(
                        float(run["bulk"]["throughput_eps"]) / base_bulk, 2  # type: ignore[index]
                    )
                    if base_bulk
                    else 0.0,
                }
                for run in runs
            ],
        }
    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    for run in runs:
        single = run["single"]  # type: ignore[index]
        query = run["query_under_load"]  # type: ignore[index]
        bulk = run["bulk"]  # type: ignore[index]
        print(
            f"workers={run['workload']['workers']}: "  # type: ignore[index]
            f"single: {single['throughput_eps']} ev/s "
            f"(p50 {single['p50_ms']} ms, p99 {single['p99_ms']} ms) | "
            f"query under load: p50 {query['p50_ms']} ms, p99 {query['p99_ms']} ms "
            f"({query['queries']} queries) | "
            f"bulk: {bulk['throughput_eps']} ev/s"
        )
    tracing = report.get("tracing_overhead")
    if tracing:
        print(
            f"tracing overhead (bulk): off {tracing['bulk_eps_off']} ev/s, "  # type: ignore[index]
            f"default {tracing['bulk_eps_default']} ev/s "
            f"({tracing['overhead_pct_default']}%), "
            f"full {tracing['bulk_eps_full']} ev/s "
            f"({tracing['overhead_pct_full']}%)"
        )
    breakdown = report.get("stage_breakdown")
    if breakdown:
        for stage in ("queue_wait", "wal_append", "engine_apply", "worker_roundtrip"):
            row = breakdown.get(stage)  # type: ignore[union-attr]
            if row:
                print(
                    f"  stage {stage}: p50 {row['p50_ms']} ms, "
                    f"p99 {row['p99_ms']} ms ({row['count']} spans)"
                )
    comparison = report.get("workers_comparison")
    if comparison:
        for row in comparison["rows"]:  # type: ignore[index]
            print(
                f"  workers={row['workers']}: bulk {row['bulk_speedup']}x, "
                f"single {row['single_speedup']}x vs "
                f"workers={comparison['baseline_workers']}"  # type: ignore[index]
            )
    failures = report["failures"]  # type: ignore[index]
    if failures:
        for failure in failures:  # type: ignore[union-attr]
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    single = report["single"]  # type: ignore[index]
    bulk = report["bulk"]  # type: ignore[index]
    sustained = max(float(single["throughput_eps"]), float(bulk["throughput_eps"]))
    if args.check and sustained < 1000.0:
        print(
            f"FAIL: sustained HTTP ingest {sustained} ev/s "
            "(best of single-edge and bulk) < 1000 ev/s acceptance bar",
            file=sys.stderr,
        )
        return 1
    if args.check and tracing:
        overhead = float(tracing["overhead_pct_default"])  # type: ignore[index]
        if overhead >= 5.0:
            print(
                f"FAIL: tracing overhead {overhead}% at the default sample "
                "rate >= 5% acceptance bar",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
