"""Table 3 — statistics of the (synthetic stand-in) datasets."""

from __future__ import annotations

from repro.bench.harness import (
    ExperimentConfig,
    ExperimentResult,
    config_from_args,
    load_dataset,
    save_result,
    standard_argument_parser,
)
from repro.peeling.semantics import dw_semantics
from repro.workloads.datasets import DATASET_REGISTRY

__all__ = ["run"]


def run(config: ExperimentConfig) -> ExperimentResult:
    """Compute the Table 3 rows for the configured datasets."""
    result = ExperimentResult(
        experiment="table3",
        description="dataset statistics (synthetic stand-ins for Table 3)",
    )
    semantics = dw_semantics()
    for name in config.datasets:
        dataset = load_dataset(name, seed=config.seed)
        row = dataset.stats_row(semantics)
        spec = DATASET_REGISTRY.get(name)
        if spec is not None:
            row["paper |V|"] = spec.paper_vertices
            row["paper |E|"] = spec.paper_edges
        result.rows.append(row)
    result.add_note(
        "Synthetic stand-ins keep the paper's average degree and 90/10 split; "
        "absolute sizes are scaled down (see DESIGN.md)."
    )
    return result


def main() -> None:
    """CLI entry point."""
    parser = standard_argument_parser("Reproduce Table 3 (dataset statistics)")
    config = config_from_args(parser.parse_args())
    result = run(config)
    print(result.to_text())
    save_result(result, config)


if __name__ == "__main__":
    main()
