"""Table 5 — elapsed time and latency of static, batched and grouped updates.

Table 5 compares, on the Grab datasets, three ways of serving the update
stream with each algorithm:

* the static baseline (periodic from-scratch re-peeling),
* incremental maintenance in 1 K batches (``Inc*-1K``),
* incremental maintenance with edge grouping (``Inc*G``),

reporting the average elapsed compute time per edge ``E`` and the fraud
latency ``L`` (Equation 4) normalised to the static baseline.
"""

from __future__ import annotations

from repro.bench.harness import (
    ExperimentConfig,
    ExperimentResult,
    build_engine,
    config_from_args,
    load_dataset,
    save_result,
    standard_argument_parser,
)
from repro.bench.timing import time_call
from repro.peeling.static import peel
from repro.streaming.policies import BatchPolicy, EdgeGroupingPolicy, PeriodicStaticPolicy
from repro.streaming.replay import replay_stream

__all__ = ["run"]

#: Batch size of the ``Inc*-1K`` configuration (scaled down in quick mode).
FULL_BATCH = 1000
QUICK_BATCH = 100


def run(config: ExperimentConfig) -> ExperimentResult:
    """Measure E and L for static / Inc-1K / grouping on the Grab datasets."""
    result = ExperimentResult(
        experiment="table5",
        description="elapsed time E and normalised latency L (Table 5)",
        columns=[
            "dataset",
            "algorithm",
            "policy",
            "E (us/edge)",
            "L (normalised)",
            "L (stream s)",
            "R",
        ],
    )
    batch_size = QUICK_BATCH if config.quick else FULL_BATCH
    datasets = config.grab_datasets() or list(config.datasets)
    for name in datasets:
        dataset = load_dataset(name, seed=config.seed)
        limit = config.max_increments or len(dataset.increments)
        stream = dataset.increments[: min(limit, len(dataset.increments))]
        truth = dataset.fraud_community_map()
        for algo, semantics in config.semantics_instances():
            graph = dataset.initial_graph(semantics)
            _, static_seconds = time_call(lambda g=graph, s=semantics: peel(g, s.name))

            configurations = [
                (algo, PeriodicStaticPolicy(max(static_seconds, 1e-3), label=algo)),
                (f"Inc{algo}-{batch_size}", BatchPolicy(batch_size, label=f"Inc{algo}-{batch_size}")),
                (f"Inc{algo}G", EdgeGroupingPolicy(label=f"Inc{algo}G")),
            ]
            static_latency = None
            for label, policy in configurations:
                spade = build_engine(dataset, semantics, backend=config.backend, shards=config.shards)
                report = replay_stream(spade, stream, policy, fraud_communities=truth)
                metrics = report.metrics
                if static_latency is None:
                    static_latency = metrics.total_latency or 1.0
                result.add_row(
                    **{
                        "dataset": name,
                        "algorithm": algo,
                        "policy": label,
                        "E (us/edge)": round(metrics.mean_elapsed_per_edge * 1e6, 2),
                        "L (normalised)": round(metrics.total_latency / static_latency, 4)
                        if static_latency
                        else 0.0,
                        "L (stream s)": round(metrics.total_latency, 3),
                        "R": round(metrics.prevention_ratio, 4),
                    }
                )
    result.add_note(
        "L is the summed response latency of labelled fraudulent transactions "
        "(Equation 4), normalised to the periodic static baseline of the same algorithm."
    )
    result.add_note(
        "the static baseline's period equals its own measured from-scratch runtime, "
        "i.e. it re-peels back to back, as in the paper's pipeline."
    )
    return result


def main() -> None:
    """CLI entry point."""
    parser = standard_argument_parser("Reproduce Table 5 (elapsed time and latency)")
    config = config_from_args(parser.parse_args())
    result = run(config)
    print(result.to_text())
    save_result(result, config)


if __name__ == "__main__":
    main()
