"""Table 4 — per-edge maintenance time as a function of the batch size.

For every dataset and every algorithm the paper reports the static runtime
and the average per-edge time of incremental maintenance with batch sizes
1, 10, 100, 1 K and 100 K.  The reproduction sweeps the configured batch
sizes (scaled to the synthetic stream lengths) and reports one row per
(dataset, algorithm) with one column per batch size, mirroring the table's
layout.
"""

from __future__ import annotations

from repro.bench.harness import (
    ExperimentConfig,
    ExperimentResult,
    build_engine,
    config_from_args,
    load_dataset,
    save_result,
    standard_argument_parser,
)
from repro.bench.timing import time_call
from repro.peeling.static import peel
from repro.streaming.policies import BatchPolicy, PerEdgePolicy
from repro.streaming.replay import replay_stream

__all__ = ["run"]


def run(config: ExperimentConfig) -> ExperimentResult:
    """Sweep batch sizes per dataset and algorithm."""
    batch_sizes = list(config.batch_sizes)
    columns = ["dataset", "algorithm", "static (s)"] + [
        f"|ΔE|={size} (us/edge)" for size in batch_sizes
    ]
    result = ExperimentResult(
        experiment="table4",
        description="incremental maintenance time by batch size (Table 4)",
        columns=columns,
    )
    for name in config.datasets:
        dataset = load_dataset(name, seed=config.seed)
        limit = config.max_increments or len(dataset.increments)
        stream = dataset.increments[: min(limit, len(dataset.increments))]
        for algo, semantics in config.semantics_instances():
            graph = dataset.initial_graph(semantics)
            _, static_seconds = time_call(lambda g=graph, s=semantics: peel(g, s.name))
            row = {
                "dataset": name,
                "algorithm": algo,
                "static (s)": round(static_seconds, 4),
            }
            for size in batch_sizes:
                spade = build_engine(dataset, semantics, backend=config.backend, shards=config.shards)
                policy = PerEdgePolicy() if size == 1 else BatchPolicy(size)
                report = replay_stream(spade, stream, policy)
                row[f"|ΔE|={size} (us/edge)"] = round(
                    report.metrics.mean_elapsed_per_edge * 1e6, 2
                )
            result.rows.append(row)
    result.add_note(
        "per-edge time includes detection after every flush, matching InsertBatchEdges; "
        "larger batches amortise both reordering and detection, as in the paper."
    )
    result.add_note(
        f"replayed increments per configuration: up to {config.max_increments or 'all'}"
    )
    return result


def main() -> None:
    """CLI entry point."""
    parser = standard_argument_parser("Reproduce Table 4 (batch-size sweep)")
    config = config_from_args(parser.parse_args())
    result = run(config)
    print(result.to_text())
    save_result(result, config)


if __name__ == "__main__":
    main()
