"""Figure 15 — fraud-instance enumeration over consecutive timespans.

The figure shows, per timespan across a week, how many fraud instances
Spade newly identified and which pattern each belonged to.  The
reproduction replays the increment stream in ``num_spans`` slices,
enumerates dense communities after each slice (Appendix C.2) and attributes
instances to the injected patterns.
"""

from __future__ import annotations

from repro.analysis.enumeration import enumerate_over_time
from repro.bench.harness import (
    ExperimentConfig,
    ExperimentResult,
    config_from_args,
    load_dataset,
    save_result,
    standard_argument_parser,
)
from repro.peeling.semantics import dw_semantics

__all__ = ["run"]

FULL_SPANS = 28
QUICK_SPANS = 10


def run(config: ExperimentConfig) -> ExperimentResult:
    """Enumerate fraud instances per timespan on a fraud-labelled Grab dataset."""
    result = ExperimentResult(
        experiment="fig15",
        description="newly identified fraud instances per timespan (Figure 15)",
    )
    datasets = config.grab_datasets() or list(config.datasets)
    num_spans = QUICK_SPANS if config.quick else FULL_SPANS
    for name in datasets[:1]:
        dataset = load_dataset(name, seed=config.seed)
        if not dataset.fraud_communities:
            result.add_note(f"{name}: no injected fraud communities, skipping")
            continue
        timeline = enumerate_over_time(dataset, dw_semantics(), num_spans=num_spans)
        for row in timeline.as_rows():
            row["dataset"] = name
            result.rows.append(row)
        detected = sum(span.total_labelled() for span in timeline.spans)
        result.add_note(
            f"{name}: {detected} of {len(dataset.fraud_communities)} injected instances "
            f"identified across {num_spans} timespans"
        )
    result.add_note(
        "each instance is counted in the first timespan it is enumerated, matching the "
        "'newly identified fraudsters' semantics of Figure 15."
    )
    return result


def main() -> None:
    """CLI entry point."""
    parser = standard_argument_parser("Reproduce Figure 15 (instance enumeration)")
    config = config_from_args(parser.parse_args())
    result = run(config)
    print(result.to_text())
    save_result(result, config)


if __name__ == "__main__":
    main()
