"""Figure 9(b) — degree distribution of the Grab transaction graph."""

from __future__ import annotations

import math

from repro.bench.harness import (
    ExperimentConfig,
    ExperimentResult,
    config_from_args,
    load_dataset,
    save_result,
    standard_argument_parser,
)
from repro.graph.stats import degree_distribution
from repro.peeling.semantics import dw_semantics

__all__ = ["run"]


def run(config: ExperimentConfig) -> ExperimentResult:
    """Compute a log-binned degree histogram of the first Grab dataset."""
    result = ExperimentResult(
        experiment="fig9b",
        description="degree distribution of the Grab-like transaction graph",
    )
    grab = config.grab_datasets() or list(config.datasets)
    if not grab:
        result.add_note("no Grab dataset configured")
        return result
    dataset = load_dataset(grab[0], seed=config.seed)
    graph = dataset.initial_graph(dw_semantics())
    distribution = degree_distribution(graph)

    # Log-spaced buckets: [1, 2), [2, 4), [4, 8), ...
    buckets = {}
    for degree, frequency in distribution.as_pairs():
        if degree == 0:
            key = "0"
        else:
            low = 2 ** int(math.floor(math.log2(degree)))
            key = f"[{low}, {2 * low})"
        buckets[key] = buckets.get(key, 0) + frequency
    for key, count in buckets.items():
        result.add_row(dataset=dataset.name, degree_bucket=key, vertices=count)

    exponent = distribution.power_law_exponent()
    result.add_note(
        f"log-log slope of the degree histogram: {exponent:.2f} "
        "(heavy-tailed, consistent with the power law of Figure 9b)"
    )
    result.add_note(
        f"fraction of vertices with degree >= 32: {distribution.tail_mass(32):.4f}"
    )
    return result


def main() -> None:
    """CLI entry point."""
    parser = standard_argument_parser("Reproduce Figure 9(b) (degree distribution)")
    config = config_from_args(parser.parse_args())
    result = run(config)
    print(result.to_text())
    save_result(result, config)


if __name__ == "__main__":
    main()
