"""Figure 10 — static peeling vs incremental maintenance, single-edge updates.

The paper reports that IncDG / IncDW / IncFD are up to 4.17e3 / 1.63e3 /
1.96e6 times faster than their static counterparts for a single edge
insertion.  The reproduction measures, per dataset and per algorithm:

* the time of one from-scratch static run on the initial graph, and
* the mean time of an incremental ``InsertEdge`` (maintenance + detection)
  over a sample of the increment stream,

and reports the speed-up factor.  Absolute values are Python-scale; the
orders-of-magnitude gap is the reproduced quantity.
"""

from __future__ import annotations

from repro.bench.harness import (
    ExperimentConfig,
    ExperimentResult,
    build_engine,
    config_from_args,
    load_dataset,
    save_result,
    standard_argument_parser,
    static_peel_fn,
)
from repro.bench.timing import time_call
from repro.graph.backend import get_default_backend
from repro.streaming.policies import PerEdgePolicy
from repro.streaming.replay import replay_stream

__all__ = ["run"]

#: Default number of single-edge insertions sampled per configuration.
DEFAULT_SAMPLE = 400


def run(config: ExperimentConfig) -> ExperimentResult:
    """Measure static vs single-edge-incremental time per dataset/algorithm.

    The run is ``--backend dict|array`` / ``--static heap|csr``
    parametrized: the backend selects the graph storage of both the static
    baseline and the incremental engine, the static method selects between
    the heap peel and the CSR-snapshot peel (freeze time included — a
    from-scratch baseline pays for its snapshot).
    """
    backend = config.backend or get_default_backend()
    static_peel = static_peel_fn(config)
    result = ExperimentResult(
        experiment="fig10",
        description="static algorithms vs incremental maintenance (|ΔE| = 1)",
        columns=[
            "dataset",
            "algorithm",
            "backend",
            "static",
            "static (s)",
            "incremental (us/edge)",
            "speedup",
            "sampled edges",
        ],
    )
    sample = config.max_increments or DEFAULT_SAMPLE
    for name in config.datasets:
        dataset = load_dataset(name, seed=config.seed)
        for algo, semantics in config.semantics_instances():
            graph = dataset.initial_graph(semantics)
            if config.backend is not None:
                from repro.graph.backend import convert_graph

                graph = convert_graph(graph, config.backend)
            if config.static == "csr" and not hasattr(graph, "freeze"):
                # The CSR baseline times freeze + peel, not a per-edge
                # replay of a dict graph into array pools — convert
                # outside the timed region.
                from repro.graph.backend import convert_graph

                graph = convert_graph(graph, "array")
            _, static_seconds = time_call(
                lambda g=graph, s=semantics: static_peel(g, s.name)
            )

            spade = build_engine(dataset, semantics, config=config.engine_config(algo))
            stream = dataset.increments[: min(sample, len(dataset.increments))]
            report = replay_stream(spade, stream, PerEdgePolicy(label=f"Inc{algo}"))
            per_edge = report.metrics.mean_elapsed_per_edge
            speedup = static_seconds / per_edge if per_edge > 0 else float("inf")
            result.add_row(
                **{
                    "dataset": name,
                    "algorithm": algo,
                    "backend": backend,
                    "static": config.static,
                    "static (s)": round(static_seconds, 4),
                    "incremental (us/edge)": round(per_edge * 1e6, 2),
                    "speedup": round(speedup, 1),
                    "sampled edges": report.metrics.edges,
                }
            )
    result.add_note(
        "speedup = static runtime / mean per-edge incremental time; the paper reports "
        "3 to 6 orders of magnitude on million-scale graphs."
    )
    result.add_note(
        f"graph backend: {backend}; static baseline: {config.static} "
        "(csr = vectorised peel over a frozen CSR snapshot, freeze included)."
    )
    if config.shards > 1:
        result.add_note(
            f"sharded engine ({config.shards} shards): the per-flush detection "
            "is the exact merged coordinator pass, so per-edge times include a "
            "global peel — see BENCH_shard.json for the insert-throughput win."
        )
    return result


def main() -> None:
    """CLI entry point."""
    parser = standard_argument_parser("Reproduce Figure 10 (static vs incremental)")
    config = config_from_args(parser.parse_args())
    result = run(config)
    print(result.to_text())
    save_result(result, config)


if __name__ == "__main__":
    main()
