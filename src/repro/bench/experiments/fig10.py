"""Figure 10 — static peeling vs incremental maintenance, single-edge updates.

The paper reports that IncDG / IncDW / IncFD are up to 4.17e3 / 1.63e3 /
1.96e6 times faster than their static counterparts for a single edge
insertion.  The reproduction measures, per dataset and per algorithm:

* the time of one from-scratch static run on the initial graph, and
* the mean time of an incremental ``InsertEdge`` (maintenance + detection)
  over a sample of the increment stream,

and reports the speed-up factor.  Absolute values are Python-scale; the
orders-of-magnitude gap is the reproduced quantity.
"""

from __future__ import annotations

from repro.bench.harness import (
    ExperimentConfig,
    ExperimentResult,
    build_engine,
    config_from_args,
    load_dataset,
    save_result,
    standard_argument_parser,
)
from repro.bench.timing import time_call
from repro.peeling.static import peel
from repro.streaming.policies import PerEdgePolicy
from repro.streaming.replay import replay_stream

__all__ = ["run"]

#: Default number of single-edge insertions sampled per configuration.
DEFAULT_SAMPLE = 400


def run(config: ExperimentConfig) -> ExperimentResult:
    """Measure static vs single-edge-incremental time per dataset/algorithm."""
    result = ExperimentResult(
        experiment="fig10",
        description="static algorithms vs incremental maintenance (|ΔE| = 1)",
        columns=[
            "dataset",
            "algorithm",
            "static (s)",
            "incremental (us/edge)",
            "speedup",
            "sampled edges",
        ],
    )
    sample = config.max_increments or DEFAULT_SAMPLE
    for name in config.datasets:
        dataset = load_dataset(name, seed=config.seed)
        for algo, semantics in config.semantics_instances():
            graph = dataset.initial_graph(semantics)
            _, static_seconds = time_call(lambda g=graph, s=semantics: peel(g, s.name))

            spade = build_engine(dataset, semantics)
            stream = dataset.increments[: min(sample, len(dataset.increments))]
            report = replay_stream(spade, stream, PerEdgePolicy(label=f"Inc{algo}"))
            per_edge = report.metrics.mean_elapsed_per_edge
            speedup = static_seconds / per_edge if per_edge > 0 else float("inf")
            result.add_row(
                **{
                    "dataset": name,
                    "algorithm": algo,
                    "static (s)": round(static_seconds, 4),
                    "incremental (us/edge)": round(per_edge * 1e6, 2),
                    "speedup": round(speedup, 1),
                    "sampled edges": report.metrics.edges,
                }
            )
    result.add_note(
        "speedup = static runtime / mean per-edge incremental time; the paper reports "
        "3 to 6 orders of magnitude on million-scale graphs."
    )
    return result


def main() -> None:
    """CLI entry point."""
    parser = standard_argument_parser("Reproduce Figure 10 (static vs incremental)")
    config = config_from_args(parser.parse_args())
    result = run(config)
    print(result.to_text())
    save_result(result, config)


if __name__ == "__main__":
    main()
