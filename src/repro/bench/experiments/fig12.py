"""Figures 12/13 — case studies of the three fraud patterns.

Each case study pairs one injected fraud pattern with the semantics the
paper uses for it (collusion ↔ DG, deal-hunter ↔ DW, click-farming ↔ FD)
and compares how quickly the incremental detector and the periodic static
baseline recognise the community, plus how many of the community's
transactions fall between the two detection times (the transactions Spade
could have prevented but the baseline could not).
"""

from __future__ import annotations

from repro.analysis.casestudy import run_case_study
from repro.bench.harness import (
    ExperimentConfig,
    ExperimentResult,
    config_from_args,
    load_dataset,
    save_result,
    standard_argument_parser,
)
from repro.peeling.semantics import dg_semantics, dw_semantics, fraudar_semantics
from repro.workloads.fraud import (
    PATTERN_CLICK_FARMING,
    PATTERN_COLLUSION,
    PATTERN_DEAL_HUNTER,
)

__all__ = ["run"]

#: The paper's pairing of fraud pattern and detection semantics.
PATTERN_SEMANTICS = {
    PATTERN_COLLUSION: dg_semantics,
    PATTERN_DEAL_HUNTER: dw_semantics,
    PATTERN_CLICK_FARMING: fraudar_semantics,
}


def run(config: ExperimentConfig) -> ExperimentResult:
    """Run the three case studies on the first fraud-labelled Grab dataset."""
    result = ExperimentResult(
        experiment="fig12",
        description="case studies: detection delay and preventable transactions (Fig. 12/13)",
        columns=[
            "dataset",
            "pattern",
            "semantics",
            "T1 - T0 (s)",
            "T2 - T0 (s)",
            "preventable tx",
            "total tx",
        ],
    )
    datasets = config.grab_datasets() or list(config.datasets)
    static_period = 20.0 if config.quick else 60.0
    for name in datasets[:1]:
        dataset = load_dataset(name, seed=config.seed)
        if not dataset.fraud_communities:
            result.add_note(f"{name}: no injected fraud communities, skipping")
            continue
        for community in dataset.fraud_communities:
            factory = PATTERN_SEMANTICS.get(community.pattern, dw_semantics)
            study = run_case_study(
                dataset,
                community.label,
                factory(),
                static_period=static_period,
            )
            row = {"dataset": name}
            row.update(study.as_row())
            result.rows.append(row)
    result.add_note(
        "T1 is the incremental detector's detection delay from the burst start, T2 the "
        "periodic static baseline's; 'preventable tx' counts the community's transactions "
        "generated between the two (720 / 71 / 1853 in the paper's three cases)."
    )
    return result


def main() -> None:
    """CLI entry point."""
    parser = standard_argument_parser("Reproduce Figures 12/13 (case studies)")
    config = config_from_args(parser.parse_args())
    result = run(config)
    print(result.to_text())
    save_result(result, config)


if __name__ == "__main__":
    main()
