"""One module per table / figure of the paper's evaluation section.

=================  =========================================================
Module              Reproduces
=================  =========================================================
``table3``          Table 3 — dataset statistics
``table4``          Table 4 — per-edge maintenance time vs batch size
``table5``          Table 5 — elapsed time and latency incl. edge grouping
``fig9a``           Figure 9(a) — prevention ratio vs latency
``fig9b``           Figure 9(b) — degree distribution of the Grab graph
``fig10``           Figure 10 — static vs incremental, single-edge updates
``fig11``           Figure 11 — elapsed time / latency vs batch size
``fig12``           Figures 12/13 — the three fraud-pattern case studies
``fig15``           Figure 15 — fraud-instance enumeration over time
=================  =========================================================

Every module exposes ``run(config) -> ExperimentResult`` and can be invoked
as a script (``python -m repro.bench.experiments.table4 --quick``).
``python -m repro.bench.run_all`` runs the whole battery.
"""

from repro.bench.experiments import (  # noqa: F401  (re-exported for discoverability)
    fig9a,
    fig9b,
    fig10,
    fig11,
    fig12,
    fig15,
    table3,
    table4,
    table5,
)

ALL_EXPERIMENTS = {
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "fig9a": fig9a,
    "fig9b": fig9b,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig15": fig15,
}

__all__ = ["ALL_EXPERIMENTS"]
