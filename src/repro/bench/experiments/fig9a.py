"""Figure 9(a) — prevention ratio vs response latency.

The figure plots, for each algorithm, the prevention ratio achieved by the
edge-grouping configuration (``Inc*G``) and by fixed 1 K batches
(``Inc*-1K``) against the response latency: earlier responses prevent more
of a fraud community's transactions.  The reproduction produces one point
per (algorithm, policy) pair; the qualitative shape to reproduce is that
grouping sits in the high-prevention / low-latency corner while large fixed
batches trade prevention for throughput.
"""

from __future__ import annotations

from repro.bench.harness import (
    ExperimentConfig,
    ExperimentResult,
    build_engine,
    config_from_args,
    load_dataset,
    save_result,
    standard_argument_parser,
)
from repro.streaming.policies import BatchPolicy, EdgeGroupingPolicy
from repro.streaming.replay import replay_stream

__all__ = ["run"]

FULL_BATCHES = [100, 1000]
QUICK_BATCHES = [50, 200]


def run(config: ExperimentConfig) -> ExperimentResult:
    """Measure prevention ratio and latency for grouping vs fixed batches."""
    result = ExperimentResult(
        experiment="fig9a",
        description="prevention ratio vs latency (Figure 9a)",
        columns=[
            "dataset",
            "algorithm",
            "policy",
            "prevention ratio",
            "mean latency (stream s)",
            "flushes",
        ],
    )
    batches = QUICK_BATCHES if config.quick else FULL_BATCHES
    datasets = config.grab_datasets() or list(config.datasets)
    # One fraud-labelled Grab dataset is enough for the figure; more are
    # included when explicitly configured.
    for name in datasets[:1] if not config.quick else datasets[:1]:
        dataset = load_dataset(name, seed=config.seed)
        truth = dataset.fraud_community_map()
        limit = config.max_increments or len(dataset.increments)
        stream = dataset.increments[: min(limit, len(dataset.increments))]
        for algo, semantics in config.semantics_instances():
            policies = [(f"Inc{algo}G", EdgeGroupingPolicy(label=f"Inc{algo}G"))]
            policies += [
                (f"Inc{algo}-{size}", BatchPolicy(size, label=f"Inc{algo}-{size}"))
                for size in batches
            ]
            for label, policy in policies:
                spade = build_engine(dataset, semantics, backend=config.backend, shards=config.shards)
                report = replay_stream(
                    spade, stream, policy, fraud_communities=truth, ban_detected=True
                )
                result.add_row(
                    **{
                        "dataset": name,
                        "algorithm": algo,
                        "policy": label,
                        "prevention ratio": round(report.metrics.prevention_ratio, 4),
                        "mean latency (stream s)": round(report.metrics.mean_latency, 4),
                        "flushes": report.metrics.flushes,
                    }
                )
    result.add_note(
        "detected communities are banned (pipeline step 4) so that successive fraud "
        "bursts can surface; prevention counts transactions arriving after detection."
    )
    return result


def main() -> None:
    """CLI entry point."""
    parser = standard_argument_parser("Reproduce Figure 9(a) (prevention vs latency)")
    config = config_from_args(parser.parse_args())
    result = run(config)
    print(result.to_text())
    save_result(result, config)


if __name__ == "__main__":
    main()
