"""Figure 11 — elapsed time and latency as the batch size grows.

Figure 11 sweeps the batch size from 1 to 1000 on the Grab datasets and
plots (a–c) the average per-edge elapsed time and (d–f) the normalised
latency per algorithm.  The expected shape: per-edge time falls as batches
grow (stale reorderings are avoided), while latency rises because edges
queue while the batch fills.
"""

from __future__ import annotations

from repro.bench.harness import (
    ExperimentConfig,
    ExperimentResult,
    build_engine,
    config_from_args,
    load_dataset,
    save_result,
    standard_argument_parser,
)
from repro.graph.backend import get_default_backend
from repro.streaming.policies import BatchPolicy, PerEdgePolicy
from repro.streaming.replay import replay_stream

__all__ = ["run"]

FULL_SWEEP = [1, 10, 50, 100, 200, 500, 1000]
QUICK_SWEEP = [1, 10, 50, 100]


def run(config: ExperimentConfig) -> ExperimentResult:
    """Sweep batch sizes on the Grab datasets and record E and L.

    Honours ``--backend dict|array`` for the engines; the batching paths
    are backend-generic, so the sweep doubles as a backend comparison when
    run once per backend.
    """
    backend = config.backend or get_default_backend()
    result = ExperimentResult(
        experiment="fig11",
        description="elapsed time and latency vs batch size (Figure 11)",
        columns=[
            "dataset",
            "algorithm",
            "backend",
            "batch size",
            "E (us/edge)",
            "mean latency (stream s)",
            "queueing share",
        ],
    )
    sweep = QUICK_SWEEP if config.quick else FULL_SWEEP
    datasets = config.grab_datasets() or list(config.datasets)
    for name in datasets:
        dataset = load_dataset(name, seed=config.seed)
        truth = dataset.fraud_community_map()
        limit = config.max_increments or len(dataset.increments)
        stream = dataset.increments[: min(limit, len(dataset.increments))]
        for algo, semantics in config.semantics_instances():
            for size in sweep:
                spade = build_engine(dataset, semantics, config=config.engine_config(algo))
                policy = PerEdgePolicy() if size == 1 else BatchPolicy(size)
                report = replay_stream(spade, stream, policy, fraud_communities=truth)
                metrics = report.metrics
                result.add_row(
                    **{
                        "dataset": name,
                        "algorithm": algo,
                        "backend": backend,
                        "batch size": size,
                        "E (us/edge)": round(metrics.mean_elapsed_per_edge * 1e6, 2),
                        "mean latency (stream s)": round(metrics.mean_latency, 4),
                        "queueing share": round(metrics.queueing_share, 4),
                    }
                )
    result.add_note(
        "E decreases with the batch size (stale reorderings avoided) while latency "
        "increases and is dominated by queueing time, matching Figure 11 and the "
        "99.99% queueing observation of Section 5.2."
    )
    if config.shards > 1:
        result.add_note(
            f"sharded engine ({config.shards} shards): the per-flush detection is "
            "the exact merged coordinator pass (a global peel), which dominates E "
            "at small batch sizes — see BENCH_shard.json for the insert-throughput "
            "win the sharding buys."
        )
    return result


def main() -> None:
    """CLI entry point."""
    parser = standard_argument_parser("Reproduce Figure 11 (batch-size sweep)")
    config = config_from_args(parser.parse_args())
    result = run(config)
    print(result.to_text())
    save_result(result, config)


if __name__ == "__main__":
    main()
