"""Tab/space separated edge-list files.

The format matches the public SNAP-style datasets the paper uses: one edge
per line, ``src dst [weight]``, with ``#`` comment lines ignored.  It is
also what :meth:`repro.core.spade.Spade.load_graph` expects on disk via
:func:`read_edgelist`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Tuple, Union

from repro.errors import StorageError

__all__ = ["read_edgelist", "write_edgelist"]

PathLike = Union[str, Path]


def read_edgelist(path: PathLike, default_weight: float = 1.0) -> List[Tuple[str, str, float]]:
    """Read ``(src, dst, weight)`` tuples from an edge-list file.

    Lines starting with ``#`` (or ``%``) are comments; blank lines are
    skipped; fields are separated by any whitespace.  Malformed lines raise
    :class:`~repro.errors.StorageError` with the offending line number.
    """
    path = Path(path)
    if not path.exists():
        raise StorageError(f"edge list not found: {path}")
    edges: List[Tuple[str, str, float]] = []
    with path.open("r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#") or line.startswith("%"):
                continue
            parts = line.split()
            if len(parts) == 2:
                edges.append((parts[0], parts[1], default_weight))
            elif len(parts) >= 3:
                try:
                    weight = float(parts[2])
                except ValueError as exc:
                    raise StorageError(f"{path}:{lineno}: bad weight {parts[2]!r}") from exc
                edges.append((parts[0], parts[1], weight))
            else:
                raise StorageError(f"{path}:{lineno}: expected 'src dst [weight]', got {line!r}")
    return edges


def write_edgelist(
    path: PathLike,
    edges: Iterable[tuple],
    header: Optional[str] = None,
) -> int:
    """Write edges to an edge-list file; returns the number written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        for edge in edges:
            if len(edge) == 2:
                handle.write(f"{edge[0]}\t{edge[1]}\n")
            else:
                handle.write(f"{edge[0]}\t{edge[1]}\t{edge[2]:.10g}\n")
            count += 1
    return count
