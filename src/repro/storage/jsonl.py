"""JSON-lines serialisation of update streams and arbitrary records.

Streams are stored one transaction per line so that very large streams can
be written and replayed without loading everything in memory twice; the
record helpers are used by the benchmark harness to persist experiment
results next to the generated tables.

For long-running writers (the serving layer's write-ahead log), the batch
helpers are complemented by a streaming pair: :class:`JsonlWriter` appends
records one at a time to an open handle (optionally ``fsync``-ing each
append for durability) and reports the byte offset after every record,
while :func:`tail` reads the complete records at or after a byte offset —
tolerating a torn final line, which is exactly what a crash mid-append
leaves behind.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple, Union

from repro.errors import StorageError
from repro.streaming.stream import TimestampedEdge, UpdateStream

__all__ = [
    "write_stream",
    "read_stream",
    "write_records",
    "read_records",
    "JsonlWriter",
    "tail",
]

PathLike = Union[str, Path]


def write_stream(path: PathLike, stream: UpdateStream) -> int:
    """Persist an update stream as JSON lines; returns the edge count."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for edge in stream:
            record = {
                "src": edge.src,
                "dst": edge.dst,
                "timestamp": edge.timestamp,
                "weight": edge.weight,
            }
            if edge.fraud_label is not None:
                record["fraud_label"] = edge.fraud_label
            handle.write(json.dumps(record) + "\n")
            count += 1
    return count


def read_stream(path: PathLike) -> UpdateStream:
    """Load an update stream previously written by :func:`write_stream`."""
    path = Path(path)
    if not path.exists():
        raise StorageError(f"stream file not found: {path}")
    edges: List[TimestampedEdge] = []
    with path.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise StorageError(f"{path}:{lineno}: invalid JSON") from exc
            edges.append(
                TimestampedEdge(
                    src=record["src"],
                    dst=record["dst"],
                    timestamp=float(record["timestamp"]),
                    weight=float(record.get("weight", 1.0)),
                    fraud_label=record.get("fraud_label"),
                )
            )
    return UpdateStream(edges, sort=True)


def write_records(path: PathLike, records: Iterable[Dict]) -> int:
    """Write arbitrary dict records as JSON lines; returns the count."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, default=str) + "\n")
            count += 1
    return count


def read_records(path: PathLike) -> Iterator[Dict]:
    """Yield dict records from a JSON-lines file."""
    path = Path(path)
    if not path.exists():
        raise StorageError(f"records file not found: {path}")
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)


class JsonlWriter:
    """Append-mode streaming JSON-lines writer.

    Unlike :func:`write_records` (which rewrites the whole file from an
    iterable), a :class:`JsonlWriter` keeps one handle open in append mode
    and emits records one at a time — the shape a write-ahead log needs.

    Parameters
    ----------
    path:
        File to append to (parent directories are created; the file is
        created if missing, never truncated).
    fsync:
        When True, every :meth:`append` flushes *and* ``fsync``\\ s the
        file, so a record is durable on disk before the call returns.
        When False the record is flushed to the OS but not forced to
        stable storage (faster; survives process crashes, not power loss).
    truncate_at:
        When given, the file is truncated to this byte offset before the
        first append.  A crash mid-append leaves a torn final line that
        :func:`tail` excludes from its resume offset; a writer reopening
        the file must discard those bytes, or its next record would fuse
        with the fragment into one unparseable line.
    injector:
        Optional fault injector (duck-typed; see
        :class:`repro.serve.faults.FaultInjector`).  Its
        ``before_append(payload) -> (bytes_to_write, error_or_None)``
        hook decides each append's fate: it may substitute the bytes
        that reach the file (torn or bit-flipped records) and/or hand
        back an ``OSError`` to raise after the substituted bytes are
        written (disk-full, EIO).  ``None`` (the default) is the
        production path: payloads pass through untouched.

    The writer is a context manager; :meth:`append` returns the byte
    offset just past the appended record, which — together with
    :func:`tail` — lets readers resume from a durable position without
    re-scanning the file.

    A *failed* append (injected or real ``OSError``) does not advance
    :attr:`offset`; any bytes it left behind are truncated away at the
    start of the next append, so a torn fragment can never fuse with a
    later record.
    """

    def __init__(
        self,
        path: PathLike,
        fsync: bool = False,
        truncate_at: Optional[int] = None,
        injector: Optional[object] = None,
    ) -> None:
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._fsync = bool(fsync)
        self._injector = injector
        self._handle = self._path.open("ab")
        self._offset = self._handle.seek(0, os.SEEK_END)
        if truncate_at is not None and truncate_at < self._offset:
            self._handle.truncate(truncate_at)
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._offset = truncate_at

    @property
    def path(self) -> Path:
        """The file being appended to."""
        return self._path

    @property
    def offset(self) -> int:
        """Byte offset just past the last complete record."""
        return self._offset

    def append(self, record: Mapping) -> int:
        """Append one record; return the byte offset just past it.

        Raises ``OSError`` (possibly injected) when the record could not
        be made durable; :attr:`offset` is unchanged in that case and any
        partial bytes are discarded before the next append.
        """
        if self._handle.closed:
            raise StorageError(f"writer for {self._path} is closed")
        if self._handle.tell() != self._offset:
            # A previous append failed after writing partial bytes (torn
            # write): discard the fragment so this record starts on the
            # last durable boundary.
            self._handle.truncate(self._offset)
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.seek(0, os.SEEK_END)
        line = json.dumps(record, separators=(",", ":"), default=str) + "\n"
        payload = line.encode("utf-8")
        error: Optional[OSError] = None
        if self._injector is not None:
            payload, error = self._injector.before_append(payload)  # type: ignore[attr-defined]
        if payload:
            self._handle.write(payload)
            self._handle.flush()
            if self._fsync:
                os.fsync(self._handle.fileno())
        if error is not None:
            raise error
        self._offset = self._handle.tell()
        return self._offset

    def probe(self) -> None:
        """Check the backing directory is writable (degraded-mode re-entry).

        Writes, fsyncs, and unlinks a ``<name>.probe`` sibling file,
        routed through the same fault injector as :meth:`append` so an
        injected count-limited disk-full deterministically clears after
        the configured number of failed appends *and* probes.  Raises
        ``OSError`` while the disk is still failing.
        """
        payload = b'{"probe":true}\n'
        error: Optional[OSError] = None
        if self._injector is not None:
            payload, error = self._injector.before_append(payload)  # type: ignore[attr-defined]
        if error is not None:
            raise error
        probe_path = self._path.with_name(self._path.name + ".probe")
        with probe_path.open("wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        probe_path.unlink()

    def sync(self) -> None:
        """Force buffered records to stable storage regardless of ``fsync``."""
        if not self._handle.closed:
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Flush and close the handle (idempotent)."""
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()

    def __enter__(self) -> "JsonlWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def tail(path: PathLike, offset: int = 0) -> Tuple[List[Dict], int]:
    """Read the complete records at or after byte ``offset``.

    Returns ``(records, next_offset)`` where ``next_offset`` is the byte
    offset just past the last *complete* record — the resume point for the
    next call.  A torn final line (no trailing newline, or a trailing
    fragment that is not valid JSON — what a crash mid-append leaves) is
    silently ignored and excluded from ``next_offset``; invalid JSON
    *before* the final line raises :class:`~repro.errors.StorageError`,
    because that is corruption rather than a torn write.

    A missing file reads as empty (``([], offset if offset == 0 else
    error)``) so that first-boot and recovery share one code path.
    """
    path = Path(path)
    if not path.exists():
        if offset:
            raise StorageError(f"records file not found: {path}")
        return [], 0
    with path.open("rb") as handle:
        handle.seek(offset)
        data = handle.read()
    records: List[Dict] = []
    consumed = 0
    lines = data.split(b"\n")
    # The final element is either b"" (data ended on a newline) or a
    # partial line with no terminator; both are excluded from the scan.
    for index, raw in enumerate(lines[:-1]):
        stripped = raw.strip()
        if stripped:
            try:
                records.append(json.loads(stripped))
            except json.JSONDecodeError as exc:
                if index == len(lines) - 2 and not lines[-1]:
                    # Torn *terminated* final line: a crash between the
                    # payload write and the flush can persist a truncated
                    # line that still won its newline from a later append.
                    break
                raise StorageError(
                    f"{path}: invalid JSON record at byte {offset + consumed}"
                ) from exc
        consumed += len(raw) + 1
    return records, offset + consumed
