"""JSON-lines serialisation of update streams and arbitrary records.

Streams are stored one transaction per line so that very large streams can
be written and replayed without loading everything in memory twice; the
record helpers are used by the benchmark harness to persist experiment
results next to the generated tables.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Union

from repro.errors import StorageError
from repro.streaming.stream import TimestampedEdge, UpdateStream

__all__ = ["write_stream", "read_stream", "write_records", "read_records"]

PathLike = Union[str, Path]


def write_stream(path: PathLike, stream: UpdateStream) -> int:
    """Persist an update stream as JSON lines; returns the edge count."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for edge in stream:
            record = {
                "src": edge.src,
                "dst": edge.dst,
                "timestamp": edge.timestamp,
                "weight": edge.weight,
            }
            if edge.fraud_label is not None:
                record["fraud_label"] = edge.fraud_label
            handle.write(json.dumps(record) + "\n")
            count += 1
    return count


def read_stream(path: PathLike) -> UpdateStream:
    """Load an update stream previously written by :func:`write_stream`."""
    path = Path(path)
    if not path.exists():
        raise StorageError(f"stream file not found: {path}")
    edges: List[TimestampedEdge] = []
    with path.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise StorageError(f"{path}:{lineno}: invalid JSON") from exc
            edges.append(
                TimestampedEdge(
                    src=record["src"],
                    dst=record["dst"],
                    timestamp=float(record["timestamp"]),
                    weight=float(record.get("weight", 1.0)),
                    fraud_label=record.get("fraud_label"),
                )
            )
    return UpdateStream(edges, sort=True)


def write_records(path: PathLike, records: Iterable[Dict]) -> int:
    """Write arbitrary dict records as JSON lines; returns the count."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, default=str) + "\n")
            count += 1
    return count


def read_records(path: PathLike) -> Iterator[Dict]:
    """Yield dict records from a JSON-lines file."""
    path = Path(path)
    if not path.exists():
        raise StorageError(f"records file not found: {path}")
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)
