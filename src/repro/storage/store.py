"""A directory-backed snapshot store for graphs, streams and results.

The production system keeps periodic graph snapshots and detection results
on a distributed file system; this class provides the same capability on a
local directory with a flat namespace:

* graphs are stored as weighted edge lists plus a vertex-prior sidecar;
* streams as JSON lines;
* arbitrary result payloads as JSON documents.

Every artefact is addressed by a snapshot name, and the store keeps a small
manifest so callers can list what exists without knowing the layout.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.errors import StorageError
from repro.graph.graph import DynamicGraph
from repro.storage.edgelist import read_edgelist, write_edgelist
from repro.storage.jsonl import read_stream, write_stream
from repro.streaming.stream import UpdateStream

__all__ = ["SnapshotStore"]

PathLike = Union[str, Path]


class SnapshotStore:
    """Store named snapshots of graphs, streams and JSON results on disk."""

    MANIFEST = "manifest.json"

    def __init__(self, root: PathLike) -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self._manifest_path = self._root / self.MANIFEST
        self._manifest: Dict[str, Dict[str, str]] = {}
        if self._manifest_path.exists():
            self._manifest = json.loads(self._manifest_path.read_text(encoding="utf-8"))

    # ------------------------------------------------------------------ #
    # Manifest helpers
    # ------------------------------------------------------------------ #
    @property
    def root(self) -> Path:
        """The store's root directory."""
        return self._root

    def _record(self, name: str, kind: str, filename: str) -> None:
        self._manifest[name] = {"kind": kind, "file": filename}
        self._manifest_path.write_text(json.dumps(self._manifest, indent=2), encoding="utf-8")

    def list_snapshots(self, kind: Optional[str] = None) -> List[str]:
        """Return the snapshot names, optionally filtered by kind."""
        return sorted(
            name for name, meta in self._manifest.items() if kind is None or meta["kind"] == kind
        )

    def contains(self, name: str) -> bool:
        """Return whether a snapshot with this name exists."""
        return name in self._manifest

    # ------------------------------------------------------------------ #
    # Graph snapshots
    # ------------------------------------------------------------------ #
    def save_graph(self, name: str, graph: DynamicGraph) -> Path:
        """Persist a weighted graph snapshot."""
        edge_file = f"{name}.edges.tsv"
        prior_file = f"{name}.priors.json"
        write_edgelist(self._root / edge_file, graph.edges())
        priors = {str(v): graph.vertex_weight(v) for v in graph.vertices()}
        (self._root / prior_file).write_text(json.dumps(priors), encoding="utf-8")
        self._record(name, "graph", edge_file)
        return self._root / edge_file

    def load_graph(self, name: str) -> DynamicGraph:
        """Load a previously saved graph snapshot."""
        meta = self._require(name, "graph")
        edges = read_edgelist(self._root / meta["file"])
        graph = DynamicGraph()
        prior_path = self._root / meta["file"].replace(".edges.tsv", ".priors.json")
        priors = {}
        if prior_path.exists():
            priors = json.loads(prior_path.read_text(encoding="utf-8"))
        for vertex, weight in priors.items():
            graph.add_vertex(vertex, float(weight))
        for src, dst, weight in edges:
            graph.add_edge(src, dst, weight)
        return graph

    # ------------------------------------------------------------------ #
    # Stream snapshots
    # ------------------------------------------------------------------ #
    def save_stream(self, name: str, stream: UpdateStream) -> Path:
        """Persist an update stream snapshot."""
        filename = f"{name}.stream.jsonl"
        write_stream(self._root / filename, stream)
        self._record(name, "stream", filename)
        return self._root / filename

    def load_stream(self, name: str) -> UpdateStream:
        """Load a previously saved stream snapshot."""
        meta = self._require(name, "stream")
        return read_stream(self._root / meta["file"])

    # ------------------------------------------------------------------ #
    # Result documents
    # ------------------------------------------------------------------ #
    def save_result(self, name: str, payload: Dict) -> Path:
        """Persist an arbitrary JSON-serialisable result document."""
        filename = f"{name}.result.json"
        (self._root / filename).write_text(
            json.dumps(payload, indent=2, default=str), encoding="utf-8"
        )
        self._record(name, "result", filename)
        return self._root / filename

    def load_result(self, name: str) -> Dict:
        """Load a previously saved result document."""
        meta = self._require(name, "result")
        return json.loads((self._root / meta["file"]).read_text(encoding="utf-8"))

    def _require(self, name: str, kind: str) -> Dict[str, str]:
        meta = self._manifest.get(name)
        if meta is None or meta["kind"] != kind:
            raise StorageError(f"no {kind} snapshot named {name!r} in {self._root}")
        return meta
