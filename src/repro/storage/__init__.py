"""Graph and dataset storage (the "storage system (DFS)" box of Figure 4).

Spade's architecture loads transaction graphs from a distributed file
system and persists detection results for the moderators.  The reproduction
keeps the same separation of concerns with plain files:

* :mod:`repro.storage.edgelist` — tab-separated edge lists (the exchange
  format of the public datasets and of ``LoadGraph``);
* :mod:`repro.storage.jsonl` — JSON-lines serialisation of timestamped
  update streams and detection results;
* :mod:`repro.storage.store` — a directory-backed snapshot store with named
  snapshots of graphs, streams and results.
"""

from repro.storage.edgelist import read_edgelist, write_edgelist
from repro.storage.jsonl import read_stream, write_stream, read_records, write_records
from repro.storage.store import SnapshotStore

__all__ = [
    "read_edgelist",
    "write_edgelist",
    "read_stream",
    "write_stream",
    "read_records",
    "write_records",
    "SnapshotStore",
]
