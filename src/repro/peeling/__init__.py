"""Static peeling algorithms and density semantics.

This subpackage implements everything the paper assumes as pre-existing
machinery:

* the generic greedy peeling paradigm of Algorithm 1
  (:func:`repro.peeling.static.peel`),
* the three density semantics of Table 1 — DG (Charikar's unweighted densest
  subgraph), DW (edge-weighted dense subgraph) and FD (Fraudar) — expressed
  through the same ``vsusp`` / ``esusp`` plug-in interface that the Spade
  API exposes (:mod:`repro.peeling.semantics`),
* an exact densest-subgraph reference solver based on Goldberg's max-flow
  construction plus a brute-force solver for tiny graphs
  (:mod:`repro.peeling.exact`), used to validate the 1/2-approximation
  guarantee of Lemma 2.1,
* validity and guarantee checks shared by the test-suite and the benchmark
  harness (:mod:`repro.peeling.guarantees`).
"""

from repro.peeling.result import PeelingResult
from repro.peeling.semantics import (
    PeelingSemantics,
    custom_semantics,
    dg_semantics,
    dw_semantics,
    fraudar_semantics,
    subset_density,
    subset_suspiciousness,
)
from repro.peeling.static import peel, peel_csr, peel_subset, peel_subset_csr
from repro.peeling.exact import brute_force_densest, goldberg_densest
from repro.peeling.guarantees import (
    check_approximation_guarantee,
    is_valid_peeling_sequence,
    verify_axioms,
)

__all__ = [
    "PeelingResult",
    "PeelingSemantics",
    "custom_semantics",
    "dg_semantics",
    "dw_semantics",
    "fraudar_semantics",
    "subset_density",
    "subset_suspiciousness",
    "peel",
    "peel_csr",
    "peel_subset",
    "peel_subset_csr",
    "brute_force_densest",
    "goldberg_densest",
    "check_approximation_guarantee",
    "is_valid_peeling_sequence",
    "verify_axioms",
]
