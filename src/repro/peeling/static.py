"""Static peeling: Algorithm 1 of the paper.

The greedy peeling paradigm removes, at every step, the vertex whose removal
decreases ``f`` the least (equivalently, maximises the density of what
remains), using a min-heap keyed by the peeling weight

.. math::

    w_{u_i}(S) = a_i + \\sum_{(u_i,u_j)\\in E, u_j \\in S} c_{ij}
               + \\sum_{(u_j,u_i)\\in E, u_j \\in S} c_{ji}

(Equation 2).  The complexity is ``O(|E| log |V|)``.

This module is the *baseline* re-used throughout the evaluation: DG, DW and
FD are all this routine applied to differently weighted graphs (see
:mod:`repro.peeling.semantics`).  It is also the reference implementation
the property-based tests compare the incremental engine against.

Tie-breaking
------------
When several vertices share the minimum peeling weight the algorithm peels
the one with the smallest *insertion index* (the order vertices entered the
graph).  The incremental engine uses the same rule so that, in the absence
of floating-point coincidences, both produce identical sequences.
"""

from __future__ import annotations

import heapq
from typing import AbstractSet, Dict, List, Optional, Tuple

from repro.graph.graph import DynamicGraph, Vertex
from repro.peeling.result import PeelingResult

__all__ = ["peel", "peel_subset", "peeling_weights"]


def peeling_weights(graph: DynamicGraph, subset: Optional[AbstractSet[Vertex]] = None) -> Dict[Vertex, float]:
    """Return ``w_u(S)`` for every ``u`` in ``S`` (default: the whole graph)."""
    if subset is None:
        weights = {}
        for vertex in graph.vertices():
            weights[vertex] = graph.vertex_weight(vertex) + graph.incident_weight(vertex)
        return weights
    members = set(subset)
    weights = {}
    for vertex in members:
        total = graph.vertex_weight(vertex)
        for nbr, weight in graph.incident_items(vertex):
            if nbr in members:
                total += weight
        weights[vertex] = total
    return weights


def peel(graph: DynamicGraph, semantics_name: str = "custom") -> PeelingResult:
    """Run Algorithm 1 on a weighted graph and return the peeling result.

    The graph is expected to already carry materialised suspiciousness
    weights (see :meth:`repro.peeling.semantics.PeelingSemantics.materialize`).

    Parameters
    ----------
    graph:
        The weighted graph ``G``.
    semantics_name:
        Label recorded in the result (used by reports and benchmarks).
    """
    order, weights, total = _peel_vertices(graph, None)
    return PeelingResult.from_sequence(order, weights, total, semantics_name=semantics_name)


def peel_subset(
    graph: DynamicGraph,
    subset: AbstractSet[Vertex],
    semantics_name: str = "custom",
) -> PeelingResult:
    """Run Algorithm 1 restricted to the induced subgraph ``G[S]``.

    Used by dense-subgraph enumeration (Appendix C.2), which repeatedly
    peels the graph that remains after removing an already-reported
    community.
    """
    order, weights, total = _peel_vertices(graph, set(subset))
    return PeelingResult.from_sequence(order, weights, total, semantics_name=semantics_name)


def _peel_vertices(
    graph: DynamicGraph,
    subset: Optional[AbstractSet[Vertex]],
) -> Tuple[List[Vertex], List[float], float]:
    """Core greedy loop shared by :func:`peel` and :func:`peel_subset`."""
    if subset is None:
        members = list(graph.vertices())
    else:
        members = [v for v in subset if graph.has_vertex(v)]
    member_set = set(members)

    # Stable tie-breaking index: order of first appearance in the graph.
    tie_break: Dict[Vertex, int] = {}
    for index, vertex in enumerate(graph.vertices()):
        tie_break[vertex] = index

    current: Dict[Vertex, float] = {}
    total = 0.0
    for vertex in members:
        weight = graph.vertex_weight(vertex)
        total += weight
        incident = 0.0
        for nbr, edge_weight in graph.incident_items(vertex):
            if nbr in member_set:
                incident += edge_weight
        current[vertex] = weight + incident
    # Every intra-subset edge was counted twice (once per endpoint).
    edge_total = (sum(current.values()) - total) / 2.0
    total += edge_total

    heap: List[Tuple[float, int, Vertex]] = [
        (current[vertex], tie_break[vertex], vertex) for vertex in members
    ]
    heapq.heapify(heap)

    removed: set = set()
    order: List[Vertex] = []
    weights: List[float] = []

    while heap:
        weight, _tb, vertex = heapq.heappop(heap)
        if vertex in removed:
            continue
        if weight != current[vertex]:
            # Stale entry: the vertex lost incident weight since this entry
            # was pushed.  The up-to-date entry is still in the heap.
            continue
        removed.add(vertex)
        order.append(vertex)
        weights.append(weight)
        for nbr, edge_weight in graph.incident_items(vertex):
            if nbr in member_set and nbr not in removed:
                current[nbr] -= edge_weight
                heapq.heappush(heap, (current[nbr], tie_break[nbr], nbr))

    return order, weights, total
