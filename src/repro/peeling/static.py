"""Static peeling: Algorithm 1 of the paper, run over dense vertex ids.

The greedy peeling paradigm removes, at every step, the vertex whose removal
decreases ``f`` the least (equivalently, maximises the density of what
remains), using a min-heap keyed by the peeling weight

.. math::

    w_{u_i}(S) = a_i + \\sum_{(u_i,u_j)\\in E, u_j \\in S} c_{ij}
               + \\sum_{(u_j,u_i)\\in E, u_j \\in S} c_{ji}

(Equation 2).  The complexity is ``O(|E| log |V|)``.

This module is the *baseline* re-used throughout the evaluation: DG, DW and
FD are all this routine applied to differently weighted graphs (see
:mod:`repro.peeling.semantics`).  It is also the reference implementation
the property-based tests compare the incremental engine against.

Implementation notes
--------------------
The inner loop runs entirely over the dense ``int32`` ids assigned by the
graph backend's :class:`~repro.graph.interning.VertexInterner`: heap
entries are ``(weight, id)`` pairs, membership/removal flags are numpy
boolean arrays indexed by id, and neighbourhoods arrive as id/weight
arrays from :meth:`incident_arrays_id` — no Python objects are hashed or
compared while peeling.  Labels are only translated back at the boundary
when the :class:`~repro.peeling.result.PeelingResult` is assembled.

Tie-breaking
------------
When several vertices share the minimum peeling weight the algorithm peels
the one with the smallest *insertion index* — which is exactly the dense
id, since the interner assigns ids in graph insertion order.  The
incremental engine uses the same rule, so both produce identical
sequences (bit-identical for dyadic weights).
"""

from __future__ import annotations

import heapq
from typing import AbstractSet, Dict, List, Optional, Tuple

import numpy as np

from repro.graph.backend import SMALL_DEGREE
from repro.graph.graph import DynamicGraph, Vertex
from repro.peeling.result import PeelingResult

__all__ = ["peel", "peel_subset", "peel_subset_ids", "peeling_weights"]


def peeling_weights(graph, subset: Optional[AbstractSet[Vertex]] = None) -> Dict[Vertex, float]:
    """Return ``w_u(S)`` for every ``u`` in ``S`` (default: the whole graph)."""
    if subset is None:
        weights = {}
        for vertex in graph.vertices():
            weights[vertex] = graph.vertex_weight(vertex) + graph.incident_weight(vertex)
        return weights
    members = set(subset)
    weights = {}
    for vertex in members:
        total = graph.vertex_weight(vertex)
        for nbr, weight in graph.incident_items(vertex):
            if nbr in members:
                total += weight
        weights[vertex] = total
    return weights


def peel(graph, semantics_name: str = "custom") -> PeelingResult:
    """Run Algorithm 1 on a weighted graph and return the peeling result.

    The graph is expected to already carry materialised suspiciousness
    weights (see :meth:`repro.peeling.semantics.PeelingSemantics.materialize`).

    Parameters
    ----------
    graph:
        The weighted graph ``G`` (any :class:`~repro.graph.backend.GraphBackend`).
    semantics_name:
        Label recorded in the result (used by reports and benchmarks).
    """
    order, weights, total = _peel_ids(graph, None)
    return PeelingResult.from_sequence(order, weights, total, semantics_name=semantics_name)


def peel_subset(
    graph,
    subset: AbstractSet[Vertex],
    semantics_name: str = "custom",
) -> PeelingResult:
    """Run Algorithm 1 restricted to the induced subgraph ``G[S]``.

    Used by dense-subgraph enumeration (Appendix C.2), which repeatedly
    peels the graph that remains after removing an already-reported
    community, and by the deletion path's suffix re-peel.
    """
    interner = graph.interner
    member_ids = np.array(
        sorted(interner.id_of(v) for v in subset if graph.has_vertex(v)),
        dtype=np.int32,
    )
    order, weights, total = _peel_ids(graph, member_ids)
    return PeelingResult.from_sequence(order, weights, total, semantics_name=semantics_name)


def peel_subset_ids(graph, member_ids) -> Tuple[np.ndarray, List[float], float]:
    """Id-based :func:`peel_subset` for the maintenance hot paths.

    ``member_ids`` are dense ids of graph vertices (any order; sorted
    internally so the run is deterministic).  Returns
    ``(order_ids, weights, total)`` without any label translation.
    """
    member_ids = np.sort(np.asarray(member_ids, dtype=np.int32))
    order_ids, weights, total = _peel_ids(graph, member_ids, as_ids=True)
    return order_ids, weights, total


def _peel_ids(
    graph,
    member_ids: Optional[np.ndarray],
    as_ids: bool = False,
) -> Tuple[List[Vertex], List[float], float]:
    """Core greedy loop shared by :func:`peel` and :func:`peel_subset`.

    With ``as_ids`` the order comes back as an ``int32`` id array instead
    of labels.
    """
    if member_ids is None:
        member_ids = graph.vertex_ids()
    interner = graph.interner
    capacity = max(len(interner), 1)

    member = np.zeros(capacity, dtype=bool)
    member[member_ids] = True
    current = np.zeros(capacity, dtype=np.float64)

    total = 0.0
    member_list = member_ids.tolist()
    for vid in member_list:
        vertex_weight = graph.vertex_weight_id(vid)
        total += vertex_weight
        ids, weights = graph.incident_arrays_id(vid)
        degree = len(ids)
        # The scalar/vector split mirrors the reorder engine's weight
        # recovery exactly (same threshold, same accumulation shape), so
        # static and incremental weights stay bit-consistent per vertex.
        if degree == 0:
            incident = 0.0
        elif degree <= SMALL_DEGREE:
            incident = 0.0
            for nbr, weight in zip(ids.tolist(), weights.tolist()):
                if member[nbr]:
                    incident += weight
        else:
            incident = float(weights[member[ids]].sum())
        current[vid] = vertex_weight + incident
    # Every intra-subset edge was counted twice (once per endpoint).
    edge_total = (float(current[member_ids].sum()) - total) / 2.0 if member_list else 0.0
    total += edge_total

    heap: List[Tuple[float, int]] = [(current[vid], vid) for vid in member_list]
    heapq.heapify(heap)

    removed = np.zeros(capacity, dtype=bool)
    order_ids: List[int] = []
    out_weights: List[float] = []

    while heap:
        weight, vid = heapq.heappop(heap)
        if removed[vid]:
            continue
        if weight != current[vid]:
            # Stale entry: the vertex lost incident weight since this entry
            # was pushed.  The up-to-date entry is still in the heap.
            continue
        removed[vid] = True
        order_ids.append(vid)
        out_weights.append(float(weight))
        ids, edge_weights = graph.incident_arrays_id(vid)
        if len(ids):
            live = member[ids] & ~removed[ids]
            if live.any():
                for nbr, edge_weight in zip(ids[live].tolist(), edge_weights[live].tolist()):
                    current[nbr] -= edge_weight
                    heapq.heappush(heap, (current[nbr], nbr))

    if as_ids:
        return np.asarray(order_ids, dtype=np.int32), out_weights, total
    return interner.labels_for(order_ids), out_weights, total
