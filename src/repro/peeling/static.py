"""Static peeling: Algorithm 1 of the paper, run over dense vertex ids.

The greedy peeling paradigm removes, at every step, the vertex whose removal
decreases ``f`` the least (equivalently, maximises the density of what
remains), using a min-heap keyed by the peeling weight

.. math::

    w_{u_i}(S) = a_i + \\sum_{(u_i,u_j)\\in E, u_j \\in S} c_{ij}
               + \\sum_{(u_j,u_i)\\in E, u_j \\in S} c_{ji}

(Equation 2).  The complexity is ``O(|E| log |V|)``.

This module is the *baseline* re-used throughout the evaluation: DG, DW and
FD are all this routine applied to differently weighted graphs (see
:mod:`repro.peeling.semantics`).  It is also the reference implementation
the property-based tests compare the incremental engine against.

Implementation notes
--------------------
The inner loop runs entirely over the dense ``int32`` ids assigned by the
graph backend's :class:`~repro.graph.interning.VertexInterner`: heap
entries are ``(weight, id)`` pairs, membership/removal flags are numpy
boolean arrays indexed by id, and neighbourhoods arrive as id/weight
arrays from :meth:`incident_arrays_id` — no Python objects are hashed or
compared while peeling.  Labels are only translated back at the boundary
when the :class:`~repro.peeling.result.PeelingResult` is assembled.

Tie-breaking
------------
When several vertices share the minimum peeling weight the algorithm peels
the one with the smallest *insertion index* — which is exactly the dense
id, since the interner assigns ids in graph insertion order.  The
incremental engine uses the same rule, so both produce identical
sequences (bit-identical for dyadic weights).
"""

from __future__ import annotations

import heapq
import time
from typing import AbstractSet, Dict, List, Optional, Tuple

import numpy as np

from repro import native as _native
from repro.obs import profile as _obs_profile
from repro.graph.backend import SMALL_DEGREE
from repro.graph.csr import CsrSnapshot, freeze_graph
from repro.graph.graph import DynamicGraph, Vertex
from repro.peeling.result import PeelingResult

__all__ = [
    "peel",
    "peel_csr",
    "peel_subset",
    "peel_subset_csr",
    "peel_subset_ids",
    "peel_csr_ids",
    "peeling_weights",
]


def peeling_weights(graph, subset: Optional[AbstractSet[Vertex]] = None) -> Dict[Vertex, float]:
    """Return ``w_u(S)`` for every ``u`` in ``S`` (default: the whole graph)."""
    if subset is None:
        if hasattr(graph, "vertex_weight_ids"):
            # Whole-graph fast path: one vectorised gather over the dense
            # prior/incident-weight arrays instead of two method calls per
            # vertex.  Bit-identical to the scalar path (same f64 adds).
            ids = graph.vertex_ids()
            totals = graph.vertex_weight_ids(ids) + graph.incident_weight_ids(ids)
            return dict(zip(graph.interner.labels_for(ids), totals.tolist()))
        weights = {}
        for vertex in graph.vertices():
            weights[vertex] = graph.vertex_weight(vertex) + graph.incident_weight(vertex)
        return weights
    members = set(subset)
    weights = {}
    for vertex in members:
        total = graph.vertex_weight(vertex)
        for nbr, weight in graph.incident_items(vertex):
            if nbr in members:
                total += weight
        weights[vertex] = total
    return weights


def peel(graph, semantics_name: str = "custom") -> PeelingResult:
    """Run Algorithm 1 on a weighted graph and return the peeling result.

    The graph is expected to already carry materialised suspiciousness
    weights (see :meth:`repro.peeling.semantics.PeelingSemantics.materialize`).

    Parameters
    ----------
    graph:
        The weighted graph ``G`` (any :class:`~repro.graph.backend.GraphBackend`).
    semantics_name:
        Label recorded in the result (used by reports and benchmarks).
    """
    order, weights, total = _peel_ids(graph, None)
    return PeelingResult.from_sequence(order, weights, total, semantics_name=semantics_name)


def peel_subset(
    graph,
    subset: AbstractSet[Vertex],
    semantics_name: str = "custom",
) -> PeelingResult:
    """Run Algorithm 1 restricted to the induced subgraph ``G[S]``.

    Used by dense-subgraph enumeration (Appendix C.2), which repeatedly
    peels the graph that remains after removing an already-reported
    community, and by the deletion path's suffix re-peel.
    """
    interner = graph.interner
    member_ids = np.array(
        sorted(interner.id_of(v) for v in subset if graph.has_vertex(v)),
        dtype=np.int32,
    )
    order, weights, total = _peel_ids(graph, member_ids)
    return PeelingResult.from_sequence(order, weights, total, semantics_name=semantics_name)


def peel_subset_ids(graph, member_ids) -> Tuple[np.ndarray, List[float], float]:
    """Id-based :func:`peel_subset` for the maintenance hot paths.

    ``member_ids`` are dense ids of graph vertices (any order; sorted
    internally so the run is deterministic).  Returns
    ``(order_ids, weights, total)`` without any label translation.
    """
    member_ids = np.sort(np.asarray(member_ids, dtype=np.int32))
    order_ids, weights, total = _peel_ids(graph, member_ids, as_ids=True)
    return order_ids, weights, total


def _peel_ids(
    graph,
    member_ids: Optional[np.ndarray],
    as_ids: bool = False,
) -> Tuple[List[Vertex], List[float], float]:
    """Core greedy loop shared by :func:`peel` and :func:`peel_subset`.

    With ``as_ids`` the order comes back as an ``int32`` id array instead
    of labels.
    """
    _began = time.perf_counter()
    if member_ids is None:
        member_ids = graph.vertex_ids()
    interner = graph.interner
    capacity = max(len(interner), 1)

    member = np.zeros(capacity, dtype=bool)
    member[member_ids] = True
    current = np.zeros(capacity, dtype=np.float64)

    total = 0.0
    member_list = member_ids.tolist()
    for vid in member_list:
        vertex_weight = graph.vertex_weight_id(vid)
        total += vertex_weight
        ids, weights = graph.incident_arrays_id(vid)
        degree = len(ids)
        # The scalar/vector split mirrors the reorder engine's weight
        # recovery exactly (same threshold, same accumulation shape), so
        # static and incremental weights stay bit-consistent per vertex.
        if degree == 0:
            incident = 0.0
        elif degree <= SMALL_DEGREE:
            incident = 0.0
            for nbr, weight in zip(ids.tolist(), weights.tolist()):
                if member[nbr]:
                    incident += weight
        else:
            incident = float(weights[member[ids]].sum())
        current[vid] = vertex_weight + incident
    # Every intra-subset edge was counted twice (once per endpoint).
    edge_total = (float(current[member_ids].sum()) - total) / 2.0 if member_list else 0.0
    total += edge_total

    heap: List[Tuple[float, int]] = [(current[vid], vid) for vid in member_list]
    heapq.heapify(heap)

    removed = np.zeros(capacity, dtype=bool)
    order_ids: List[int] = []
    out_weights: List[float] = []

    while heap:
        weight, vid = heapq.heappop(heap)
        if removed[vid]:
            continue
        if weight != current[vid]:
            # Stale entry: the vertex lost incident weight since this entry
            # was pushed.  The up-to-date entry is still in the heap.
            continue
        removed[vid] = True
        order_ids.append(vid)
        out_weights.append(float(weight))
        ids, edge_weights = graph.incident_arrays_id(vid)
        if len(ids):
            live = member[ids] & ~removed[ids]
            if live.any():
                for nbr, edge_weight in zip(ids[live].tolist(), edge_weights[live].tolist()):
                    current[nbr] -= edge_weight
                    heapq.heappush(heap, (current[nbr], nbr))

    _obs_profile.record("peel_heap", "python", time.perf_counter() - _began)
    if as_ids:
        return np.asarray(order_ids, dtype=np.int32), out_weights, total
    return interner.labels_for(order_ids), out_weights, total


# ---------------------------------------------------------------------- #
# CSR fast path
# ---------------------------------------------------------------------- #
def _as_snapshot(source) -> CsrSnapshot:
    """Coerce a graph or snapshot into a :class:`CsrSnapshot`."""
    if isinstance(source, CsrSnapshot):
        return source
    return freeze_graph(source)


def peel_csr(
    source,
    semantics_name: str = "custom",
    kernel: Optional[str] = None,
) -> PeelingResult:
    """Run Algorithm 1 over an immutable CSR snapshot (the fast path).

    ``source`` is either a :class:`~repro.graph.csr.CsrSnapshot` or a graph
    (frozen on the fly — freezing is O(|V| + |E|) and is included in what a
    fair static-baseline measurement should time).  Produces the same
    peeling sequence, weights and densities as :func:`peel` on the source
    graph — bit-identical, not merely equivalent: neighbor runs preserve
    enumeration order and every floating-point accumulation follows the
    same association shape as the heap-based loop.

    ``kernel`` selects the greedy-loop implementation (``"python"`` /
    ``"native"`` / ``"auto"``; ``None`` = the process default) — see
    :mod:`repro.native`.  The native kernel is bit-identical too.
    """
    snapshot = _as_snapshot(source)
    order_ids, weights, total = _peel_csr_ids(snapshot, None, kernel=kernel)
    return PeelingResult.from_sequence(
        snapshot.labels_for(order_ids), weights, total, semantics_name=semantics_name
    )


def peel_subset_csr(
    source,
    subset: AbstractSet[Vertex],
    semantics_name: str = "custom",
    kernel: Optional[str] = None,
) -> PeelingResult:
    """CSR twin of :func:`peel_subset`: peel the induced subgraph ``G[S]``."""
    snapshot = _as_snapshot(source)
    member = snapshot.member
    ids = np.array(
        sorted(
            vid
            for vid in (snapshot.id_of(v) for v in subset)
            if vid >= 0 and member[vid]
        ),
        dtype=np.int32,
    )
    order_ids, weights, total = _peel_csr_ids(snapshot, ids, kernel=kernel)
    return PeelingResult.from_sequence(
        snapshot.labels_for(order_ids), weights, total, semantics_name=semantics_name
    )


def peel_csr_ids(
    source,
    member_ids=None,
    kernel: Optional[str] = None,
) -> Tuple[np.ndarray, List[float], float]:
    """Id-based CSR peel (the maintenance twin of :func:`peel_subset_ids`).

    ``member_ids`` (dense ids, any order — sorted internally) defaults to
    every member vertex of the snapshot.
    """
    snapshot = _as_snapshot(source)
    if member_ids is not None:
        member_ids = np.sort(np.asarray(member_ids, dtype=np.int32))
    return _peel_csr_ids(snapshot, member_ids, kernel=kernel)


def _peel_csr_ids(
    snapshot: CsrSnapshot,
    member_ids: Optional[np.ndarray],
    kernel: Optional[str] = None,
) -> Tuple[np.ndarray, List[float], float]:
    """Greedy peeling over the combined-incidence CSR of a snapshot.

    Two phases, both bit-identical to :func:`_peel_ids`:

    1. **Vectorised initialisation** — the member-restricted incident
       weight of every vertex in a handful of whole-graph numpy passes
       (see the lane-transpose trick below), reproducing the heap path's
       exact association order per vertex.
    2. **Flat greedy loop** — the lazy-deletion min-heap loop over the
       flattened CSR adjacency: one list read, one float subtraction and
       one heap push per live incident edge, with periodic heap
       compaction that keeps the queue at O(live vertices) instead of
       O(|E|) stale entries.
    """
    _init_began = time.perf_counter()
    inc_off, inc_mid, inc_nbr, inc_w = snapshot.incidence()
    num_ids = snapshot.num_ids
    if member_ids is None:
        member_ids = snapshot.order
    k = len(member_ids)
    if k == 0:
        return np.empty(0, dtype=np.int32), [], 0.0

    member = np.zeros(num_ids, dtype=bool)
    member[member_ids] = True

    # --- initial peeling weights, vectorised ------------------------- #
    # The heap path accumulates each vertex's member-incident weights
    # sequentially (degree <= SMALL_DEGREE) or pairwise over the compacted
    # member weights (heavier).  Both shapes are reproduced exactly here —
    # naive alternatives such as ``np.add.reduceat`` use a different
    # association order and drift by ulps, which breaks tie-breaks.
    counts = inc_off[1:] - inc_off[:-1]
    incident = np.zeros(num_ids, dtype=np.float64)
    if len(inc_nbr):
        masked = np.where(member[inc_nbr], inc_w, 0.0)
        small = np.nonzero(member & (counts > 0) & (counts <= SMALL_DEGREE))[0]
        if len(small):
            # Lane transpose: row j holds every small segment's j-th
            # element (0.0-padded), so summing the rows top-down performs,
            # per vertex, the exact left-to-right scalar accumulation —
            # in at most SMALL_DEGREE vectorised adds for all of them.
            seg_counts = counts[small]
            prefix = np.concatenate(([0], np.cumsum(seg_counts)[:-1]))
            flat = np.arange(int(seg_counts.sum()), dtype=np.int64)
            positions = flat + np.repeat(inc_off[small] - prefix, seg_counts)
            within = flat - np.repeat(prefix, seg_counts)
            seg_index = np.repeat(np.arange(len(small), dtype=np.int64), seg_counts)
            lanes = np.zeros((int(seg_counts.max()), len(small)), dtype=np.float64)
            lanes[within, seg_index] = masked[positions]
            acc = lanes[0].copy()
            for row in lanes[1:]:
                acc += row
            incident[small] = acc
        for vid in np.nonzero(member & (counts > SMALL_DEGREE))[0].tolist():
            s, e = inc_off[vid], inc_off[vid + 1]
            incident[vid] = inc_w[s:e][member[inc_nbr[s:e]]].sum()

    current = np.zeros(num_ids, dtype=np.float64)
    current[member_ids] = snapshot.vertex_weights[member_ids] + incident[member_ids]

    vertex_part = snapshot.vertex_weights[member_ids]
    if np.count_nonzero(vertex_part):
        # Sequential accumulation, matching the heap path's running sum.
        total = 0.0
        for value in vertex_part.tolist():
            total += value
    else:
        total = 0.0
    edge_total = (float(current[member_ids].sum()) - total) / 2.0
    total += edge_total
    _obs_profile.record("peel_csr_init", "python", time.perf_counter() - _init_began)

    # --- native dispatch --------------------------------------------- #
    # The compiled kernel runs the identical lazy-deletion greedy loop
    # over the same incidence arrays (see _kernels.c for the bit-identity
    # argument); when selected it replaces the python loop below and the
    # flat_incidence() materialisation entirely.
    if _native.resolve_kernel(kernel) == "native":
        nk = _native.get_kernels()
        if nk is not None and nk.peel_ok:
            _loop_began = time.perf_counter()
            order_ids_arr, out_weights = nk.peel(
                inc_off,
                inc_nbr,
                inc_w,
                num_ids,
                np.ascontiguousarray(member_ids, dtype=np.int32),
                np.ascontiguousarray(current[member_ids]),
            )
            _obs_profile.record("peel_greedy", "native", time.perf_counter() - _loop_began)
            return order_ids_arr, out_weights, total

    # --- greedy loop over the flattened CSR -------------------------- #
    # The loop runs over plain Python lists materialised once from the
    # flat CSR arrays: per incident edge it is one list read, one float
    # subtraction and one heap push — no numpy scalar dispatches, no
    # incident_arrays_id scratch copies, no dict probes.  Arithmetic is
    # the same IEEE f64 sequence as the heap path, so the output is
    # bit-identical.
    _loop_began = time.perf_counter()
    member_list = member_ids.tolist()
    # None marks "not part of this run" (non-members and, later, peeled
    # vertices); only members start with a float value.
    cur: List[Optional[float]] = [None] * num_ids
    for vid, value in zip(member_list, current[member_ids].tolist()):
        cur[vid] = value
    off, nbrs, wts = snapshot.flat_incidence()

    heap: List[Tuple[float, int]] = list(zip(current[member_ids].tolist(), member_list))
    heapq.heapify(heap)
    heappop = heapq.heappop
    heappush = heapq.heappush

    order_ids: List[int] = []
    out_weights: List[float] = []
    live_count = k

    while heap:
        weight, vid = heappop(heap)
        if cur[vid] != weight:
            # Stale lazy-deletion entry, or an already-removed vertex
            # (removal stores None, which never equals a float); the
            # fresh entry (if any) is still queued.
            continue
        cur[vid] = None
        live_count -= 1
        order_ids.append(vid)
        out_weights.append(weight)
        for i in range(off[vid], off[vid + 1]):
            nbr = nbrs[i]
            value = cur[nbr]
            if value is not None:
                value -= wts[i]
                cur[nbr] = value
                heappush(heap, (value, nbr))
        if len(heap) > 4096 and len(heap) > 2 * live_count:
            # Compact the lazy heap: drop every stale entry in one
            # heapify instead of popping them one by one.  A vertex's
            # value strictly decreases, so exactly one entry per live
            # vertex survives the filter; stale entries never produce
            # output, so compaction cannot change the peeling sequence —
            # it only bounds the heap at O(live vertices).
            heap = [entry for entry in heap if cur[entry[1]] == entry[0]]
            heapq.heapify(heap)

    _obs_profile.record("peel_greedy", "python", time.perf_counter() - _loop_began)
    return np.asarray(order_ids, dtype=np.int32), out_weights, total
