"""Correctness and guarantee checks shared by tests and benchmarks.

Three families of checks:

* :func:`is_valid_peeling_sequence` — verifies that a sequence (static or
  incrementally maintained) is a legal greedy peeling of a graph: at every
  step the removed vertex has the (tolerance-adjusted) minimum peeling
  weight, and the recorded weight matches the true peeling weight.
* :func:`check_approximation_guarantee` — Lemma 2.1: the peeling community
  is at least half as dense as the exact optimum.
* :func:`verify_axioms` — the density-metric axioms of Appendix E
  (vertex suspiciousness, edge suspiciousness, concentration) evaluated on
  concrete graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.graph.graph import DynamicGraph, Vertex
from repro.peeling.exact import brute_force_densest, goldberg_densest
from repro.peeling.result import PeelingResult
from repro.peeling.semantics import subset_density, subset_suspiciousness

__all__ = [
    "SequenceCheck",
    "is_valid_peeling_sequence",
    "check_approximation_guarantee",
    "verify_axioms",
]


@dataclass(frozen=True)
class SequenceCheck:
    """Outcome of validating a peeling sequence against a graph."""

    valid: bool
    message: str = ""
    failing_position: Optional[int] = None

    def __bool__(self) -> bool:
        return self.valid


def is_valid_peeling_sequence(
    graph: DynamicGraph,
    order: Sequence[Vertex],
    weights: Optional[Sequence[float]] = None,
    tolerance: float = 1e-7,
) -> SequenceCheck:
    """Check that ``order`` is a valid greedy peeling sequence of ``graph``.

    Validity means: the sequence covers every vertex exactly once and, at
    every step, the peeled vertex's true peeling weight is within
    ``tolerance`` of the minimum over the remaining set.  When ``weights``
    are supplied they are additionally compared against the recomputed
    peeling weights.
    """
    vertices = set(graph.vertices())
    if set(order) != vertices or len(order) != len(vertices):
        return SequenceCheck(False, "sequence does not cover the vertex set exactly once")

    # Current peeling weight of every vertex w.r.t. the not-yet-peeled set.
    current = {
        v: graph.vertex_weight(v) + graph.incident_weight(v) for v in vertices
    }
    remaining = set(vertices)

    for position, vertex in enumerate(order):
        true_weight = current[vertex]
        min_weight = min(current[v] for v in remaining)
        if true_weight > min_weight + tolerance:
            return SequenceCheck(
                False,
                f"position {position}: peeled {vertex!r} with weight {true_weight:.6f} "
                f"but the minimum was {min_weight:.6f}",
                failing_position=position,
            )
        if weights is not None and abs(weights[position] - true_weight) > tolerance:
            return SequenceCheck(
                False,
                f"position {position}: recorded weight {weights[position]:.6f} does not "
                f"match the true peeling weight {true_weight:.6f}",
                failing_position=position,
            )
        remaining.discard(vertex)
        for nbr, edge_weight in graph.incident_items(vertex):
            if nbr in remaining:
                current[nbr] -= edge_weight
    return SequenceCheck(True, "valid peeling sequence")


def check_approximation_guarantee(
    graph: DynamicGraph,
    result: PeelingResult,
    exact: str = "auto",
    tolerance: float = 1e-6,
) -> bool:
    """Check Lemma 2.1: ``g(S_P) >= g(S*) / 2``.

    Parameters
    ----------
    exact:
        ``"brute"`` uses exhaustive enumeration, ``"flow"`` uses the
        Goldberg solver, ``"auto"`` picks brute force for tiny graphs and
        flow otherwise.
    """
    if graph.num_vertices() == 0:
        return True
    if exact == "auto":
        exact = "brute" if graph.num_vertices() <= 14 else "flow"
    if exact == "brute":
        optimum = brute_force_densest(graph)
    elif exact == "flow":
        optimum = goldberg_densest(graph)
    else:
        raise ValueError(f"unknown exact solver {exact!r}")
    achieved = subset_density(graph, result.community)
    return achieved + tolerance >= optimum.density / 2.0


def verify_axioms(graph: DynamicGraph, samples: int = 25, seed: int = 0) -> bool:
    """Spot-check the Appendix E axioms on random subsets of ``graph``.

    * Axiom 1 (vertex suspiciousness): adding prior weight to a vertex of
      ``S`` increases ``g(S)``.
    * Axiom 2 (edge suspiciousness): adding an edge inside ``S`` increases
      ``g(S)``.
    * Axiom 3 (concentration): for equal ``f``, the smaller set is denser.

    These are direct consequences of the arithmetic-density form and are
    verified numerically to guard against metric-evaluation regressions.
    """
    import random

    rng = random.Random(seed)
    vertices = list(graph.vertices())
    if len(vertices) < 3:
        return True

    for _ in range(samples):
        size = rng.randint(2, max(2, min(len(vertices), 8)))
        subset = set(rng.sample(vertices, size))
        base_f = subset_suspiciousness(graph, subset)
        base_g = base_f / len(subset)

        # Axiom 1: increase a vertex prior inside S.
        probe = graph.copy()
        target = next(iter(subset))
        probe.set_vertex_weight(target, probe.vertex_weight(target) + 1.0)
        if subset_density(probe, subset) <= base_g:
            return False

        # Axiom 2: add (or reinforce) an edge inside S.
        probe = graph.copy()
        members = list(subset)
        src, dst = members[0], members[1]
        probe.add_edge(src, dst, 1.0)
        if subset_density(probe, subset) <= base_g:
            return False

        # Axiom 3: compare against a strictly larger set with the same f.
        # Constructed by adding an isolated zero-weight vertex to S.
        probe = graph.copy()
        filler = ("__axiom3_filler__", rng.random())
        probe.add_vertex(filler, 0.0)
        larger = set(subset) | {filler}
        if base_f > 0 and subset_density(probe, larger) >= base_g:
            return False
    return True
