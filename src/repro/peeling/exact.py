"""Exact densest-subgraph solvers, used to validate the 1/2 guarantee.

Lemma 2.1 of the paper states the classical guarantee of greedy peeling:
``g(S_P) >= g(S*) / 2`` where ``S*`` is the optimal vertex set.  To verify it
(and to quantify how close to optimal the peeling community actually is on
the synthetic workloads), this module provides two reference solvers for

.. math:: \\max_{S \\subseteq V,\\ S \\neq \\emptyset} \\; g(S) = \\frac{f(S)}{|S|}

with ``f`` the weighted suspiciousness of Equation 1:

* :func:`brute_force_densest` — exhaustive enumeration, exponential, only
  for tiny graphs (property-based tests).
* :func:`goldberg_densest` — Goldberg's parametric max-flow construction,
  generalised to edge weights and vertex priors, solved via binary search
  on the density and a min-cut oracle (networkx).  Polynomial, usable for a
  few thousand vertices.

Both treat the directed graph as undirected for the purposes of ``f`` —
exactly as the density metric does, since an edge contributes whenever both
endpoints are in ``S`` regardless of direction.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Optional, Tuple

import numpy as np

from repro.errors import ReproError
from repro.graph.graph import DynamicGraph, Vertex
from repro.peeling.semantics import subset_density

__all__ = ["brute_force_densest", "goldberg_densest", "ExactResult"]


class ExactResult(Tuple[FrozenSet[Vertex], float]):
    """``(optimal_set, optimal_density)`` returned by the exact solvers."""

    __slots__ = ()

    def __new__(cls, subset: FrozenSet[Vertex], density: float) -> "ExactResult":
        return super().__new__(cls, (frozenset(subset), float(density)))

    @property
    def subset(self) -> FrozenSet[Vertex]:
        """The optimal vertex set ``S*``."""
        return self[0]

    @property
    def density(self) -> float:
        """The optimal density ``g(S*)``."""
        return self[1]


_BRUTE_FORCE_LIMIT = 18


def brute_force_densest(graph: DynamicGraph) -> ExactResult:
    """Exhaustively find the densest subset (only for ``|V| <= 18``)."""
    vertices = list(graph.vertices())
    n = len(vertices)
    if n == 0:
        return ExactResult(frozenset(), 0.0)
    if n > _BRUTE_FORCE_LIMIT:
        raise ReproError(
            f"brute_force_densest is limited to {_BRUTE_FORCE_LIMIT} vertices, got {n}"
        )
    best_set: FrozenSet[Vertex] = frozenset([vertices[0]])
    best_density = subset_density(graph, best_set)
    for size in range(1, n + 1):
        for combo in combinations(vertices, size):
            density = subset_density(graph, set(combo))
            if density > best_density + 1e-12:
                best_density = density
                best_set = frozenset(combo)
    return ExactResult(best_set, best_density)


def _undirected_weights(graph: DynamicGraph) -> Dict[Tuple[Vertex, Vertex], float]:
    """Collapse the directed edge weights into undirected pair weights.

    Backends that can freeze (array) take a vectorised route over the CSR
    snapshot's flat edge arrays — canonicalise each pair by dense id, group
    with ``np.unique`` and sum with a weighted ``bincount`` — instead of a
    per-edge Python loop.  The key orientation (``repr`` order) matches the
    reference path so downstream consumers see identical dictionaries.
    """
    if hasattr(graph, "freeze"):
        snapshot = graph.freeze()
        src, dst, weights = snapshot.edge_arrays()
        if len(src) == 0:
            return {}
        lo = np.minimum(src, dst).astype(np.int64)
        hi = np.maximum(src, dst).astype(np.int64)
        packed = lo * snapshot.num_ids + hi
        unique, first_seen, inverse = np.unique(
            packed, return_index=True, return_inverse=True
        )
        # bincount accumulates duplicates in edge order, and emitting the
        # pairs by first occurrence restores the reference path's dict
        # insertion order — the result is identical including iteration
        # order, so downstream sequential accumulations don't drift.
        sums = np.bincount(inverse, weights=weights)
        by_first_seen = np.argsort(first_seen, kind="stable")
        unique = unique[by_first_seen]
        sums = sums[by_first_seen]
        lo_labels = snapshot.labels_for(unique // snapshot.num_ids)
        hi_labels = snapshot.labels_for(unique % snapshot.num_ids)
        pair_weight = {}
        for a, b, total in zip(lo_labels, hi_labels, sums.tolist()):
            key = (a, b) if repr(a) <= repr(b) else (b, a)
            pair_weight[key] = total
        return pair_weight
    pair_weight: Dict[Tuple[Vertex, Vertex], float] = {}
    for src, dst, weight in graph.edges():
        key = (src, dst) if repr(src) <= repr(dst) else (dst, src)
        pair_weight[key] = pair_weight.get(key, 0.0) + weight
    return pair_weight


def goldberg_densest(
    graph: DynamicGraph,
    tolerance: float = 1e-7,
    max_iterations: int = 64,
) -> ExactResult:
    """Exact densest subgraph via Goldberg's max-flow construction.

    The construction: for a density guess ``λ`` build a flow network with a
    source ``s``, a sink ``t`` and, per vertex ``v``, arcs

    * ``s → v`` with capacity ``M`` (a large constant),
    * ``v → t`` with capacity ``M + λ - d_w(v)/2 - a_v``,

    plus arcs ``u → v`` and ``v → u`` with capacity ``w_uv / 2`` for every
    undirected pair.  The minimum ``s``-``t`` cut equals
    ``n·M - max_S (f(S) - λ|S|)``; hence some non-empty ``S`` with density
    above ``λ`` exists iff the min cut is strictly below ``n·M``.  A binary
    search on ``λ`` converges to the optimum; the source side of the final
    feasible cut is the optimal set.
    """
    try:
        import networkx as nx
    except ImportError as exc:  # pragma: no cover - networkx is installed in CI
        raise ReproError("goldberg_densest requires networkx") from exc

    vertices = list(graph.vertices())
    n = len(vertices)
    if n == 0:
        return ExactResult(frozenset(), 0.0)
    pair_weight = _undirected_weights(graph)

    weighted_degree = {v: 0.0 for v in vertices}
    for (u, v), weight in pair_weight.items():
        weighted_degree[u] += weight
        weighted_degree[v] += weight

    prior = {v: graph.vertex_weight(v) for v in vertices}
    gain = {v: weighted_degree[v] / 2.0 + prior[v] for v in vertices}
    big_m = max(gain.values()) + graph.total_suspiciousness() + 1.0

    # Density search interval: [single best vertex, f(V)] is always valid.
    low = max(prior.values()) if vertices else 0.0
    low = max(low, 0.0)
    high = graph.total_suspiciousness()
    best_set = frozenset(max(vertices, key=lambda v: prior[v]) for _ in range(1))
    best_set = frozenset([max(vertices, key=lambda v: prior[v])])
    best_density = subset_density(graph, best_set)
    low = max(low, best_density)

    def min_cut_side(lam: float) -> Optional[FrozenSet[Vertex]]:
        """Return the source-side S (excluding s) if density > lam exists."""
        network = nx.DiGraph()
        source, sink = ("__source__",), ("__sink__",)
        for v in vertices:
            network.add_edge(source, v, capacity=big_m)
            network.add_edge(v, sink, capacity=big_m + lam - gain[v])
        for (u, v), weight in pair_weight.items():
            network.add_edge(u, v, capacity=weight / 2.0)
            network.add_edge(v, u, capacity=weight / 2.0)
        cut_value, (source_side, _sink_side) = nx.minimum_cut(network, source, sink)
        subset = frozenset(v for v in source_side if v != source)
        if subset and cut_value < n * big_m - 1e-9:
            return subset
        return None

    for _ in range(max_iterations):
        if high - low <= tolerance:
            break
        mid = (low + high) / 2.0
        subset = min_cut_side(mid)
        if subset:
            density = subset_density(graph, subset)
            if density > best_density:
                best_density = density
                best_set = subset
            low = max(mid, density)
        else:
            high = mid

    return ExactResult(best_set, best_density)
