"""The result of a peeling run: sequence, weights, densities and community.

Algorithm 1 of the paper produces a *peeling sequence* ``O = [u_1, ..., u_n]``
(the order in which vertices are removed) together with the *peeling weight*
``Δ_i = w_{u_i}(S_{i-1})`` of each removal.  The fraudulent community is the
suffix ``S_k = {u_{k+1}, ..., u_n}`` maximising the density ``g(S_k)``.

Because the peeling weights telescope —

.. math:: f(S_i) = f(S_{i-1}) - Δ_i, \\qquad f(S_0) = f(V)

— the whole density profile can be reconstructed from ``(O, Δ, f(V))``
without re-touching the graph, which is exactly what the incremental engine
exploits.  :class:`PeelingResult` stores that triple plus the derived
community, and offers the derived views used by tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Sequence, Tuple

from repro.graph.graph import Vertex

__all__ = ["PeelingResult", "densities_from_weights", "best_suffix"]


def densities_from_weights(total: float, weights: Sequence[float]) -> List[float]:
    """Return ``[g(S_0), g(S_1), ..., g(S_{n-1})]`` from the peeling weights.

    ``g(S_i)`` is the density of the vertex set remaining after ``i`` peels;
    ``g(S_n)`` (the empty set) is defined as 0 and omitted.
    """
    n = len(weights)
    densities: List[float] = []
    remaining = total
    for i in range(n):
        densities.append(remaining / (n - i))
        remaining -= weights[i]
    return densities


def best_suffix(total: float, weights: Sequence[float]) -> Tuple[int, float]:
    """Return ``(k, g(S_k))`` maximising the suffix density.

    ``k`` is the number of peeled vertices; the community is
    ``order[k:]``.  Ties are broken towards the smallest ``k`` (the largest
    community), matching ``arg max_{S_i} g(S_i)`` evaluated in peel order.
    """
    n = len(weights)
    if n == 0:
        return 0, 0.0
    best_k = 0
    best_density = total / n
    remaining = total
    for i in range(n - 1):
        remaining -= weights[i]
        density = remaining / (n - i - 1)
        if density > best_density + 1e-12:
            best_density = density
            best_k = i + 1
    return best_k, best_density


@dataclass(frozen=True)
class PeelingResult:
    """Outcome of a (static or incrementally maintained) peeling run."""

    #: Peeling sequence ``O``: vertices in removal order.
    order: Tuple[Vertex, ...]
    #: Peeling weights ``Δ_i = w_{u_i}(S_{i-1})`` aligned with ``order``.
    weights: Tuple[float, ...]
    #: Total suspiciousness of the full graph, ``f(V)``.
    total_suspiciousness: float
    #: Number of peeled vertices before the returned community.
    best_index: int
    #: Density ``g(S_P)`` of the returned community.
    best_density: float
    #: The fraudulent community ``S_P`` (suffix of ``order``).
    community: FrozenSet[Vertex]
    #: Name of the semantics that produced the result (``DG``/``DW``/``FD``/...).
    semantics_name: str = "custom"

    def __post_init__(self) -> None:
        if len(self.order) != len(self.weights):
            raise ValueError(
                f"order and weights must align: {len(self.order)} != {len(self.weights)}"
            )

    # ------------------------------------------------------------------ #
    # Derived views
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        """Return the number of vertices covered by the sequence."""
        return len(self.order)

    def densities(self) -> List[float]:
        """Return the density profile ``[g(S_0), ..., g(S_{n-1})]``."""
        return densities_from_weights(self.total_suspiciousness, self.weights)

    def suffix_set(self, k: int) -> FrozenSet[Vertex]:
        """Return ``S_k``, the vertex set remaining after ``k`` peels."""
        if k < 0 or k > len(self.order):
            raise IndexError(f"k must be in [0, {len(self.order)}], got {k}")
        return frozenset(self.order[k:])

    def position_of(self, vertex: Vertex) -> int:
        """Return the 0-based peel position of ``vertex`` (linear scan)."""
        for index, candidate in enumerate(self.order):
            if candidate == vertex:
                return index
        raise KeyError(vertex)

    def community_size(self) -> int:
        """Return ``|S_P|``."""
        return len(self.community)

    def summary(self) -> str:
        """Return a one-line human-readable summary."""
        return (
            f"{self.semantics_name}: |V|={self.num_vertices} peeled, "
            f"community of {self.community_size()} vertices at density "
            f"{self.best_density:.4f}"
        )

    @classmethod
    def from_sequence(
        cls,
        order: Sequence[Vertex],
        weights: Sequence[float],
        total_suspiciousness: float,
        semantics_name: str = "custom",
    ) -> "PeelingResult":
        """Build a result from a sequence and weights, deriving the community."""
        best_k, best_density = best_suffix(total_suspiciousness, weights)
        return cls(
            order=tuple(order),
            weights=tuple(weights),
            total_suspiciousness=float(total_suspiciousness),
            best_index=best_k,
            best_density=best_density,
            community=frozenset(order[best_k:]),
            semantics_name=semantics_name,
        )
