"""Density semantics: the ``vsusp`` / ``esusp`` plug-in interface.

Section 3 of the paper defines Spade's programmability model: a developer
supplies two *suspiciousness functions*,

* ``vsusp(u, G)``  — the prior suspiciousness ``a_i >= 0`` of a vertex, and
* ``esusp((u, v), G)`` — the suspiciousness ``c_ij > 0`` of an edge,

and the framework evaluates the arithmetic density metric

.. math::

    g(S) = \\frac{f(S)}{|S|},\\qquad
    f(S) = \\sum_{u_i \\in S} a_i + \\sum_{(u_i,u_j) \\in E[S]} c_{ij}

(Equation 1).  Property 3.1 states that any metric of this shape with
non-negative vertex weights and positive edge weights is supported.

Three built-in instances mirror Appendix F:

``dg_semantics``
    DG [Charikar 2000]: ``esusp = 1`` for every edge, no vertex prior.
``dw_semantics``
    DW [Gudapati et al. 2021]: ``esusp`` is the raw transaction weight.
``fraudar_semantics``
    FD [Hooi et al. 2016]: ``esusp(u, v) = 1 / log(x + c)`` where ``x`` is
    the degree of the *object* vertex (the merchant / column vertex ``v``),
    and ``vsusp`` returns a per-vertex prior from side information.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import AbstractSet, Callable, Mapping, Optional

from repro.errors import SemanticsError
from repro.graph.graph import DynamicGraph, Vertex

__all__ = [
    "VertexSuspFn",
    "EdgeSuspFn",
    "PeelingSemantics",
    "dg_semantics",
    "dw_semantics",
    "fraudar_semantics",
    "custom_semantics",
    "subset_suspiciousness",
    "subset_density",
]

#: ``vsusp(vertex, graph) -> a_i``
VertexSuspFn = Callable[[Vertex, DynamicGraph], float]
#: ``esusp(src, dst, raw_weight, graph) -> c_ij``
EdgeSuspFn = Callable[[Vertex, Vertex, float, DynamicGraph], float]


def _zero_vertex_susp(_vertex: Vertex, _graph: DynamicGraph) -> float:
    """Default vertex suspiciousness: no prior (used by DG and DW)."""
    return 0.0


def _unit_edge_susp(_src: Vertex, _dst: Vertex, _raw: float, _graph: DynamicGraph) -> float:
    """Default edge suspiciousness: every edge counts 1 (DG)."""
    return 1.0


def _raw_edge_susp(_src: Vertex, _dst: Vertex, raw: float, _graph: DynamicGraph) -> float:
    """Edge suspiciousness equal to the raw transaction weight (DW)."""
    return raw


@dataclass(frozen=True)
class PeelingSemantics:
    """A peeling algorithm specification: density metric + suspiciousness.

    Instances are immutable and cheap to share; the Spade engine keeps a
    reference to the semantics it was constructed with and uses it to weigh
    every vertex and edge entering the graph.

    Attributes
    ----------
    name:
        Human-readable identifier used by benchmark tables (``"DG"``,
        ``"DW"``, ``"FD"`` or a custom label).
    vertex_susp:
        The ``vsusp`` plug-in.
    edge_susp:
        The ``esusp`` plug-in.  It receives the raw weight carried by the
        update so that transaction-amount semantics (DW) can use it, while
        structural semantics (DG, FD) are free to ignore it.
    recompute_on_insert:
        When true (the FD default) the edge weight depends on the state of
        the graph at insertion time (e.g. the current degree of the object
        vertex) and must be evaluated lazily per insertion.  When false the
        weight is a pure function of the update itself.
    """

    name: str
    vertex_susp: VertexSuspFn = _zero_vertex_susp
    edge_susp: EdgeSuspFn = _unit_edge_susp
    recompute_on_insert: bool = False

    # ------------------------------------------------------------------ #
    # Evaluation helpers
    # ------------------------------------------------------------------ #
    def vertex_weight(self, vertex: Vertex, graph: DynamicGraph) -> float:
        """Evaluate ``vsusp`` and validate the result (``a_i >= 0``)."""
        value = float(self.vertex_susp(vertex, graph))
        if value < 0 or math.isnan(value) or math.isinf(value):
            raise SemanticsError(
                f"{self.name}: vsusp({vertex!r}) returned {value}, expected a finite value >= 0"
            )
        return value

    def edge_weight(self, src: Vertex, dst: Vertex, raw_weight: float, graph: DynamicGraph) -> float:
        """Evaluate ``esusp`` and validate the result (``c_ij > 0``)."""
        value = float(self.edge_susp(src, dst, raw_weight, graph))
        if value <= 0 or math.isnan(value) or math.isinf(value):
            raise SemanticsError(
                f"{self.name}: esusp({src!r}, {dst!r}) returned {value}, expected a finite value > 0"
            )
        return value

    def materialize(
        self,
        edges,
        vertex_priors: Optional[Mapping[Vertex, float]] = None,
        backend: Optional[str] = None,
    ) -> DynamicGraph:
        """Build a weighted graph from raw transaction edges.

        Parameters
        ----------
        edges:
            Iterable of ``(src, dst)`` or ``(src, dst, raw_weight)`` tuples.
        vertex_priors:
            Optional side-information priors overriding ``vsusp``.
        backend:
            Graph backend name (``"dict"`` / ``"array"``); ``None`` uses the
            process default (:func:`repro.graph.backend.get_default_backend`).

        The graph is built in two passes: structure first, then weights, so
        that degree-dependent semantics such as Fraudar see the *final*
        degrees exactly as the original static algorithms do.
        """
        from repro.graph.backend import create_graph

        structural = create_graph(backend)
        raw_weights = {}
        for item in edges:
            if len(item) == 2:
                src, dst = item
                raw = 1.0
            else:
                src, dst, raw = item[0], item[1], float(item[2])
            structural.add_edge(src, dst, raw)
            raw_weights[(src, dst)] = raw_weights.get((src, dst), 0.0) + raw

        weighted = create_graph(backend)
        for vertex in structural.vertices():
            if vertex_priors is not None and vertex in vertex_priors:
                prior = float(vertex_priors[vertex])
            else:
                prior = self.vertex_weight(vertex, structural)
            weighted.add_vertex(vertex, prior)
        for (src, dst), raw in raw_weights.items():
            weighted.add_edge(src, dst, self.edge_weight(src, dst, raw, structural))
        return weighted

    def with_name(self, name: str) -> "PeelingSemantics":
        """Return a copy of the semantics under a different display name."""
        return PeelingSemantics(
            name=name,
            vertex_susp=self.vertex_susp,
            edge_susp=self.edge_susp,
            recompute_on_insert=self.recompute_on_insert,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PeelingSemantics({self.name!r})"


# ---------------------------------------------------------------------- #
# Built-in instances (Appendix F)
# ---------------------------------------------------------------------- #
def dg_semantics() -> PeelingSemantics:
    """DG — unweighted densest subgraph (Charikar).

    ``g(S) = |E[S]| / |S|``: every edge contributes 1, vertices contribute
    nothing.
    """
    return PeelingSemantics(name="DG", vertex_susp=_zero_vertex_susp, edge_susp=_unit_edge_susp)


def dw_semantics() -> PeelingSemantics:
    """DW — edge-weighted dense subgraph (Gudapati et al.).

    ``g(S) = sum of transaction weights within S / |S|``.
    """
    return PeelingSemantics(name="DW", vertex_susp=_zero_vertex_susp, edge_susp=_raw_edge_susp)


def fraudar_semantics(
    column_constant: float = 5.0,
    vertex_priors: Optional[Mapping[Vertex, float]] = None,
) -> PeelingSemantics:
    """FD — Fraudar (Hooi et al. 2016).

    The edge suspiciousness down-weights edges pointing at popular object
    vertices: ``esusp(u_i, u_j) = 1 / log(x + c)`` where ``x`` is the degree
    of the object (destination) vertex and ``c`` a small positive constant
    (the paper and Listing 2 use ``c = 5``).  The vertex suspiciousness is a
    prior taken from side information; by default the prior is zero unless a
    mapping is supplied.
    """
    priors = dict(vertex_priors) if vertex_priors else {}

    def vsusp(vertex: Vertex, _graph: DynamicGraph) -> float:
        return float(priors.get(vertex, 0.0))

    def esusp(_src: Vertex, dst: Vertex, _raw: float, graph: DynamicGraph) -> float:
        degree = graph.degree(dst) if graph.has_vertex(dst) else 0
        return 1.0 / math.log(degree + column_constant)

    return PeelingSemantics(
        name="FD",
        vertex_susp=vsusp,
        edge_susp=esusp,
        recompute_on_insert=True,
    )


def custom_semantics(
    name: str,
    vertex_susp: Optional[VertexSuspFn] = None,
    edge_susp: Optional[EdgeSuspFn] = None,
    recompute_on_insert: bool = False,
) -> PeelingSemantics:
    """Build a user-defined semantics from ``vsusp`` / ``esusp`` plug-ins.

    This is the programmability entry point highlighted by the paper: a
    developer writes roughly 20 lines (the two plug-ins plus wiring) and the
    framework incrementalizes the resulting peeling algorithm automatically.
    """
    return PeelingSemantics(
        name=name,
        vertex_susp=vertex_susp or _zero_vertex_susp,
        edge_susp=edge_susp or _unit_edge_susp,
        recompute_on_insert=recompute_on_insert,
    )


# ---------------------------------------------------------------------- #
# Metric evaluation on materialised graphs
# ---------------------------------------------------------------------- #
def subset_suspiciousness(graph: DynamicGraph, subset: AbstractSet[Vertex]) -> float:
    """Evaluate ``f(S)`` (Equation 1) directly on a weighted graph."""
    total = 0.0
    members = set(subset)
    for vertex in members:
        if graph.has_vertex(vertex):
            total += graph.vertex_weight(vertex)
            for dst, weight in graph.out_neighbors(vertex).items():
                if dst in members:
                    total += weight
    return total


def subset_density(graph: DynamicGraph, subset: AbstractSet[Vertex]) -> float:
    """Evaluate ``g(S) = f(S) / |S|`` directly on a weighted graph."""
    if not subset:
        return 0.0
    return subset_suspiciousness(graph, subset) / len(subset)
