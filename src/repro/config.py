"""Central engine-configuration vocabulary and validation.

Before this module existed every construction site validated its own
knobs its own way: ``Spade`` deferred an invalid backend name to the
first ``load_edges``, ``ShardedSpade.__init__`` hand-rolled three
``ValueError``\\ s, the bench CLIs leaned on ``argparse`` ``choices``, and
the experiment harness validated nothing at all.  This module is the one
place that knows the valid choices for every knob, and
:func:`validate_config` is the one helper every layer calls — raising a
single error type (:class:`repro.errors.ConfigError`) whose message
always lists the valid choices.

The module deliberately sits *below* the engine layer (it imports only
``repro.errors``, ``repro.graph.backend`` and ``repro.peeling.semantics``)
so that ``repro.core``, ``repro.engine`` and ``repro.bench`` can all use
it without import cycles; the public façade
(:class:`repro.api.EngineConfig`) builds on it from above.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.errors import ConfigError
from repro.graph.backend import BACKENDS
from repro.native import VALID_KERNELS
from repro.peeling.semantics import (
    PeelingSemantics,
    dg_semantics,
    dw_semantics,
    fraudar_semantics,
)

__all__ = [
    "SEMANTICS_FACTORIES",
    "VALID_BACKENDS",
    "VALID_EXECUTORS",
    "VALID_KERNELS",
    "VALID_SEMANTICS",
    "VALID_STATIC",
    "semantics_instance",
    "validate_config",
]

#: The built-in peeling algorithms of the paper, by display name.
SEMANTICS_FACTORIES: Dict[str, Callable[[], PeelingSemantics]] = {
    "DG": dg_semantics,
    "DW": dw_semantics,
    "FD": fraudar_semantics,
}

#: Valid graph backends (the keys of the backend registry).
VALID_BACKENDS: Tuple[str, ...] = tuple(sorted(BACKENDS))
#: Valid static-peel methods for the from-scratch baselines.
VALID_STATIC: Tuple[str, ...] = ("heap", "csr")
#: Valid shard-community executors of :class:`repro.engine.ShardedSpade`.
VALID_EXECUTORS: Tuple[str, ...] = ("serial", "process")
#: Valid built-in semantics names.
VALID_SEMANTICS: Tuple[str, ...] = tuple(SEMANTICS_FACTORIES)


def _choice(kind: str, value: object, valid: Tuple[str, ...]) -> None:
    if value not in valid:
        raise ConfigError(
            f"unknown {kind} {value!r}; valid choices: {', '.join(valid)}"
        )


def validate_config(
    *,
    semantics: Optional[str] = None,
    backend: Optional[str] = None,
    static: Optional[str] = None,
    shards: Optional[int] = None,
    executor: Optional[str] = None,
    coordinator_interval: Optional[int] = None,
    kernel: Optional[str] = None,
) -> None:
    """Validate engine-configuration knobs; raise :class:`ConfigError` if bad.

    Every argument is optional — only the knobs a caller actually has are
    checked, so the same helper serves ``Spade.__init__`` (backend only),
    ``ShardedSpade.__init__`` (backend / shards / executor / interval),
    ``create_engine``, the bench CLIs and
    :class:`repro.api.EngineConfig` (everything).

    ``semantics`` here is the *name* of a built-in ("DG" / "DW" / "FD");
    callers passing a :class:`~repro.peeling.semantics.PeelingSemantics`
    instance bypass the name check by omitting the argument.
    """
    if semantics is not None:
        _choice("semantics", semantics, VALID_SEMANTICS)
    if backend is not None:
        _choice("graph backend", backend, VALID_BACKENDS)
    if static is not None:
        _choice("static-peel method", static, VALID_STATIC)
    if shards is not None and shards < 1:
        raise ConfigError(f"shards must be >= 1, got {shards}")
    if executor is not None:
        _choice("executor", executor, VALID_EXECUTORS)
    if coordinator_interval is not None and coordinator_interval < 1:
        raise ConfigError(
            f"coordinator_interval must be >= 1, got {coordinator_interval}"
        )
    if kernel is not None:
        _choice("kernel", kernel, VALID_KERNELS)


def semantics_instance(name: str) -> PeelingSemantics:
    """Instantiate a built-in semantics by display name (validated)."""
    _choice("semantics", name, VALID_SEMANTICS)
    return SEMANTICS_FACTORIES[name]()
