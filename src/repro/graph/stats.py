"""Graph statistics used by the evaluation.

The paper reports dataset statistics in Table 3 (|V|, |E|, average degree,
number of increments) and the degree distribution of the Grab graph in
Figure 9(b), observing that it follows a power law — which is the reason
most edge insertions only touch a tiny affected area.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.graph.graph import DynamicGraph

__all__ = ["GraphStats", "DegreeDistribution", "compute_stats", "degree_distribution"]


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a graph, matching the columns of Table 3."""

    num_vertices: int
    num_edges: int
    avg_degree: float
    total_vertex_weight: float
    total_edge_weight: float
    max_degree: int

    def as_row(self) -> Dict[str, object]:
        """Return the stats as a dict suitable for table rendering."""
        return {
            "|V|": self.num_vertices,
            "|E|": self.num_edges,
            "avg. degree": round(self.avg_degree, 3),
            "max degree": self.max_degree,
            "f_V": round(self.total_vertex_weight, 3),
            "f_E": round(self.total_edge_weight, 3),
        }


@dataclass(frozen=True)
class DegreeDistribution:
    """A degree histogram: ``frequency[d]`` = number of vertices of degree d."""

    degrees: Tuple[int, ...]
    frequencies: Tuple[int, ...]

    def as_pairs(self) -> List[Tuple[int, int]]:
        """Return ``(degree, frequency)`` pairs sorted by degree."""
        return list(zip(self.degrees, self.frequencies))

    def power_law_exponent(self) -> float:
        """Estimate the power-law exponent via a log-log least-squares fit.

        The fit excludes degree 0; a heavy-tailed (power-law-like)
        distribution has an exponent well below ``-1``.  The estimate is
        only used to characterise workloads (Figure 9b), not for inference.
        """
        xs = np.array([d for d in self.degrees if d > 0], dtype=float)
        ys = np.array(
            [f for d, f in zip(self.degrees, self.frequencies) if d > 0], dtype=float
        )
        if len(xs) < 2:
            return 0.0
        slope, _intercept = np.polyfit(np.log(xs), np.log(ys), 1)
        return float(slope)

    def tail_mass(self, threshold: int) -> float:
        """Return the fraction of vertices with degree >= ``threshold``."""
        total = sum(self.frequencies)
        if total == 0:
            return 0.0
        heavy = sum(f for d, f in zip(self.degrees, self.frequencies) if d >= threshold)
        return heavy / total


def _member_degrees(graph) -> Optional[np.ndarray]:
    """Vectorised member degrees, when the backend exposes them.

    Prefers the O(|V|) pool-length gather (no edge traffic); a cached
    fresh CSR snapshot is equivalent but freezing one just for degrees
    would copy every edge array.
    """
    degrees = getattr(graph, "member_degrees", None)
    if degrees is not None:
        return degrees()
    return None


def compute_stats(graph: DynamicGraph) -> GraphStats:
    """Compute :class:`GraphStats` for ``graph``."""
    n = graph.num_vertices()
    m = graph.num_edges()
    degrees = _member_degrees(graph)
    if degrees is not None:
        max_degree = int(degrees.max()) if len(degrees) else 0
    else:
        max_degree = max((graph.degree(v) for v in graph.vertices()), default=0)
    avg_degree = (2.0 * m / n) if n else 0.0
    return GraphStats(
        num_vertices=n,
        num_edges=m,
        avg_degree=avg_degree,
        total_vertex_weight=graph.total_vertex_weight(),
        total_edge_weight=graph.total_edge_weight(),
        max_degree=max_degree,
    )


def degree_distribution(graph: DynamicGraph) -> DegreeDistribution:
    """Compute the (total-degree) histogram of ``graph`` (Figure 9b)."""
    member_degrees = _member_degrees(graph)
    if member_degrees is not None:
        if len(member_degrees) == 0:
            return DegreeDistribution(degrees=(), frequencies=())
        histogram = np.bincount(member_degrees)
        observed = np.nonzero(histogram)[0]
        return DegreeDistribution(
            degrees=tuple(int(d) for d in observed),
            frequencies=tuple(int(f) for f in histogram[observed]),
        )
    counter: Counter = Counter(graph.degree(v) for v in graph.vertices())
    degrees = tuple(sorted(counter))
    frequencies = tuple(counter[d] for d in degrees)
    return DegreeDistribution(degrees=degrees, frequencies=frequencies)
