"""Induced subgraph views, ``G[S]``.

Section 2.1 defines the induced subgraph ``G[S] = (S, E[S])`` with
``E[S] = {(u, v) in E : u, v in S}``.  The density metrics of the paper are
all evaluated on induced subgraphs, so this module provides both a cheap
*view* (no copying, suitable for evaluating ``f`` and ``g``) and a
materialising helper that returns a standalone :class:`DynamicGraph`.
"""

from __future__ import annotations

from typing import AbstractSet, Iterator, Tuple

from repro.graph.graph import DynamicGraph, Vertex

__all__ = ["InducedSubgraph", "induced_subgraph"]


class InducedSubgraph:
    """A lightweight read-only view of ``G[S]``.

    The view holds references to the parent graph and the vertex set, so it
    reflects later mutations of either.  It is intended for metric
    evaluation, not for long-lived storage.
    """

    __slots__ = ("_graph", "_vertices")

    def __init__(self, graph: DynamicGraph, vertices: AbstractSet[Vertex]) -> None:
        self._graph = graph
        self._vertices = vertices

    @property
    def graph(self) -> DynamicGraph:
        """Return the parent graph."""
        return self._graph

    @property
    def vertex_set(self) -> AbstractSet[Vertex]:
        """Return the vertex set ``S`` defining the view."""
        return self._vertices

    def num_vertices(self) -> int:
        """Return ``|S|``."""
        return len(self._vertices)

    def edges(self) -> Iterator[Tuple[Vertex, Vertex, float]]:
        """Iterate over the edges of ``E[S]`` as ``(src, dst, weight)``."""
        graph = self._graph
        vertices = self._vertices
        for src in vertices:
            if not graph.has_vertex(src):
                continue
            for dst, weight in graph.out_neighbors(src).items():
                if dst in vertices:
                    yield src, dst, weight

    def num_edges(self) -> int:
        """Return ``|E[S]|``."""
        return sum(1 for _ in self.edges())

    def total_edge_weight(self) -> float:
        """Return the summed weight of ``E[S]``."""
        return sum(weight for _src, _dst, weight in self.edges())

    def total_vertex_weight(self) -> float:
        """Return the summed vertex priors of ``S``."""
        graph = self._graph
        return sum(graph.vertex_weight(v) for v in self._vertices if graph.has_vertex(v))

    def total_suspiciousness(self) -> float:
        """Return ``f(S)`` as defined by Equation 1."""
        return self.total_vertex_weight() + self.total_edge_weight()

    def density(self) -> float:
        """Return the arithmetic density ``g(S) = f(S) / |S|`` (0 for empty S)."""
        size = self.num_vertices()
        if size == 0:
            return 0.0
        return self.total_suspiciousness() / size

    def materialize(self) -> DynamicGraph:
        """Copy the view into a standalone :class:`DynamicGraph`."""
        sub = DynamicGraph()
        graph = self._graph
        for vertex in self._vertices:
            if graph.has_vertex(vertex):
                sub.add_vertex(vertex, graph.vertex_weight(vertex))
        for src, dst, weight in self.edges():
            sub.add_edge(src, dst, weight)
        return sub


def induced_subgraph(graph: DynamicGraph, vertices: AbstractSet[Vertex]) -> InducedSubgraph:
    """Return the induced-subgraph view ``G[S]``."""
    return InducedSubgraph(graph, set(vertices))
