"""Dynamic weighted directed graphs and graph updates.

This subpackage is the substrate every other part of the reproduction sits
on.  It provides:

* :class:`~repro.graph.graph.DynamicGraph` — an adjacency-list, weighted,
  directed multigraph-as-simple-graph (parallel edges accumulate weight)
  that supports the edge-insertion-only update model of the paper as well as
  the edge deletions needed by Appendix C.
* :class:`~repro.graph.delta.GraphDelta` / :class:`~repro.graph.delta.EdgeUpdate`
  — the ``ΔG`` update objects applied with ``G ⊕ ΔG``.
* :mod:`repro.graph.views` — induced subgraph views ``G[S]``.
* :mod:`repro.graph.stats` — degree distributions and density statistics
  used by the evaluation (Figure 9b).
"""

from repro.graph.array_graph import ArrayGraph
from repro.graph.backend import (
    BACKENDS,
    GraphBackend,
    backend_of,
    convert_graph,
    create_graph,
    get_default_backend,
    set_default_backend,
)
from repro.graph.csr import CsrSnapshot, freeze_graph
from repro.graph.delta import EdgeUpdate, GraphDelta
from repro.graph.graph import DynamicGraph
from repro.graph.interning import VertexInterner
from repro.graph.views import InducedSubgraph, induced_subgraph
from repro.graph.stats import DegreeDistribution, GraphStats, compute_stats, degree_distribution

__all__ = [
    "ArrayGraph",
    "BACKENDS",
    "CsrSnapshot",
    "freeze_graph",
    "GraphBackend",
    "VertexInterner",
    "backend_of",
    "convert_graph",
    "create_graph",
    "get_default_backend",
    "set_default_backend",
    "DynamicGraph",
    "EdgeUpdate",
    "GraphDelta",
    "InducedSubgraph",
    "induced_subgraph",
    "DegreeDistribution",
    "GraphStats",
    "compute_stats",
    "degree_distribution",
]
