"""The pluggable graph-backend abstraction.

Every layer of the reproduction — the incremental engine in
:mod:`repro.core`, the static peel in :mod:`repro.peeling` and the
pipeline/bench harnesses — talks to the graph through the
:class:`GraphBackend` protocol defined here, never through a concrete
class.  Two interchangeable implementations ship with the package:

``"dict"``
    :class:`~repro.graph.graph.DynamicGraph` — adjacency dicts keyed by
    the original hashable labels; simple, allocation-light for tiny
    graphs, and the historical reference implementation.
``"array"``
    :class:`~repro.graph.array_graph.ArrayGraph` — interned ids over
    numpy edge pools with O(1) incident-weight maintenance; the fast path
    for production-scale streams (see ``BENCH_backend.json``).

Both expose the same label-facing API *and* the dense-id hot-path API
(``vertex_ids`` / ``*_id`` methods + the ``interner`` property), and the
differential tests assert they produce bit-identical peeling sequences.

Selection
---------
``Spade(backend="dict" | "array")`` picks a backend per engine;
:func:`set_default_backend` (or the ``REPRO_BACKEND`` environment
variable) configures the process-wide default used when no explicit
choice is made.  The test-suite fixture flips the default to run the
whole suite against both backends.

``incident_arrays_id`` contract: the returned arrays may alias a scratch
buffer owned by the graph and are only guaranteed valid until the next
call on the same graph.  Fancy indexing copies, so masked selections are
always safe to keep.
"""

from __future__ import annotations

import os
from typing import Iterator, Mapping, Optional, Protocol, Tuple, Union, runtime_checkable

import numpy as np

from repro.graph.array_graph import ArrayGraph
from repro.graph.graph import DynamicGraph, Vertex
from repro.graph.interning import VertexInterner

__all__ = [
    "GraphBackend",
    "BACKENDS",
    "AnyGraph",
    "SMALL_DEGREE",
    "create_graph",
    "backend_of",
    "convert_graph",
    "get_default_backend",
    "set_default_backend",
]

#: Neighbourhood size below which the hot paths (static peel, weight
#: recovery) use a scalar loop instead of vectorised numpy ops — a handful
#: of scalar reads beats several numpy dispatches for tiny arrays.  The
#: static and incremental engines share this constant so that, per vertex,
#: both always pick the same summation shape and stay bit-consistent.
SMALL_DEGREE = 32


@runtime_checkable
class GraphBackend(Protocol):
    """The minimal surface the rest of the stack requires from a graph.

    Label-facing methods accept/return the caller's original hashable
    vertex labels; the ``*_id`` methods operate on the dense ids assigned
    by the backend's :class:`~repro.graph.interning.VertexInterner` and
    form the hot path of the incremental engine.
    """

    backend_name: str

    # --- structure -------------------------------------------------- #
    def add_vertex(self, vertex: Vertex, weight: float = 0.0) -> None: ...
    def add_edge(self, src: Vertex, dst: Vertex, weight: float = 1.0) -> float: ...
    def remove_edge(self, src: Vertex, dst: Vertex) -> float: ...
    def has_vertex(self, vertex: Vertex) -> bool: ...
    def has_edge(self, src: Vertex, dst: Vertex) -> bool: ...

    # --- label-facing queries ---------------------------------------- #
    def vertex_weight(self, vertex: Vertex) -> float: ...
    def edge_weight(self, src: Vertex, dst: Vertex) -> float: ...
    def vertices(self) -> Iterator[Vertex]: ...
    def edges(self) -> Iterator[Tuple[Vertex, Vertex, float]]: ...
    def num_vertices(self) -> int: ...
    def num_edges(self) -> int: ...
    def total_edge_weight(self) -> float: ...
    def total_vertex_weight(self) -> float: ...
    def incident_items(self, vertex: Vertex) -> Iterator[Tuple[Vertex, float]]: ...
    def incident_weight(self, vertex: Vertex) -> float: ...
    def neighbors(self, vertex: Vertex) -> Iterator[Vertex]: ...
    def out_neighbors(self, vertex: Vertex) -> Mapping[Vertex, float]: ...
    def in_neighbors(self, vertex: Vertex) -> Mapping[Vertex, float]: ...
    def degree(self, vertex: Vertex) -> int: ...

    # --- dense-id hot path ------------------------------------------- #
    @property
    def interner(self) -> VertexInterner: ...
    def vertex_ids(self) -> np.ndarray: ...
    def has_vertex_id(self, vid: int) -> bool: ...
    def vertex_weight_id(self, vid: int) -> float: ...
    def incident_weight_id(self, vid: int) -> float: ...
    def degree_id(self, vid: int) -> int: ...
    def incident_arrays_id(self, vid: int) -> Tuple[np.ndarray, np.ndarray]: ...


AnyGraph = Union[DynamicGraph, ArrayGraph]

#: Registry of backend name -> concrete class.
BACKENDS = {
    DynamicGraph.backend_name: DynamicGraph,
    ArrayGraph.backend_name: ArrayGraph,
}

_default_backend = os.environ.get("REPRO_BACKEND", "dict")


def _validate(name: str) -> str:
    if name not in BACKENDS:
        raise ValueError(f"unknown graph backend {name!r}; choose from {sorted(BACKENDS)}")
    return name


def get_default_backend() -> str:
    """Return the process-wide default backend name."""
    return _default_backend


def set_default_backend(name: str) -> str:
    """Set the process-wide default backend; returns the previous one."""
    global _default_backend
    previous = _default_backend
    _default_backend = _validate(name)
    return previous


def create_graph(backend: Optional[str] = None, vertices=None, edges=None) -> AnyGraph:
    """Instantiate a graph of the requested (or default) backend."""
    name = _validate(backend) if backend is not None else _default_backend
    return BACKENDS[name](vertices=vertices, edges=edges)


def backend_of(graph) -> str:
    """Return the backend name of a graph instance."""
    return getattr(graph, "backend_name", "dict")


def convert_graph(graph, backend: str) -> AnyGraph:
    """Return ``graph`` itself if it already uses ``backend``, else a copy.

    Conversion replays vertices in insertion order and edges in
    enumeration order, so dense ids — and with them the peeling tie-break
    order — are preserved.
    """
    name = _validate(backend)
    if backend_of(graph) == name:
        return graph
    return BACKENDS[name].from_graph(graph)
