"""Vertex interning: hashable labels ↔ dense ``int32`` identifiers.

Every graph backend owns a :class:`VertexInterner` that maps the arbitrary
hashable vertex labels used by the public API ("alice", 42, ``("c", 7)``)
to dense non-negative integers assigned in first-seen order.  All hot-path
data structures — adjacency pools, peeling positions, tie-break keys —
are indexed by these dense ids, so the inner loops of the incremental
engine (:mod:`repro.core.reorder`) and of the static peel
(:mod:`repro.peeling.static`) never hash or compare Python objects.

Two properties the rest of the stack relies on:

* **Stability** — an id, once assigned, never changes and is never reused,
  so positions and tie-break keys stored in numpy arrays stay valid for
  the lifetime of the session.
* **Insertion order** — ids are assigned in the order labels are first
  interned, which for graphs built through ``add_vertex`` / ``add_edge``
  coincides with graph insertion order.  The peeling tie-break rule
  ("older vertex first") therefore reduces to comparing the ids
  themselves, removing the separate tie-break dictionary from the
  hot path.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Sequence

import numpy as np

__all__ = ["VertexInterner"]


class VertexInterner:
    """A bidirectional, append-only mapping between labels and dense ids."""

    __slots__ = ("_id_of", "_labels")

    def __init__(self) -> None:
        self._id_of: Dict[Hashable, int] = {}
        self._labels: List[Hashable] = []

    # ------------------------------------------------------------------ #
    # Interning
    # ------------------------------------------------------------------ #
    def intern(self, label: Hashable) -> int:
        """Return the id of ``label``, assigning the next dense id if new."""
        vid = self._id_of.get(label)
        if vid is None:
            vid = len(self._labels)
            self._id_of[label] = vid
            self._labels.append(label)
        return vid

    def intern_many(self, labels: Iterable[Hashable]) -> List[int]:
        """Intern every label and return their ids in order."""
        return [self.intern(label) for label in labels]

    # ------------------------------------------------------------------ #
    # Lookups
    # ------------------------------------------------------------------ #
    def id_of(self, label: Hashable) -> int:
        """Return the id of ``label``; raises ``KeyError`` if never interned."""
        return self._id_of[label]

    def get_id(self, label: Hashable, default: int = -1) -> int:
        """Return the id of ``label`` or ``default`` when unknown."""
        return self._id_of.get(label, default)

    def label_of(self, vid: int) -> Hashable:
        """Return the label that owns id ``vid``."""
        return self._labels[vid]

    def labels_for(self, vids: Sequence[int]) -> List[Hashable]:
        """Translate a sequence (or numpy array) of ids back to labels."""
        labels = self._labels
        if isinstance(vids, np.ndarray):
            vids = vids.tolist()
        return [labels[vid] for vid in vids]

    def ids_for(self, labels: Iterable[Hashable]) -> np.ndarray:
        """Translate known labels into an ``int32`` id array."""
        id_of = self._id_of
        return np.fromiter((id_of[label] for label in labels), dtype=np.int32)

    # ------------------------------------------------------------------ #
    # Container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, label: Hashable) -> bool:
        return label in self._id_of

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._labels)

    def copy(self) -> "VertexInterner":
        """Return an independent copy (ids preserved)."""
        clone = VertexInterner()
        clone._id_of = dict(self._id_of)
        clone._labels = list(self._labels)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VertexInterner({len(self._labels)} labels)"
