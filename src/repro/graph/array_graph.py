"""Array-backed graph backend: interned ids + numpy adjacency pools.

:class:`ArrayGraph` is a drop-in alternative to
:class:`~repro.graph.graph.DynamicGraph` that stores the graph in flat
numpy arrays indexed by the dense vertex ids of a
:class:`~repro.graph.interning.VertexInterner`:

* per-vertex **edge pools** — ``int32`` neighbour-id arrays paired with
  ``float64`` weight arrays, one per direction, grown by capacity doubling
  so that appending an edge is O(1) amortized;
* an **edge-slot index** ``(src_id, dst_id) -> (out_slot, in_slot)`` giving
  O(1) duplicate detection / accumulation and O(1) edge-weight lookup;
* an **incident-weight accumulator** per vertex, maintained on every edge
  insertion/removal, so ``incident_weight`` — the dominant query of the
  benign/urgent classifier (Definition 4.1) — is O(1) instead of O(deg);
* dense vertex-prior and degree arrays for O(1) scalar queries.

The public, label-facing API matches ``DynamicGraph`` exactly (vertices are
arbitrary hashables, translated at the boundary by the interner); the
additional ``*_id`` methods expose the dense-id hot path consumed by
:mod:`repro.core.reorder` and :mod:`repro.peeling.static`.

Ordering contract
-----------------
Neighbour pools preserve insertion order, and edge removal shifts the pool
instead of swap-removing, so ``incident_items`` / ``incident_arrays_id``
enumerate edges in exactly the same order as the dict backend given the
same operation sequence.  Because the incremental engine sums weights with
numpy in enumeration order, the two backends produce *bit-identical*
peeling sequences — the property the differential tests pin down.

``incident_arrays_id`` returns views into a per-graph scratch buffer that
stay valid only until the next call on the same graph; callers that need
to retain the arrays must copy them (fancy indexing already copies).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from repro.errors import InvalidWeightError, UnknownEdgeError, UnknownVertexError
from repro.graph.graph import Vertex, populate_graph
from repro.graph.interning import VertexInterner

__all__ = ["ArrayGraph"]

_EMPTY_IDS = np.empty(0, dtype=np.int32)
_EMPTY_WEIGHTS = np.empty(0, dtype=np.float64)


class ArrayGraph:
    """A directed, weighted, dynamically updatable graph on numpy storage.

    Accepts the same constructor arguments as ``DynamicGraph``: an optional
    iterable of vertices (or ``(vertex, weight)`` pairs) and an optional
    iterable of ``(src, dst[, weight])`` edge tuples.
    """

    backend_name = "array"

    __slots__ = (
        "_interner",
        "_vw",
        "_iw",
        "_member",
        "_vertex_order",
        "_out_nbr",
        "_out_w",
        "_out_len",
        "_in_nbr",
        "_in_w",
        "_in_len",
        "_edge_slots",
        "_num_edges",
        "_total_edge_weight",
        "_scratch_ids",
        "_scratch_w",
        "_version",
        "_snapshot_cache",
        "_nat_out_nbr_p",
        "_nat_out_w_p",
        "_nat_out_len",
        "_nat_in_nbr_p",
        "_nat_in_w_p",
        "_nat_in_len",
    )

    def __init__(
        self,
        vertices: Optional[Iterable[object]] = None,
        edges: Optional[Iterable[tuple]] = None,
    ) -> None:
        self._interner = VertexInterner()
        self._vw = np.zeros(8, dtype=np.float64)
        self._iw = np.zeros(8, dtype=np.float64)
        self._member = np.zeros(8, dtype=bool)
        self._vertex_order: List[int] = []
        self._out_nbr: List[Optional[np.ndarray]] = []
        self._out_w: List[Optional[np.ndarray]] = []
        self._out_len: List[int] = []
        self._in_nbr: List[Optional[np.ndarray]] = []
        self._in_w: List[Optional[np.ndarray]] = []
        self._in_len: List[int] = []
        self._edge_slots: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self._num_edges = 0
        self._total_edge_weight = 0.0
        self._scratch_ids = np.empty(16, dtype=np.int32)
        self._scratch_w = np.empty(16, dtype=np.float64)
        self._version = 0
        self._snapshot_cache = None
        # Native pointer tables (repro.native): per-vertex pool addresses
        # and live lengths, built lazily by native_adjacency() and then
        # maintained incrementally.  ``_nat_out_len is None`` == disabled.
        self._nat_out_nbr_p: Optional[np.ndarray] = None
        self._nat_out_w_p: Optional[np.ndarray] = None
        self._nat_out_len: Optional[np.ndarray] = None
        self._nat_in_nbr_p: Optional[np.ndarray] = None
        self._nat_in_w_p: Optional[np.ndarray] = None
        self._nat_in_len: Optional[np.ndarray] = None
        populate_graph(self, vertices, edges)

    # ------------------------------------------------------------------ #
    # Storage growth
    # ------------------------------------------------------------------ #
    def _ensure_vid(self, vid: int) -> None:
        """Grow the per-vertex arrays/pools to cover dense id ``vid``."""
        cap = len(self._vw)
        if vid >= cap:
            new_cap = max(16, cap * 2, vid + 1)
            for name in ("_vw", "_iw"):
                old = getattr(self, name)
                grown = np.zeros(new_cap, dtype=np.float64)
                grown[: len(old)] = old
                setattr(self, name, grown)
            member = np.zeros(new_cap, dtype=bool)
            member[: len(self._member)] = self._member
            self._member = member
        while len(self._out_len) <= vid:
            self._out_nbr.append(None)
            self._out_w.append(None)
            self._out_len.append(0)
            self._in_nbr.append(None)
            self._in_w.append(None)
            self._in_len.append(0)
        if self._nat_out_len is not None and len(self._out_len) > len(self._nat_out_len):
            self._nat_grow(len(self._out_len))

    def _pool_append(self, out_dir: bool, vid: int, nbr_id: int, weight: float) -> int:
        """Append one edge to a pool with capacity doubling; return its slot.

        When the native pointer tables are live, a pool reallocation
        refreshes the vertex's pool addresses and every append its live
        length, so the tables always describe the current pools.
        """
        if out_dir:
            nbrs, wgts, lens = self._out_nbr, self._out_w, self._out_len
        else:
            nbrs, wgts, lens = self._in_nbr, self._in_w, self._in_len
        arr = nbrs[vid]
        n = lens[vid]
        realloc = arr is None or n == len(arr)
        if realloc:
            new_cap = max(4, 2 * n)
            grown_n = np.empty(new_cap, dtype=np.int32)
            grown_w = np.empty(new_cap, dtype=np.float64)
            if arr is not None:
                grown_n[:n] = arr[:n]
                grown_w[:n] = wgts[vid][:n]
            nbrs[vid] = grown_n
            wgts[vid] = grown_w
            arr = grown_n
        arr[n] = nbr_id
        wgts[vid][n] = weight
        lens[vid] = n + 1
        if self._nat_out_len is not None:
            if out_dir:
                if realloc:
                    self._nat_out_nbr_p[vid] = arr.ctypes.data
                    self._nat_out_w_p[vid] = wgts[vid].ctypes.data
                self._nat_out_len[vid] = n + 1
            else:
                if realloc:
                    self._nat_in_nbr_p[vid] = arr.ctypes.data
                    self._nat_in_w_p[vid] = wgts[vid].ctypes.data
                self._nat_in_len[vid] = n + 1
        return n

    def _require_member(self, vertex: Vertex) -> int:
        """Translate a label to its id, raising if the vertex is unknown."""
        vid = self._interner.get_id(vertex)
        if vid < 0 or not self._member[vid]:
            raise UnknownVertexError(vertex)
        return vid

    # ------------------------------------------------------------------ #
    # Vertices
    # ------------------------------------------------------------------ #
    def add_vertex(self, vertex: Vertex, weight: float = 0.0) -> None:
        """Add ``vertex`` with suspiciousness ``weight`` (idempotent).

        Mirrors ``DynamicGraph.add_vertex``: re-adding only ever raises the
        stored prior.
        """
        if weight < 0:
            raise InvalidWeightError(f"vertex weight must be >= 0, got {weight} for {vertex!r}")
        vid = self._interner.intern(vertex)
        self._ensure_vid(vid)
        if self._member[vid]:
            if weight > self._vw[vid]:
                self._vw[vid] = float(weight)
                self._version += 1
                self._snapshot_cache = None
            return
        self._member[vid] = True
        self._vw[vid] = float(weight)
        self._vertex_order.append(vid)
        self._version += 1
        self._snapshot_cache = None

    def set_vertex_weight(self, vertex: Vertex, weight: float) -> None:
        """Overwrite the suspiciousness prior of an existing vertex."""
        vid = self._require_member(vertex)
        if weight < 0:
            raise InvalidWeightError(f"vertex weight must be >= 0, got {weight} for {vertex!r}")
        self._vw[vid] = float(weight)
        self._version += 1
        self._snapshot_cache = None

    def has_vertex(self, vertex: Vertex) -> bool:
        """Return whether ``vertex`` is part of the graph."""
        vid = self._interner.get_id(vertex)
        return vid >= 0 and bool(self._member[vid])

    def vertex_weight(self, vertex: Vertex) -> float:
        """Return the suspiciousness prior ``a_i`` of ``vertex``."""
        return float(self._vw[self._require_member(vertex)])

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all vertices in insertion order."""
        label_of = self._interner._labels
        return (label_of[vid] for vid in self._vertex_order)

    def num_vertices(self) -> int:
        """Return ``|V|``."""
        return len(self._vertex_order)

    def total_vertex_weight(self) -> float:
        """Return the sum of all vertex suspiciousness priors."""
        if not self._vertex_order:
            return 0.0
        return float(self._vw[np.asarray(self._vertex_order, dtype=np.int64)].sum())

    # ------------------------------------------------------------------ #
    # Edges
    # ------------------------------------------------------------------ #
    def add_edge(self, src: Vertex, dst: Vertex, weight: float = 1.0) -> float:
        """Insert the directed edge ``(src, dst)``, accumulating duplicates.

        Missing endpoints are created with a zero prior; returns the new
        total weight of the edge — the same contract as the dict backend.
        """
        if weight <= 0:
            raise InvalidWeightError(f"edge weight must be > 0, got {weight} for ({src!r}, {dst!r})")
        if src == dst:
            raise InvalidWeightError(f"self loops are not part of the transaction model: {src!r}")
        if not self.has_vertex(src):
            self.add_vertex(src)
        if not self.has_vertex(dst):
            self.add_vertex(dst)
        sid = self._interner.id_of(src)
        did = self._interner.id_of(dst)
        weight = float(weight)
        key = (sid, did)
        slots = self._edge_slots.get(key)
        if slots is not None:
            out_slot, in_slot = slots
            self._out_w[sid][out_slot] += weight
            self._in_w[did][in_slot] += weight
            new_weight = float(self._out_w[sid][out_slot])
        else:
            out_slot = self._pool_append(True, sid, did, weight)
            in_slot = self._pool_append(False, did, sid, weight)
            self._edge_slots[key] = (out_slot, in_slot)
            self._num_edges += 1
            new_weight = weight
        self._iw[sid] += weight
        self._iw[did] += weight
        self._total_edge_weight += weight
        self._version += 1
        self._snapshot_cache = None
        return new_weight

    def remove_edge(self, src: Vertex, dst: Vertex) -> float:
        """Remove the directed edge ``(src, dst)`` entirely; return its weight."""
        sid = self._interner.get_id(src)
        did = self._interner.get_id(dst)
        slots = self._edge_slots.get((sid, did)) if sid >= 0 and did >= 0 else None
        if slots is None:
            raise UnknownEdgeError(src, dst)
        out_slot, in_slot = slots
        weight = float(self._out_w[sid][out_slot])
        self._pool_remove(sid, did, out_slot, in_slot)
        del self._edge_slots[(sid, did)]
        self._num_edges -= 1
        self._total_edge_weight -= weight
        self._iw[sid] -= weight
        self._iw[did] -= weight
        self._version += 1
        self._snapshot_cache = None
        return weight

    def _pool_remove(self, sid: int, did: int, out_slot: int, in_slot: int) -> None:
        """Shift-remove one edge from both pools, keeping enumeration order.

        Later edges in each pool move one slot down, so their entries in
        the edge-slot index are rewritten; removal is O(deg), which keeps
        the (hot) insertion path free of indirection.
        """
        slots = self._edge_slots
        out_nbr, out_w, n_out = self._out_nbr[sid], self._out_w[sid], self._out_len[sid]
        out_nbr[out_slot : n_out - 1] = out_nbr[out_slot + 1 : n_out].copy()
        out_w[out_slot : n_out - 1] = out_w[out_slot + 1 : n_out].copy()
        self._out_len[sid] = n_out - 1
        for moved in out_nbr[out_slot : n_out - 1].tolist():
            key = (sid, moved)
            o_slot, i_slot = slots[key]
            slots[key] = (o_slot - 1, i_slot)
        in_nbr, in_w, n_in = self._in_nbr[did], self._in_w[did], self._in_len[did]
        in_nbr[in_slot : n_in - 1] = in_nbr[in_slot + 1 : n_in].copy()
        in_w[in_slot : n_in - 1] = in_w[in_slot + 1 : n_in].copy()
        self._in_len[did] = n_in - 1
        for moved in in_nbr[in_slot : n_in - 1].tolist():
            key = (moved, did)
            o_slot, i_slot = slots[key]
            slots[key] = (o_slot, i_slot - 1)
        if self._nat_out_len is not None:
            # Shift-removal edits the pools in place: only the lengths move.
            self._nat_out_len[sid] = self._out_len[sid]
            self._nat_in_len[did] = self._in_len[did]

    def has_edge(self, src: Vertex, dst: Vertex) -> bool:
        """Return whether the directed edge ``(src, dst)`` exists."""
        sid = self._interner.get_id(src)
        did = self._interner.get_id(dst)
        return sid >= 0 and did >= 0 and (sid, did) in self._edge_slots

    def edge_weight(self, src: Vertex, dst: Vertex) -> float:
        """Return the accumulated weight ``c_ij`` of the directed edge."""
        sid = self._interner.get_id(src)
        did = self._interner.get_id(dst)
        slots = self._edge_slots.get((sid, did)) if sid >= 0 and did >= 0 else None
        if slots is None:
            raise UnknownEdgeError(src, dst)
        return float(self._out_w[sid][slots[0]])

    def edges(self) -> Iterator[Tuple[Vertex, Vertex, float]]:
        """Iterate over ``(src, dst, weight)`` triples in insertion order."""
        labels = self._interner._labels
        for sid in self._vertex_order:
            nbrs = self._out_nbr[sid]
            wgts = self._out_w[sid]
            src = labels[sid]
            for slot in range(self._out_len[sid]):
                yield src, labels[nbrs[slot]], float(wgts[slot])

    def num_edges(self) -> int:
        """Return ``|E|`` (unique directed edges)."""
        return self._num_edges

    def total_edge_weight(self) -> float:
        """Return the sum of all edge weights."""
        return self._total_edge_weight

    # ------------------------------------------------------------------ #
    # Neighbourhood accessors (label-facing)
    # ------------------------------------------------------------------ #
    def out_neighbors(self, vertex: Vertex) -> Mapping[Vertex, float]:
        """Return a mapping ``{dst: weight}`` of outgoing edges (built on demand)."""
        vid = self._require_member(vertex)
        labels = self._interner._labels
        nbrs, wgts, n = self._out_nbr[vid], self._out_w[vid], self._out_len[vid]
        return {labels[nbrs[i]]: float(wgts[i]) for i in range(n)}

    def in_neighbors(self, vertex: Vertex) -> Mapping[Vertex, float]:
        """Return a mapping ``{src: weight}`` of incoming edges (built on demand)."""
        vid = self._require_member(vertex)
        labels = self._interner._labels
        nbrs, wgts, n = self._in_nbr[vid], self._in_w[vid], self._in_len[vid]
        return {labels[nbrs[i]]: float(wgts[i]) for i in range(n)}

    def neighbors(self, vertex: Vertex) -> Iterator[Vertex]:
        """Iterate over the (undirected) neighbour set ``N(u)``.

        Absent vertices yield nothing, matching the dict backend.
        """
        vid = self._interner.get_id(vertex)
        if vid < 0 or not self._member[vid]:
            return
        labels = self._interner._labels
        seen = set()
        nbrs, n = self._out_nbr[vid], self._out_len[vid]
        for i in range(n):
            nbr = int(nbrs[i])
            seen.add(nbr)
            yield labels[nbr]
        nbrs, n = self._in_nbr[vid], self._in_len[vid]
        for i in range(n):
            nbr = int(nbrs[i])
            if nbr not in seen:
                yield labels[nbr]

    def incident_items(self, vertex: Vertex) -> Iterator[Tuple[Vertex, float]]:
        """Iterate over ``(neighbour, weight)`` pairs of all incident edges."""
        vid = self._interner.get_id(vertex)
        if vid < 0 or not self._member[vid]:
            return
        labels = self._interner._labels
        nbrs, wgts, n = self._out_nbr[vid], self._out_w[vid], self._out_len[vid]
        for i in range(n):
            yield labels[nbrs[i]], float(wgts[i])
        nbrs, wgts, n = self._in_nbr[vid], self._in_w[vid], self._in_len[vid]
        for i in range(n):
            yield labels[nbrs[i]], float(wgts[i])

    def out_degree(self, vertex: Vertex) -> int:
        """Return the number of outgoing edges of ``vertex``."""
        return self._out_len[self._require_member(vertex)]

    def in_degree(self, vertex: Vertex) -> int:
        """Return the number of incoming edges of ``vertex``."""
        return self._in_len[self._require_member(vertex)]

    def degree(self, vertex: Vertex) -> int:
        """Return the total degree (in + out) of ``vertex``."""
        vid = self._require_member(vertex)
        return self._out_len[vid] + self._in_len[vid]

    def incident_weight(self, vertex: Vertex) -> float:
        """Return the summed incident weight of ``vertex`` — O(1).

        Maintained incrementally on every edge mutation instead of being
        recomputed by a scan, which is what makes the benign/urgent test of
        Definition 4.1 constant-time on this backend.  Absent vertices
        answer ``0.0``, matching the dict backend.
        """
        vid = self._interner.get_id(vertex)
        if vid < 0 or not self._member[vid]:
            return 0.0
        return float(self._iw[vid])

    # ------------------------------------------------------------------ #
    # Dense-id (interned) accessors — the GraphBackend hot-path surface
    # ------------------------------------------------------------------ #
    @property
    def interner(self) -> VertexInterner:
        """The label ↔ dense-id interner owned by this graph."""
        return self._interner

    def vertex_ids(self) -> np.ndarray:
        """Return the dense ids of all vertices, in insertion order."""
        return np.asarray(self._vertex_order, dtype=np.int32)

    def has_vertex_id(self, vid: int) -> bool:
        """Return whether the vertex with dense id ``vid`` is in the graph."""
        return 0 <= vid < len(self._member) and bool(self._member[vid])

    def vertex_weight_id(self, vid: int) -> float:
        """Return the prior ``a_i`` of the vertex with dense id ``vid``."""
        return float(self._vw[vid])

    def degree_id(self, vid: int) -> int:
        """Return the total degree of the vertex with dense id ``vid``."""
        if vid >= len(self._out_len):
            return 0
        return self._out_len[vid] + self._in_len[vid]

    def incident_weight_id(self, vid: int) -> float:
        """Return the summed incident weight of the vertex with id ``vid``."""
        return float(self._iw[vid])

    def vertex_weight_ids(self, vids: np.ndarray) -> np.ndarray:
        """Return the priors ``a_i`` of a whole id array in one gather."""
        return self._vw[np.asarray(vids, dtype=np.int64)]

    def incident_weight_ids(self, vids: np.ndarray) -> np.ndarray:
        """Return the maintained incident weights of a whole id array."""
        return self._iw[np.asarray(vids, dtype=np.int64)]

    def member_degrees(self) -> np.ndarray:
        """Return the total degrees of all vertices, in insertion order.

        One vectorised gather over the pool-length lists — O(|V|) with no
        edge traffic, used by :mod:`repro.graph.stats`.
        """
        order = np.asarray(self._vertex_order, dtype=np.int64)
        out_lens = np.asarray(self._out_len, dtype=np.int64)
        in_lens = np.asarray(self._in_len, dtype=np.int64)
        return out_lens[order] + in_lens[order]

    def incident_arrays_id(self, vid: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(neighbor_ids, weights)`` views over all incident edges.

        Out-edges first, then in-edges, in pool order.  The views alias a
        per-graph scratch buffer and are only valid until the next call on
        this graph; copy (or fancy-index) to retain.
        """
        if vid >= len(self._out_len):
            return _EMPTY_IDS, _EMPTY_WEIGHTS
        n_out = self._out_len[vid]
        n_in = self._in_len[vid]
        n = n_out + n_in
        if n == 0:
            return _EMPTY_IDS, _EMPTY_WEIGHTS
        if n > len(self._scratch_ids):
            cap = max(2 * len(self._scratch_ids), n)
            self._scratch_ids = np.empty(cap, dtype=np.int32)
            self._scratch_w = np.empty(cap, dtype=np.float64)
        ids = self._scratch_ids
        weights = self._scratch_w
        if n_out:
            ids[:n_out] = self._out_nbr[vid][:n_out]
            weights[:n_out] = self._out_w[vid][:n_out]
        if n_in:
            ids[n_out:n] = self._in_nbr[vid][:n_in]
            weights[n_out:n] = self._in_w[vid][:n_in]
        return ids[:n], weights[:n]

    # ------------------------------------------------------------------ #
    # Native pointer tables (repro.native reorder kernel)
    # ------------------------------------------------------------------ #
    def native_adjacency(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
        """Return the pool address/length tables the C reorder kernel walks.

        ``(out_nbr_ptrs, out_w_ptrs, out_lens, in_nbr_ptrs, in_w_ptrs,
        in_lens, pooled)`` — ``uint64`` pool base addresses and ``int64``
        live lengths per dense id, valid for ids ``< pooled``.  Built once
        (O(pooled)) on first use, then maintained incrementally by the
        edge mutation paths, so per-update reorders pay O(1) here.  A
        vertex without an allocated pool has address 0 and length 0; the
        kernel never dereferences a zero-length pool.
        """
        pooled = len(self._out_len)
        if self._nat_out_len is None or len(self._nat_out_len) < pooled:
            self._nat_build(pooled)
        return (
            self._nat_out_nbr_p,
            self._nat_out_w_p,
            self._nat_out_len,
            self._nat_in_nbr_p,
            self._nat_in_w_p,
            self._nat_in_len,
            pooled,
        )

    def _nat_grow(self, pooled: int) -> None:
        """Grow the live pointer tables to cover ``pooled`` ids (zero-filled)."""
        cap = max(2 * len(self._nat_out_len), pooled)
        for name in (
            "_nat_out_nbr_p",
            "_nat_out_w_p",
            "_nat_out_len",
            "_nat_in_nbr_p",
            "_nat_in_w_p",
            "_nat_in_len",
        ):
            old = getattr(self, name)
            grown = np.zeros(cap, dtype=old.dtype)
            grown[: len(old)] = old
            setattr(self, name, grown)

    def _nat_build(self, pooled: int) -> None:
        """(Re)build the pointer tables from scratch over all pools."""
        cap = max(16, 2 * pooled)
        self._nat_out_nbr_p = np.zeros(cap, dtype=np.uint64)
        self._nat_out_w_p = np.zeros(cap, dtype=np.uint64)
        self._nat_out_len = np.zeros(cap, dtype=np.int64)
        self._nat_in_nbr_p = np.zeros(cap, dtype=np.uint64)
        self._nat_in_w_p = np.zeros(cap, dtype=np.uint64)
        self._nat_in_len = np.zeros(cap, dtype=np.int64)
        for vid in range(pooled):
            arr = self._out_nbr[vid]
            if arr is not None:
                self._nat_out_nbr_p[vid] = arr.ctypes.data
                self._nat_out_w_p[vid] = self._out_w[vid].ctypes.data
                self._nat_out_len[vid] = self._out_len[vid]
            arr = self._in_nbr[vid]
            if arr is not None:
                self._nat_in_nbr_p[vid] = arr.ctypes.data
                self._nat_in_w_p[vid] = self._in_w[vid].ctypes.data
                self._nat_in_len[vid] = self._in_len[vid]

    # ------------------------------------------------------------------ #
    # Snapshot export
    # ------------------------------------------------------------------ #
    @property
    def version(self) -> int:
        """Monotone mutation counter (bumped by every structural change)."""
        return self._version

    def freeze(self) -> "CsrSnapshot":
        """Freeze the mutable pools into an immutable CSR snapshot.

        O(|V| + |E|): the offset arrays are a cumsum over the pool lengths
        and the neighbor/weight arrays one concatenation plus a vectorised
        tail mask, preserving pool (= enumeration) order exactly — which
        is what makes the CSR static peel bit-identical to the heap peel.
        The returned :class:`~repro.graph.csr.CsrSnapshot` is decoupled
        from this graph; use :meth:`CsrSnapshot.is_stale` to detect later
        mutations (every mutation bumps :attr:`version`).

        Because snapshots are immutable, the last one is cached and
        returned for free until the next mutation — consecutive read-path
        consumers (enumeration, stats, the exact solver, ``peel_csr``)
        share a single freeze.
        """
        cached = self._snapshot_cache
        if cached is not None and cached.source_version == self._version:
            return cached

        from repro.graph.csr import CsrSnapshot, _frozen

        size = len(self._interner)
        pooled = len(self._out_len)  # ids with allocated pools (<= size)

        def direction(nbr_pools, w_pools, lens):
            counts = np.zeros(size, dtype=np.int64)
            if pooled:
                counts[:pooled] = lens
            offsets = np.concatenate(([0], np.cumsum(counts)))
            # Concatenate the raw pools (capacity included) and drop the
            # unused tails with one vectorised mask — cheaper than
            # materialising a trimmed view per vertex.
            live = [a for a in nbr_pools if a is not None]
            if not live:
                return (
                    _frozen(offsets),
                    _frozen(np.empty(0, np.int32)),
                    _frozen(np.empty(0, np.float64)),
                )
            caps = np.fromiter(
                (0 if a is None else len(a) for a in nbr_pools),
                dtype=np.int64,
                count=len(nbr_pools),
            )
            full_nbr = np.concatenate(live)
            full_w = np.concatenate([a for a in w_pools if a is not None])
            prefix = np.concatenate(([0], np.cumsum(caps)[:-1]))
            keep = (
                np.arange(int(caps.sum()), dtype=np.int64) - np.repeat(prefix, caps)
            ) < np.repeat(counts[:pooled], caps)
            return _frozen(offsets), _frozen(full_nbr[keep]), _frozen(full_w[keep])

        out_offsets, out_neighbors, out_weights = direction(
            self._out_nbr, self._out_w, self._out_len
        )
        in_offsets, in_neighbors, in_weights = direction(
            self._in_nbr, self._in_w, self._in_len
        )
        vertex_weights = np.zeros(size, dtype=np.float64)
        member = np.zeros(size, dtype=bool)
        covered = min(size, len(self._vw))
        vertex_weights[:covered] = self._vw[:covered]
        member[:covered] = self._member[:covered]
        snapshot = CsrSnapshot(
            order=_frozen(np.asarray(self._vertex_order, dtype=np.int32)),
            member=_frozen(member),
            vertex_weights=_frozen(vertex_weights),
            out_offsets=out_offsets,
            out_neighbors=out_neighbors,
            out_weights=out_weights,
            in_offsets=in_offsets,
            in_neighbors=in_neighbors,
            in_weights=in_weights,
            total_edge_weight=self._total_edge_weight,
            source_version=self._version,
            labels=list(self._interner._labels),
        )
        self._snapshot_cache = snapshot
        return snapshot

    # ------------------------------------------------------------------ #
    # Whole-graph helpers
    # ------------------------------------------------------------------ #
    def total_suspiciousness(self) -> float:
        """Return ``f(V)``: total vertex plus edge suspiciousness."""
        return self.total_vertex_weight() + self._total_edge_weight

    def copy(self) -> "ArrayGraph":
        """Return a deep copy of the graph (weights, pools and ids included)."""
        clone = ArrayGraph()
        clone._interner = self._interner.copy()
        clone._vw = self._vw.copy()
        clone._iw = self._iw.copy()
        clone._member = self._member.copy()
        clone._vertex_order = list(self._vertex_order)
        clone._out_nbr = [a.copy() if a is not None else None for a in self._out_nbr]
        clone._out_w = [a.copy() if a is not None else None for a in self._out_w]
        clone._out_len = list(self._out_len)
        clone._in_nbr = [a.copy() if a is not None else None for a in self._in_nbr]
        clone._in_w = [a.copy() if a is not None else None for a in self._in_w]
        clone._in_len = list(self._in_len)
        clone._edge_slots = dict(self._edge_slots)
        clone._num_edges = self._num_edges
        clone._total_edge_weight = self._total_edge_weight
        clone._version = self._version
        # Snapshots are immutable, so sharing the cache across copies is
        # safe: either copy invalidates it with its first mutation.
        clone._snapshot_cache = self._snapshot_cache
        return clone

    def __contains__(self, vertex: Vertex) -> bool:
        return self.has_vertex(vertex)

    def __len__(self) -> int:
        return len(self._vertex_order)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ArrayGraph(|V|={self.num_vertices()}, |E|={self.num_edges()}, "
            f"f(V)={self.total_suspiciousness():.3f})"
        )

    def __eq__(self, other: object) -> bool:
        if not hasattr(other, "vertices") or not hasattr(other, "out_neighbors"):
            return NotImplemented
        mine = {v: self.vertex_weight(v) for v in self.vertices()}
        theirs = {v: other.vertex_weight(v) for v in other.vertices()}
        if mine != theirs:
            return False
        return all(dict(self.out_neighbors(v)) == dict(other.out_neighbors(v)) for v in mine)

    def __hash__(self) -> int:  # pragma: no cover - graphs are mutable
        raise TypeError("ArrayGraph is mutable and therefore unhashable")

    @classmethod
    def from_edges(cls, edges: Iterable[tuple]) -> "ArrayGraph":
        """Build a graph from an iterable of edge tuples."""
        return cls(edges=edges)

    @classmethod
    def from_graph(cls, graph) -> "ArrayGraph":
        """Replay another backend's vertices and edges into an array graph.

        Vertices are replayed in insertion order, so the dense ids (and
        with them the peeling tie-break order) match the source graph.
        """
        clone = cls()
        for vertex in graph.vertices():
            clone.add_vertex(vertex, graph.vertex_weight(vertex))
        for src, dst, weight in graph.edges():
            clone.add_edge(src, dst, weight)
        return clone
