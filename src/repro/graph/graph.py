"""The dynamic weighted directed graph used throughout the reproduction.

The paper models a transaction graph ``G = (V, E)`` where every vertex
``u_i`` carries a non-negative *suspiciousness* weight ``a_i`` and every
edge ``(u_i, u_j)`` carries a positive suspiciousness weight ``c_ij``
(Section 2.1).  The graph evolves by edge insertion (single or batched);
Appendix C additionally considers edge deletion for outdated transactions.

:class:`DynamicGraph` implements exactly this model with an adjacency-list
representation (a dict of dicts per direction), which is what the original
C++ implementation uses as well (Listing 1: "Spade uses the adjacency list
to store the graph").

Design notes
------------
* Vertices are arbitrary hashable identifiers (ints or strings in practice).
* The graph is *directed*; peeling weights (Equation 2) sum both in- and
  out-edges, which the convenience accessors expose as
  :meth:`DynamicGraph.incident_weight`.
* Inserting an edge that already exists accumulates its weight.  Transaction
  graphs frequently contain repeated (customer, merchant) pairs and the
  density metrics of the paper only ever consume the summed weight.
* Weight constraints from Property 3.1 (``a_i >= 0``, ``c_ij > 0``) are
  enforced eagerly so that incremental maintenance can rely on them.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Mapping, Optional, Tuple

import numpy as np

from repro.errors import InvalidWeightError, UnknownEdgeError, UnknownVertexError
from repro.graph.interning import VertexInterner

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]

__all__ = ["Vertex", "Edge", "DynamicGraph", "populate_graph"]


def populate_graph(
    graph,
    vertices: Optional[Iterable[object]] = None,
    edges: Optional[Iterable[tuple]] = None,
) -> None:
    """Apply the constructor arguments shared by every graph backend.

    ``vertices`` may mix bare labels and ``(vertex, weight)`` pairs;
    ``edges`` are ``(src, dst)`` or ``(src, dst, weight)`` tuples.  Kept
    in one place so all backends accept exactly the same input shapes.
    """
    if vertices is not None:
        for item in vertices:
            if isinstance(item, tuple) and len(item) == 2 and isinstance(item[1], (int, float)):
                graph.add_vertex(item[0], float(item[1]))
            else:
                graph.add_vertex(item)
    if edges is not None:
        for item in edges:
            if len(item) == 2:
                graph.add_edge(item[0], item[1])
            elif len(item) == 3:
                graph.add_edge(item[0], item[1], float(item[2]))
            else:
                raise ValueError(f"edge tuple must have 2 or 3 elements, got {item!r}")


class DynamicGraph:
    """A directed, weighted, dynamically updatable graph.

    Parameters
    ----------
    vertices:
        Optional iterable of vertices (or ``(vertex, weight)`` pairs) to add
        up front.
    edges:
        Optional iterable of ``(src, dst)`` or ``(src, dst, weight)`` tuples.
        Unweighted edges default to weight ``1.0``.

    Examples
    --------
    >>> g = DynamicGraph()
    >>> g.add_edge("alice", "shop", 2.0)
    2.0
    >>> g.add_edge("bob", "shop")
    1.0
    >>> sorted(g.vertices())
    ['alice', 'bob', 'shop']
    >>> g.total_edge_weight()
    3.0
    """

    __slots__ = (
        "_out",
        "_in",
        "_vertex_weight",
        "_num_edges",
        "_total_edge_weight",
        "_interner",
    )

    #: Backend name used by :mod:`repro.graph.backend` to select this class.
    backend_name = "dict"

    def __init__(
        self,
        vertices: Optional[Iterable[object]] = None,
        edges: Optional[Iterable[tuple]] = None,
    ) -> None:
        self._out: Dict[Vertex, Dict[Vertex, float]] = {}
        self._in: Dict[Vertex, Dict[Vertex, float]] = {}
        self._vertex_weight: Dict[Vertex, float] = {}
        self._num_edges: int = 0
        self._total_edge_weight: float = 0.0
        self._interner = VertexInterner()
        populate_graph(self, vertices, edges)

    # ------------------------------------------------------------------ #
    # Vertices
    # ------------------------------------------------------------------ #
    def add_vertex(self, vertex: Vertex, weight: float = 0.0) -> None:
        """Add ``vertex`` with suspiciousness ``weight`` (idempotent).

        Re-adding an existing vertex updates its weight only when a strictly
        larger weight is supplied; this mirrors the "side information sets a
        prior" behaviour of Fraudar where priors only ever accumulate.
        """
        if weight < 0:
            raise InvalidWeightError(f"vertex weight must be >= 0, got {weight} for {vertex!r}")
        if vertex in self._vertex_weight:
            if weight > self._vertex_weight[vertex]:
                self._vertex_weight[vertex] = float(weight)
            return
        self._vertex_weight[vertex] = float(weight)
        self._out[vertex] = {}
        self._in[vertex] = {}
        self._interner.intern(vertex)

    def set_vertex_weight(self, vertex: Vertex, weight: float) -> None:
        """Overwrite the suspiciousness prior of an existing vertex."""
        if vertex not in self._vertex_weight:
            raise UnknownVertexError(vertex)
        if weight < 0:
            raise InvalidWeightError(f"vertex weight must be >= 0, got {weight} for {vertex!r}")
        self._vertex_weight[vertex] = float(weight)

    def has_vertex(self, vertex: Vertex) -> bool:
        """Return whether ``vertex`` is part of the graph."""
        return vertex in self._vertex_weight

    def vertex_weight(self, vertex: Vertex) -> float:
        """Return the suspiciousness prior ``a_i`` of ``vertex``."""
        try:
            return self._vertex_weight[vertex]
        except KeyError:
            raise UnknownVertexError(vertex) from None

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all vertices."""
        return iter(self._vertex_weight)

    def num_vertices(self) -> int:
        """Return ``|V|``."""
        return len(self._vertex_weight)

    def total_vertex_weight(self) -> float:
        """Return the sum of all vertex suspiciousness priors."""
        return sum(self._vertex_weight.values())

    # ------------------------------------------------------------------ #
    # Edges
    # ------------------------------------------------------------------ #
    def add_edge(self, src: Vertex, dst: Vertex, weight: float = 1.0) -> float:
        """Insert the directed edge ``(src, dst)`` with suspiciousness ``weight``.

        Missing endpoints are created with a zero prior.  If the edge already
        exists its weight is accumulated, matching how repeated transactions
        between the same customer/merchant pair add suspiciousness.

        Returns the *new* total weight of the edge.
        """
        if weight <= 0:
            raise InvalidWeightError(f"edge weight must be > 0, got {weight} for ({src!r}, {dst!r})")
        if src == dst:
            raise InvalidWeightError(f"self loops are not part of the transaction model: {src!r}")
        if src not in self._vertex_weight:
            self.add_vertex(src)
        if dst not in self._vertex_weight:
            self.add_vertex(dst)
        out_src = self._out[src]
        if dst in out_src:
            out_src[dst] += float(weight)
            self._in[dst][src] += float(weight)
        else:
            out_src[dst] = float(weight)
            self._in[dst][src] = float(weight)
            self._num_edges += 1
        self._total_edge_weight += float(weight)
        return out_src[dst]

    def remove_edge(self, src: Vertex, dst: Vertex) -> float:
        """Remove the directed edge ``(src, dst)`` entirely and return its weight.

        Used by the Appendix C.1 extension (deletion of outdated
        transactions) and by dense-subgraph enumeration.
        """
        if src not in self._out or dst not in self._out[src]:
            raise UnknownEdgeError(src, dst)
        weight = self._out[src].pop(dst)
        del self._in[dst][src]
        self._num_edges -= 1
        self._total_edge_weight -= weight
        return weight

    def has_edge(self, src: Vertex, dst: Vertex) -> bool:
        """Return whether the directed edge ``(src, dst)`` exists."""
        return src in self._out and dst in self._out[src]

    def edge_weight(self, src: Vertex, dst: Vertex) -> float:
        """Return the accumulated weight ``c_ij`` of the directed edge."""
        try:
            return self._out[src][dst]
        except KeyError:
            raise UnknownEdgeError(src, dst) from None

    def edges(self) -> Iterator[Tuple[Vertex, Vertex, float]]:
        """Iterate over ``(src, dst, weight)`` triples."""
        for src, nbrs in self._out.items():
            for dst, weight in nbrs.items():
                yield src, dst, weight

    def num_edges(self) -> int:
        """Return ``|E|`` (unique directed edges)."""
        return self._num_edges

    def total_edge_weight(self) -> float:
        """Return the sum of all edge weights."""
        return self._total_edge_weight

    # ------------------------------------------------------------------ #
    # Neighbourhood accessors
    # ------------------------------------------------------------------ #
    def out_neighbors(self, vertex: Vertex) -> Mapping[Vertex, float]:
        """Return a read-only mapping ``{dst: weight}`` of outgoing edges."""
        try:
            return self._out[vertex]
        except KeyError:
            raise UnknownVertexError(vertex) from None

    def in_neighbors(self, vertex: Vertex) -> Mapping[Vertex, float]:
        """Return a read-only mapping ``{src: weight}`` of incoming edges."""
        try:
            return self._in[vertex]
        except KeyError:
            raise UnknownVertexError(vertex) from None

    def neighbors(self, vertex: Vertex) -> Iterator[Vertex]:
        """Iterate over the (undirected) neighbour set ``N(u)``."""
        seen = set()
        for nbr in self._out.get(vertex, ()):  # noqa: SIM118 - dict keys iteration
            seen.add(nbr)
            yield nbr
        for nbr in self._in.get(vertex, ()):
            if nbr not in seen:
                yield nbr

    def incident_items(self, vertex: Vertex) -> Iterator[Tuple[Vertex, float]]:
        """Iterate over ``(neighbour, weight)`` pairs of *all* incident edges.

        A neighbour connected in both directions is yielded twice (once per
        edge), because the peeling weight of Equation 2 sums both directions.
        """
        for nbr, weight in self._out.get(vertex, {}).items():
            yield nbr, weight
        for nbr, weight in self._in.get(vertex, {}).items():
            yield nbr, weight

    def out_degree(self, vertex: Vertex) -> int:
        """Return the number of outgoing edges of ``vertex``."""
        try:
            return len(self._out[vertex])
        except KeyError:
            raise UnknownVertexError(vertex) from None

    def in_degree(self, vertex: Vertex) -> int:
        """Return the number of incoming edges of ``vertex``."""
        try:
            return len(self._in[vertex])
        except KeyError:
            raise UnknownVertexError(vertex) from None

    def degree(self, vertex: Vertex) -> int:
        """Return the total degree (in + out) of ``vertex``."""
        return self.out_degree(vertex) + self.in_degree(vertex)

    def incident_weight(self, vertex: Vertex) -> float:
        """Return the summed weight of all edges incident to ``vertex``.

        Together with the vertex prior this is the peeling weight of the
        vertex with respect to the full vertex set, ``w_u(S_0)``.
        """
        total = sum(self._out.get(vertex, {}).values())
        total += sum(self._in.get(vertex, {}).values())
        return total

    # ------------------------------------------------------------------ #
    # Dense-id (interned) accessors — the GraphBackend hot-path surface
    # ------------------------------------------------------------------ #
    @property
    def interner(self) -> VertexInterner:
        """The label ↔ dense-id interner owned by this graph."""
        return self._interner

    def vertex_ids(self) -> np.ndarray:
        """Return the dense ids of all vertices, in graph insertion order."""
        id_of = self._interner._id_of
        return np.fromiter(
            (id_of[v] for v in self._vertex_weight),
            dtype=np.int32,
            count=len(self._vertex_weight),
        )

    def has_vertex_id(self, vid: int) -> bool:
        """Return whether the vertex with dense id ``vid`` is in the graph."""
        labels = self._interner._labels
        return 0 <= vid < len(labels) and labels[vid] in self._vertex_weight

    def vertex_weight_id(self, vid: int) -> float:
        """Return the prior ``a_i`` of the vertex with dense id ``vid``."""
        return self.vertex_weight(self._interner.label_of(vid))

    def degree_id(self, vid: int) -> int:
        """Return the total degree of the vertex with dense id ``vid``."""
        return self.degree(self._interner.label_of(vid))

    def incident_weight_id(self, vid: int) -> float:
        """Return the summed incident weight of the vertex with id ``vid``."""
        return self.incident_weight(self._interner.label_of(vid))

    def incident_arrays_id(self, vid: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(neighbor_ids, weights)`` arrays of all incident edges.

        Out-edges come first (in insertion order), then in-edges, matching
        :meth:`incident_items`.  A neighbour connected in both directions
        appears twice.  Per the :class:`~repro.graph.backend.GraphBackend`
        contract the arrays are only guaranteed valid until the next call
        on the same graph — copy to retain (this backend happens to
        allocate fresh arrays, but callers must not rely on that).
        """
        label = self._interner.label_of(vid)
        out = self._out[label]
        inn = self._in[label]
        n = len(out) + len(inn)
        ids = np.empty(n, dtype=np.int32)
        weights = np.empty(n, dtype=np.float64)
        id_of = self._interner._id_of
        i = 0
        for nbr, weight in out.items():
            ids[i] = id_of[nbr]
            weights[i] = weight
            i += 1
        for nbr, weight in inn.items():
            ids[i] = id_of[nbr]
            weights[i] = weight
            i += 1
        return ids, weights

    # ------------------------------------------------------------------ #
    # Whole-graph helpers
    # ------------------------------------------------------------------ #
    def total_suspiciousness(self) -> float:
        """Return ``f(V)``: total vertex plus edge suspiciousness (Equation 1)."""
        return self.total_vertex_weight() + self._total_edge_weight

    def copy(self) -> "DynamicGraph":
        """Return a deep copy of the graph (weights included)."""
        clone = DynamicGraph()
        clone._vertex_weight = dict(self._vertex_weight)
        clone._out = {u: dict(nbrs) for u, nbrs in self._out.items()}
        clone._in = {u: dict(nbrs) for u, nbrs in self._in.items()}
        clone._num_edges = self._num_edges
        clone._total_edge_weight = self._total_edge_weight
        clone._interner = self._interner.copy()
        return clone

    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._vertex_weight

    def __len__(self) -> int:
        return len(self._vertex_weight)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DynamicGraph(|V|={self.num_vertices()}, |E|={self.num_edges()}, "
            f"f(V)={self.total_suspiciousness():.3f})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DynamicGraph):
            return NotImplemented
        return self._vertex_weight == other._vertex_weight and self._out == other._out

    def __hash__(self) -> int:  # pragma: no cover - graphs are mutable
        raise TypeError("DynamicGraph is mutable and therefore unhashable")

    @classmethod
    def from_edges(cls, edges: Iterable[tuple]) -> "DynamicGraph":
        """Build a graph from an iterable of edge tuples."""
        return cls(edges=edges)

    @classmethod
    def from_graph(cls, graph) -> "DynamicGraph":
        """Replay another backend's vertices and edges into a dict graph.

        Vertices are replayed in insertion order, so the dense ids (and
        with them the peeling tie-break order) match the source graph.
        """
        clone = cls()
        for vertex in graph.vertices():
            clone.add_vertex(vertex, graph.vertex_weight(vertex))
        for src, dst, weight in graph.edges():
            clone.add_edge(src, dst, weight)
        return clone
