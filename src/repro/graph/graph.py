"""The dynamic weighted directed graph used throughout the reproduction.

The paper models a transaction graph ``G = (V, E)`` where every vertex
``u_i`` carries a non-negative *suspiciousness* weight ``a_i`` and every
edge ``(u_i, u_j)`` carries a positive suspiciousness weight ``c_ij``
(Section 2.1).  The graph evolves by edge insertion (single or batched);
Appendix C additionally considers edge deletion for outdated transactions.

:class:`DynamicGraph` implements exactly this model with an adjacency-list
representation (a dict of dicts per direction), which is what the original
C++ implementation uses as well (Listing 1: "Spade uses the adjacency list
to store the graph").

Design notes
------------
* Vertices are arbitrary hashable identifiers (ints or strings in practice).
* The graph is *directed*; peeling weights (Equation 2) sum both in- and
  out-edges, which the convenience accessors expose as
  :meth:`DynamicGraph.incident_weight`.
* Inserting an edge that already exists accumulates its weight.  Transaction
  graphs frequently contain repeated (customer, merchant) pairs and the
  density metrics of the paper only ever consume the summed weight.
* Weight constraints from Property 3.1 (``a_i >= 0``, ``c_ij > 0``) are
  enforced eagerly so that incremental maintenance can rely on them.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Mapping, Optional, Tuple

from repro.errors import InvalidWeightError, UnknownVertexError

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]

__all__ = ["Vertex", "Edge", "DynamicGraph"]


class DynamicGraph:
    """A directed, weighted, dynamically updatable graph.

    Parameters
    ----------
    vertices:
        Optional iterable of vertices (or ``(vertex, weight)`` pairs) to add
        up front.
    edges:
        Optional iterable of ``(src, dst)`` or ``(src, dst, weight)`` tuples.
        Unweighted edges default to weight ``1.0``.

    Examples
    --------
    >>> g = DynamicGraph()
    >>> g.add_edge("alice", "shop", 2.0)
    2.0
    >>> g.add_edge("bob", "shop")
    1.0
    >>> sorted(g.vertices())
    ['alice', 'bob', 'shop']
    >>> g.total_edge_weight()
    3.0
    """

    __slots__ = ("_out", "_in", "_vertex_weight", "_num_edges", "_total_edge_weight")

    def __init__(
        self,
        vertices: Optional[Iterable[object]] = None,
        edges: Optional[Iterable[tuple]] = None,
    ) -> None:
        self._out: Dict[Vertex, Dict[Vertex, float]] = {}
        self._in: Dict[Vertex, Dict[Vertex, float]] = {}
        self._vertex_weight: Dict[Vertex, float] = {}
        self._num_edges: int = 0
        self._total_edge_weight: float = 0.0

        if vertices is not None:
            for item in vertices:
                if isinstance(item, tuple) and len(item) == 2 and isinstance(item[1], (int, float)):
                    self.add_vertex(item[0], float(item[1]))
                else:
                    self.add_vertex(item)
        if edges is not None:
            for item in edges:
                if len(item) == 2:
                    self.add_edge(item[0], item[1])
                elif len(item) == 3:
                    self.add_edge(item[0], item[1], float(item[2]))
                else:
                    raise ValueError(f"edge tuple must have 2 or 3 elements, got {item!r}")

    # ------------------------------------------------------------------ #
    # Vertices
    # ------------------------------------------------------------------ #
    def add_vertex(self, vertex: Vertex, weight: float = 0.0) -> None:
        """Add ``vertex`` with suspiciousness ``weight`` (idempotent).

        Re-adding an existing vertex updates its weight only when a strictly
        larger weight is supplied; this mirrors the "side information sets a
        prior" behaviour of Fraudar where priors only ever accumulate.
        """
        if weight < 0:
            raise InvalidWeightError(f"vertex weight must be >= 0, got {weight} for {vertex!r}")
        if vertex in self._vertex_weight:
            if weight > self._vertex_weight[vertex]:
                self._vertex_weight[vertex] = float(weight)
            return
        self._vertex_weight[vertex] = float(weight)
        self._out[vertex] = {}
        self._in[vertex] = {}

    def set_vertex_weight(self, vertex: Vertex, weight: float) -> None:
        """Overwrite the suspiciousness prior of an existing vertex."""
        if vertex not in self._vertex_weight:
            raise UnknownVertexError(vertex)
        if weight < 0:
            raise InvalidWeightError(f"vertex weight must be >= 0, got {weight} for {vertex!r}")
        self._vertex_weight[vertex] = float(weight)

    def has_vertex(self, vertex: Vertex) -> bool:
        """Return whether ``vertex`` is part of the graph."""
        return vertex in self._vertex_weight

    def vertex_weight(self, vertex: Vertex) -> float:
        """Return the suspiciousness prior ``a_i`` of ``vertex``."""
        try:
            return self._vertex_weight[vertex]
        except KeyError:
            raise UnknownVertexError(vertex) from None

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all vertices."""
        return iter(self._vertex_weight)

    def num_vertices(self) -> int:
        """Return ``|V|``."""
        return len(self._vertex_weight)

    def total_vertex_weight(self) -> float:
        """Return the sum of all vertex suspiciousness priors."""
        return sum(self._vertex_weight.values())

    # ------------------------------------------------------------------ #
    # Edges
    # ------------------------------------------------------------------ #
    def add_edge(self, src: Vertex, dst: Vertex, weight: float = 1.0) -> float:
        """Insert the directed edge ``(src, dst)`` with suspiciousness ``weight``.

        Missing endpoints are created with a zero prior.  If the edge already
        exists its weight is accumulated, matching how repeated transactions
        between the same customer/merchant pair add suspiciousness.

        Returns the *new* total weight of the edge.
        """
        if weight <= 0:
            raise InvalidWeightError(f"edge weight must be > 0, got {weight} for ({src!r}, {dst!r})")
        if src == dst:
            raise InvalidWeightError(f"self loops are not part of the transaction model: {src!r}")
        if src not in self._vertex_weight:
            self.add_vertex(src)
        if dst not in self._vertex_weight:
            self.add_vertex(dst)
        out_src = self._out[src]
        if dst in out_src:
            out_src[dst] += float(weight)
            self._in[dst][src] += float(weight)
        else:
            out_src[dst] = float(weight)
            self._in[dst][src] = float(weight)
            self._num_edges += 1
        self._total_edge_weight += float(weight)
        return out_src[dst]

    def remove_edge(self, src: Vertex, dst: Vertex) -> float:
        """Remove the directed edge ``(src, dst)`` entirely and return its weight.

        Used by the Appendix C.1 extension (deletion of outdated
        transactions) and by dense-subgraph enumeration.
        """
        if src not in self._out or dst not in self._out[src]:
            raise UnknownVertexError((src, dst))
        weight = self._out[src].pop(dst)
        del self._in[dst][src]
        self._num_edges -= 1
        self._total_edge_weight -= weight
        return weight

    def has_edge(self, src: Vertex, dst: Vertex) -> bool:
        """Return whether the directed edge ``(src, dst)`` exists."""
        return src in self._out and dst in self._out[src]

    def edge_weight(self, src: Vertex, dst: Vertex) -> float:
        """Return the accumulated weight ``c_ij`` of the directed edge."""
        try:
            return self._out[src][dst]
        except KeyError:
            raise UnknownVertexError((src, dst)) from None

    def edges(self) -> Iterator[Tuple[Vertex, Vertex, float]]:
        """Iterate over ``(src, dst, weight)`` triples."""
        for src, nbrs in self._out.items():
            for dst, weight in nbrs.items():
                yield src, dst, weight

    def num_edges(self) -> int:
        """Return ``|E|`` (unique directed edges)."""
        return self._num_edges

    def total_edge_weight(self) -> float:
        """Return the sum of all edge weights."""
        return self._total_edge_weight

    # ------------------------------------------------------------------ #
    # Neighbourhood accessors
    # ------------------------------------------------------------------ #
    def out_neighbors(self, vertex: Vertex) -> Mapping[Vertex, float]:
        """Return a read-only mapping ``{dst: weight}`` of outgoing edges."""
        try:
            return self._out[vertex]
        except KeyError:
            raise UnknownVertexError(vertex) from None

    def in_neighbors(self, vertex: Vertex) -> Mapping[Vertex, float]:
        """Return a read-only mapping ``{src: weight}`` of incoming edges."""
        try:
            return self._in[vertex]
        except KeyError:
            raise UnknownVertexError(vertex) from None

    def neighbors(self, vertex: Vertex) -> Iterator[Vertex]:
        """Iterate over the (undirected) neighbour set ``N(u)``."""
        seen = set()
        for nbr in self._out.get(vertex, ()):  # noqa: SIM118 - dict keys iteration
            seen.add(nbr)
            yield nbr
        for nbr in self._in.get(vertex, ()):
            if nbr not in seen:
                yield nbr

    def incident_items(self, vertex: Vertex) -> Iterator[Tuple[Vertex, float]]:
        """Iterate over ``(neighbour, weight)`` pairs of *all* incident edges.

        A neighbour connected in both directions is yielded twice (once per
        edge), because the peeling weight of Equation 2 sums both directions.
        """
        for nbr, weight in self._out.get(vertex, {}).items():
            yield nbr, weight
        for nbr, weight in self._in.get(vertex, {}).items():
            yield nbr, weight

    def out_degree(self, vertex: Vertex) -> int:
        """Return the number of outgoing edges of ``vertex``."""
        try:
            return len(self._out[vertex])
        except KeyError:
            raise UnknownVertexError(vertex) from None

    def in_degree(self, vertex: Vertex) -> int:
        """Return the number of incoming edges of ``vertex``."""
        try:
            return len(self._in[vertex])
        except KeyError:
            raise UnknownVertexError(vertex) from None

    def degree(self, vertex: Vertex) -> int:
        """Return the total degree (in + out) of ``vertex``."""
        return self.out_degree(vertex) + self.in_degree(vertex)

    def incident_weight(self, vertex: Vertex) -> float:
        """Return the summed weight of all edges incident to ``vertex``.

        Together with the vertex prior this is the peeling weight of the
        vertex with respect to the full vertex set, ``w_u(S_0)``.
        """
        total = sum(self._out.get(vertex, {}).values())
        total += sum(self._in.get(vertex, {}).values())
        return total

    # ------------------------------------------------------------------ #
    # Whole-graph helpers
    # ------------------------------------------------------------------ #
    def total_suspiciousness(self) -> float:
        """Return ``f(V)``: total vertex plus edge suspiciousness (Equation 1)."""
        return self.total_vertex_weight() + self._total_edge_weight

    def copy(self) -> "DynamicGraph":
        """Return a deep copy of the graph (weights included)."""
        clone = DynamicGraph()
        clone._vertex_weight = dict(self._vertex_weight)
        clone._out = {u: dict(nbrs) for u, nbrs in self._out.items()}
        clone._in = {u: dict(nbrs) for u, nbrs in self._in.items()}
        clone._num_edges = self._num_edges
        clone._total_edge_weight = self._total_edge_weight
        return clone

    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._vertex_weight

    def __len__(self) -> int:
        return len(self._vertex_weight)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DynamicGraph(|V|={self.num_vertices()}, |E|={self.num_edges()}, "
            f"f(V)={self.total_suspiciousness():.3f})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DynamicGraph):
            return NotImplemented
        return self._vertex_weight == other._vertex_weight and self._out == other._out

    def __hash__(self) -> int:  # pragma: no cover - graphs are mutable
        raise TypeError("DynamicGraph is mutable and therefore unhashable")

    @classmethod
    def from_edges(cls, edges: Iterable[tuple]) -> "DynamicGraph":
        """Build a graph from an iterable of edge tuples."""
        return cls(edges=edges)
