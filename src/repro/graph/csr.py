"""Immutable CSR snapshots of a graph for the read-mostly analytics paths.

The mutable backends (:class:`~repro.graph.array_graph.ArrayGraph` edge
pools, :class:`~repro.graph.graph.DynamicGraph` adjacency dicts) are
optimised for the *write* path — O(1) amortized edge insertion with O(1)
incident-weight maintenance.  The read-mostly paths of the evaluation
(static peeling, dense-subgraph enumeration, the exact solver, dataset
statistics) instead want flat, contiguous arrays they can scan with numpy.
:class:`CsrSnapshot` freezes a graph into exactly that: classic compressed
sparse row storage, one ``offsets``/``neighbors``/``weights`` triple per
direction, plus dense vertex weights and an id ↔ label view.

Design points
-------------
* **Immutable.**  Every array a snapshot owns is marked read-only; a
  snapshot taken at version ``k`` of an :class:`ArrayGraph` never changes,
  and :meth:`is_stale` tells callers when the source graph has moved on.
* **O(|V| + |E|) construction.**  ``ArrayGraph.freeze`` derives the offset
  arrays from the pool lengths with ``cumsum`` and concatenates the pool
  views — no per-vertex numpy dispatches; :meth:`CsrSnapshot.from_edges`
  builds a snapshot from flat edge arrays with ``np.bincount`` + stable
  ``argsort`` for callers that never materialise a mutable graph at all.
* **Zero-copy sharing.**  :meth:`save` writes an *uncompressed* ``.npz``;
  :meth:`load` with ``mmap_mode="r"`` memory-maps each stored ``.npy``
  member in place (numpy itself ignores ``mmap_mode`` for zip archives, so
  the member offsets are resolved manually), which makes a snapshot
  shareable across processes without copying a single edge array — the
  natural surface for sharded engines and for a future native extension.
* **Enumeration-order fidelity.**  Neighbor runs preserve the source
  graph's pool order (out-edges first, then in-edges, each in insertion
  order), so the CSR static peel sums weights in exactly the same order as
  the heap-based peel and the two produce bit-identical sequences — the
  property pinned by ``tests/test_csr.py``.
"""

from __future__ import annotations

import os
import zipfile
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ReproError

__all__ = ["CsrSnapshot", "freeze_graph"]

_EMPTY_I32 = np.empty(0, dtype=np.int32)
_EMPTY_F64 = np.empty(0, dtype=np.float64)

#: npz member names of the numeric payload (the zero-copy part).
_ARRAY_FIELDS = (
    "order",
    "member",
    "vertex_weights",
    "out_offsets",
    "out_neighbors",
    "out_weights",
    "in_offsets",
    "in_neighbors",
    "in_weights",
)


def _frozen(array: np.ndarray) -> np.ndarray:
    """Mark an array read-only and return it."""
    array.flags.writeable = False
    return array


def _segment_gather(
    offsets: np.ndarray, ids: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(positions, counts)`` covering the CSR segments of ``ids``.

    ``positions`` indexes the flat neighbor/weight arrays; the segments are
    emitted in the order of ``ids``, each in CSR order.
    """
    starts = offsets[ids]
    counts = offsets[ids + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), counts
    shifts = np.repeat(starts - np.concatenate(([0], np.cumsum(counts)[:-1])), counts)
    return np.arange(total, dtype=np.int64) + shifts, counts


class CsrSnapshot:
    """A frozen CSR view of a weighted directed graph.

    Attributes (all read-only numpy arrays over the dense id space
    ``[0, num_ids)`` of the source graph's interner):

    ``order``
        ``int32`` member ids in graph insertion order — the peeling
        tie-break order.
    ``member``
        ``bool`` mask of ids that are graph vertices.
    ``vertex_weights``
        ``float64`` suspiciousness priors ``a_i``.
    ``out_offsets`` / ``out_neighbors`` / ``out_weights``
        Out-adjacency in CSR form (``int64`` offsets of length
        ``num_ids + 1``); likewise ``in_*`` for the in-adjacency.
    """

    __slots__ = (
        "order",
        "member",
        "vertex_weights",
        "out_offsets",
        "out_neighbors",
        "out_weights",
        "in_offsets",
        "in_neighbors",
        "in_weights",
        "total_edge_weight",
        "source_version",
        "_labels",
        "_id_of",
        "_incidence",
        "_flat_incidence",
    )

    def __init__(
        self,
        order: np.ndarray,
        member: np.ndarray,
        vertex_weights: np.ndarray,
        out_offsets: np.ndarray,
        out_neighbors: np.ndarray,
        out_weights: np.ndarray,
        in_offsets: np.ndarray,
        in_neighbors: np.ndarray,
        in_weights: np.ndarray,
        total_edge_weight: float,
        source_version: int = -1,
        labels: Optional[Sequence[Hashable]] = None,
    ) -> None:
        self.order = order
        self.member = member
        self.vertex_weights = vertex_weights
        self.out_offsets = out_offsets
        self.out_neighbors = out_neighbors
        self.out_weights = out_weights
        self.in_offsets = in_offsets
        self.in_neighbors = in_neighbors
        self.in_weights = in_weights
        self.total_edge_weight = float(total_edge_weight)
        self.source_version = int(source_version)
        self._labels = list(labels) if labels is not None else None
        self._id_of: Optional[Dict[Hashable, int]] = None
        self._incidence: Optional[Tuple[np.ndarray, ...]] = None
        self._flat_incidence: Optional[Tuple[list, list, list]] = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edges(
        cls,
        src: np.ndarray,
        dst: np.ndarray,
        weights: np.ndarray,
        num_ids: Optional[int] = None,
        vertex_weights: Optional[np.ndarray] = None,
        labels: Optional[Sequence[Hashable]] = None,
    ) -> "CsrSnapshot":
        """Build a snapshot from flat ``(src, dst, weight)`` edge arrays.

        Pure ``np.bincount`` / cumsum / stable-``argsort`` construction —
        O(|E|) with no per-vertex Python loop.  Neighbor runs come out in
        edge-array order per vertex, matching pool insertion order when the
        edge arrays are in insertion order.
        """
        src = np.asarray(src, dtype=np.int32)
        dst = np.asarray(dst, dtype=np.int32)
        weights = np.asarray(weights, dtype=np.float64)
        if num_ids is None:
            num_ids = int(max(src.max(initial=-1), dst.max(initial=-1))) + 1
        out_counts = np.bincount(src, minlength=num_ids).astype(np.int64)
        in_counts = np.bincount(dst, minlength=num_ids).astype(np.int64)
        out_offsets = np.concatenate(([0], np.cumsum(out_counts)))
        in_offsets = np.concatenate(([0], np.cumsum(in_counts)))
        out_order = np.argsort(src, kind="stable")
        in_order = np.argsort(dst, kind="stable")
        if vertex_weights is None:
            vertex_weights = np.zeros(num_ids, dtype=np.float64)
        member = np.zeros(num_ids, dtype=bool)
        member[src] = True
        member[dst] = True
        order = np.nonzero(member)[0].astype(np.int32)
        return cls(
            order=_frozen(order),
            member=_frozen(member),
            vertex_weights=_frozen(np.asarray(vertex_weights, dtype=np.float64)),
            out_offsets=_frozen(out_offsets),
            out_neighbors=_frozen(dst[out_order].copy()),
            out_weights=_frozen(weights[out_order].copy()),
            in_offsets=_frozen(in_offsets),
            in_neighbors=_frozen(src[in_order].copy()),
            in_weights=_frozen(weights[in_order].copy()),
            total_edge_weight=float(weights.sum()),
            labels=labels,
        )

    # ------------------------------------------------------------------ #
    # Scalar views
    # ------------------------------------------------------------------ #
    @property
    def num_ids(self) -> int:
        """Size of the dense id space the snapshot covers."""
        return len(self.member)

    @property
    def num_vertices(self) -> int:
        """Number of member vertices (``|V|``)."""
        return len(self.order)

    @property
    def num_edges(self) -> int:
        """Number of unique directed edges (``|E|``)."""
        return len(self.out_neighbors)

    def is_stale(self, graph) -> bool:
        """Return whether ``graph`` has mutated since this snapshot was taken.

        Graphs without a version counter (or snapshots built from raw edge
        arrays) are conservatively reported stale.
        """
        version = getattr(graph, "version", None)
        if version is None or self.source_version < 0:
            return True
        return version != self.source_version

    # ------------------------------------------------------------------ #
    # Labels
    # ------------------------------------------------------------------ #
    @property
    def labels(self) -> Optional[List[Hashable]]:
        """Dense-id → label table (``None`` when saved without labels)."""
        return self._labels

    def label_of(self, vid: int) -> Hashable:
        """Return the label owning dense id ``vid``."""
        if self._labels is None:
            raise ReproError("snapshot was built/loaded without labels")
        return self._labels[vid]

    def labels_for(self, vids) -> List[Hashable]:
        """Translate an id sequence (or numpy array) back to labels."""
        if self._labels is None:
            raise ReproError("snapshot was built/loaded without labels")
        labels = self._labels
        if isinstance(vids, np.ndarray):
            vids = vids.tolist()
        return [labels[vid] for vid in vids]

    def id_of(self, label: Hashable, default: int = -1) -> int:
        """Return the dense id of ``label`` (``default`` when unknown)."""
        if self._id_of is None:
            if self._labels is None:
                raise ReproError("snapshot was built/loaded without labels")
            self._id_of = {label: vid for vid, label in enumerate(self._labels)}
        return self._id_of.get(label, default)

    def ids_for(self, labels: Iterable[Hashable]) -> np.ndarray:
        """Translate known labels into an ``int32`` id array."""
        return np.fromiter((self.id_of(label) for label in labels), dtype=np.int32)

    # ------------------------------------------------------------------ #
    # Derived structure
    # ------------------------------------------------------------------ #
    def degrees(self, ids: Optional[np.ndarray] = None) -> np.ndarray:
        """Return total degrees (in + out) of ``ids`` (default: all members)."""
        if ids is None:
            ids = self.order
        ids = np.asarray(ids, dtype=np.int64)
        return (
            self.out_offsets[ids + 1]
            - self.out_offsets[ids]
            + self.in_offsets[ids + 1]
            - self.in_offsets[ids]
        )

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return flat ``(src, dst, weight)`` arrays of all directed edges."""
        out_counts = self.out_offsets[1:] - self.out_offsets[:-1]
        src = np.repeat(np.arange(self.num_ids, dtype=np.int32), out_counts)
        return src, self.out_neighbors, self.out_weights

    def incidence(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Return the combined-incidence CSR ``(offsets, mid, neighbors, weights)``.

        Per vertex the run is its out-neighbors followed by its in-neighbors
        (``mid[v]`` marks the boundary), i.e. exactly the enumeration order
        of ``incident_arrays_id`` on the mutable backends — which is what
        lets :func:`repro.peeling.static.peel_csr` reproduce the heap peel
        bit for bit.  Built vectorised on first use and cached.
        """
        if self._incidence is not None:
            return self._incidence
        out_counts = self.out_offsets[1:] - self.out_offsets[:-1]
        in_counts = self.in_offsets[1:] - self.in_offsets[:-1]
        offsets = np.concatenate(([0], np.cumsum(out_counts + in_counts)))
        mid = offsets[:-1] + out_counts
        m_out = len(self.out_neighbors)
        m_in = len(self.in_neighbors)
        neighbors = np.empty(m_out + m_in, dtype=np.int32)
        weights = np.empty(m_out + m_in, dtype=np.float64)
        if m_out:
            dest = np.arange(m_out, dtype=np.int64) + np.repeat(
                offsets[:-1] - self.out_offsets[:-1], out_counts
            )
            neighbors[dest] = self.out_neighbors
            weights[dest] = self.out_weights
        if m_in:
            dest = np.arange(m_in, dtype=np.int64) + np.repeat(
                mid - self.in_offsets[:-1], in_counts
            )
            neighbors[dest] = self.in_neighbors
            weights[dest] = self.in_weights
        self._incidence = (
            _frozen(offsets),
            _frozen(mid),
            _frozen(neighbors),
            _frozen(weights),
        )
        return self._incidence

    def flat_incidence(self) -> Tuple[list, list, list]:
        """Return ``(offsets, neighbors, weights)`` as plain Python lists.

        The scalar greedy loop of :func:`repro.peeling.static.peel_csr`
        runs over boxed values; materialising them once per snapshot (the
        snapshot is immutable, so the lists never go stale) keeps repeated
        subset peels — e.g. one per enumerated community — from paying an
        O(|E|) conversion each time.
        """
        if self._flat_incidence is None:
            inc_off, _inc_mid, inc_nbr, inc_w = self.incidence()
            self._flat_incidence = (inc_off.tolist(), inc_nbr.tolist(), inc_w.tolist())
        return self._flat_incidence

    # ------------------------------------------------------------------ #
    # Metric evaluation
    # ------------------------------------------------------------------ #
    def subset_suspiciousness(self, ids) -> float:
        """Evaluate ``f(S)`` (Equation 1) over a dense-id subset, vectorised."""
        ids = np.asarray(ids, dtype=np.int64)
        if len(ids) == 0:
            return 0.0
        mask = np.zeros(self.num_ids, dtype=bool)
        mask[ids] = True
        total = float(self.vertex_weights[ids].sum())
        positions, _counts = _segment_gather(self.out_offsets, ids)
        if len(positions):
            inside = mask[self.out_neighbors[positions]]
            total += float(self.out_weights[positions][inside].sum())
        return total

    def subset_density(self, ids) -> float:
        """Evaluate ``g(S) = f(S) / |S|`` over a dense-id subset."""
        ids = np.asarray(ids, dtype=np.int64)
        if len(ids) == 0:
            return 0.0
        return self.subset_suspiciousness(ids) / len(ids)

    # ------------------------------------------------------------------ #
    # Persistence (.npz + zero-copy mmap)
    # ------------------------------------------------------------------ #
    def save(self, path, include_labels: bool = True) -> None:
        """Persist the snapshot as an *uncompressed* ``.npz`` archive.

        The numeric members are stored uncompressed so that :meth:`load`
        with ``mmap_mode="r"`` can map them in place.  Labels (arbitrary
        hashables) are pickled into their own member; pass
        ``include_labels=False`` for a purely numeric, fully mappable file.
        """
        payload = {name: getattr(self, name) for name in _ARRAY_FIELDS}
        payload["meta_f"] = np.array([self.total_edge_weight], dtype=np.float64)
        payload["meta_i"] = np.array([self.source_version], dtype=np.int64)
        if include_labels and self._labels is not None:
            label_arr = np.empty(len(self._labels), dtype=object)
            label_arr[:] = self._labels
            payload["labels"] = label_arr
        # np.savez appends ".npz" to suffix-less paths; load() mirrors
        # that via _resolve_path so save(path)/load(path) stay symmetric.
        np.savez(os.fspath(path), **payload)

    @staticmethod
    def _resolve_path(path) -> str:
        """Mirror np.savez's suffix behavior on the load side."""
        path = os.fspath(path)
        if not os.path.exists(path) and not path.endswith(".npz"):
            candidate = path + ".npz"
            if os.path.exists(candidate):
                return candidate
        return path

    @classmethod
    def load(cls, path, mmap_mode: Optional[str] = None) -> "CsrSnapshot":
        """Load a saved snapshot.

        With ``mmap_mode=None`` the arrays are read into memory.  With
        ``mmap_mode="r"`` every numeric member is memory-mapped directly
        from the archive (numpy ignores ``mmap_mode`` for ``.npz`` files,
        so the member data offsets are resolved from the zip local headers
        here), giving zero-copy, page-cache-shared loads across processes.

        Numeric members are always read with ``allow_pickle=False``; only
        the optional ``labels`` member is unpickled (labels are arbitrary
        hashables).  Snapshots saved with ``include_labels=False`` are
        therefore loadable from untrusted paths without any unpickling.
        """
        path = cls._resolve_path(path)
        arrays: Dict[str, np.ndarray] = {}
        pickled: List[str] = []
        if mmap_mode is not None:
            for name, (offset, stored) in _npz_member_offsets(path).items():
                key = name[:-4] if name.endswith(".npy") else name
                mapped = _mmap_npy_member(path, offset, mmap_mode) if stored else None
                if mapped is None:
                    pickled.append(key)
                else:
                    arrays[key] = mapped
        else:
            pickled = None  # everything through np.load below
        labels = None
        if pickled is None or pickled:
            with np.load(path, allow_pickle=False) as data:
                wanted = data.files if pickled is None else pickled
                for key in wanted:
                    if key != "labels":
                        arrays[key] = data[key]
                load_labels = "labels" in wanted
            if load_labels:
                with np.load(path, allow_pickle=True) as data:
                    labels = list(data["labels"])
        kwargs = {name: arrays[name] for name in _ARRAY_FIELDS}
        return cls(
            total_edge_weight=float(arrays["meta_f"][0]),
            source_version=int(arrays["meta_i"][0]),
            labels=labels,
            **kwargs,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CsrSnapshot(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"version={self.source_version})"
        )


def _npz_member_offsets(path: str) -> Dict[str, Tuple[int, bool]]:
    """Map npz member name → ``(data_offset, is_stored)`` in the archive.

    The data offset is computed from the zip *local* file header (the
    central directory's ``header_offset`` plus the 30-byte fixed header and
    the variable filename/extra fields), which is where the raw ``.npy``
    byte stream of an uncompressed member begins.
    """
    offsets: Dict[str, Tuple[int, bool]] = {}
    with zipfile.ZipFile(path) as archive, open(path, "rb") as raw:
        for info in archive.infolist():
            raw.seek(info.header_offset)
            header = raw.read(30)
            if len(header) != 30 or header[:4] != b"PK\x03\x04":
                raise ReproError(f"{path}: corrupt zip local header for {info.filename!r}")
            name_len = int.from_bytes(header[26:28], "little")
            extra_len = int.from_bytes(header[28:30], "little")
            offsets[info.filename] = (
                info.header_offset + 30 + name_len + extra_len,
                info.compress_type == zipfile.ZIP_STORED,
            )
    return offsets


def _mmap_npy_member(path: str, offset: int, mmap_mode: str) -> Optional[np.ndarray]:
    """Memory-map one stored ``.npy`` member; ``None`` if it needs pickling."""
    with open(path, "rb") as stream:
        stream.seek(offset)
        version = np.lib.format.read_magic(stream)
        if version == (1, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_1_0(stream)
        elif version == (2, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_2_0(stream)
        else:  # pragma: no cover - numpy writes 1.0/2.0 for plain arrays
            return None
        data_offset = stream.tell()
    if dtype.hasobject:
        return None
    return np.memmap(
        path,
        dtype=dtype,
        mode=mmap_mode,
        offset=data_offset,
        shape=shape,
        order="F" if fortran else "C",
    )


def freeze_graph(graph) -> CsrSnapshot:
    """Freeze any :class:`~repro.graph.backend.GraphBackend` into a snapshot.

    Array graphs freeze natively (O(|V| + |E|), pools concatenated in
    place); other backends are replayed into an
    :class:`~repro.graph.array_graph.ArrayGraph` first, which preserves
    dense ids and with them the peeling tie-break order.
    """
    freeze = getattr(graph, "freeze", None)
    if freeze is not None:
        return freeze()
    from repro.graph.array_graph import ArrayGraph

    return ArrayGraph.from_graph(graph).freeze()
