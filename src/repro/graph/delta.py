"""Graph updates: the ``ΔG`` objects applied to a graph with ``G ⊕ ΔG``.

The paper considers two update granularities (Section 2.1):

* single edge insertion, ``|ΔE| = 1``;
* batched edge insertion, ``|ΔE| > 1``;

plus, in Appendix C, edge deletion for outdated transactions.  The stream
layer additionally attaches timestamps to each update
(:class:`repro.streaming.stream.TimestampedEdge`); this module only covers
the structural part.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.graph.graph import DynamicGraph, Vertex

__all__ = ["EdgeUpdate", "GraphDelta", "apply_delta"]


@dataclass(frozen=True)
class EdgeUpdate:
    """A single edge insertion (or deletion) with its suspiciousness weight.

    Attributes
    ----------
    src, dst:
        Edge endpoints.  New vertices are created on demand when the update
        is applied.
    weight:
        The edge suspiciousness ``c_ij``.  For semantics that compute the
        weight themselves (e.g. Fraudar's ``1 / log(deg + c)``) the stored
        weight is ignored and recomputed by the engine at insertion time.
    src_weight, dst_weight:
        Optional vertex suspiciousness priors carried with the update
        ("side information" in Fraudar's terms).  ``None`` means "not
        specified" — the engine then asks the semantics' ``vsusp`` for
        the prior — while an explicit value (including ``0.0``) is
        honoured as-is.
    delete:
        When true the update removes the edge instead of inserting it
        (Appendix C.1).
    """

    src: Vertex
    dst: Vertex
    weight: float = 1.0
    src_weight: Optional[float] = None
    dst_weight: Optional[float] = None
    delete: bool = False

    @property
    def edge(self) -> Tuple[Vertex, Vertex]:
        """Return the ``(src, dst)`` pair."""
        return (self.src, self.dst)

    def reversed(self) -> "EdgeUpdate":
        """Return the same update with src/dst swapped (useful in tests)."""
        return EdgeUpdate(
            src=self.dst,
            dst=self.src,
            weight=self.weight,
            src_weight=self.dst_weight,
            dst_weight=self.src_weight,
            delete=self.delete,
        )


@dataclass
class GraphDelta:
    """A batch of edge updates, ``ΔG = (ΔV, ΔE)``.

    ``ΔV`` is implicit: any endpoint of an update that is not yet in the
    graph is a new vertex.  Explicit isolated new vertices can be added via
    :attr:`new_vertices`.
    """

    updates: List[EdgeUpdate] = field(default_factory=list)
    new_vertices: List[Tuple[Vertex, float]] = field(default_factory=list)

    def add(self, update: EdgeUpdate) -> None:
        """Append an update to the batch."""
        self.updates.append(update)

    def add_edge(self, src: Vertex, dst: Vertex, weight: float = 1.0) -> None:
        """Convenience wrapper creating and appending an insertion."""
        self.updates.append(EdgeUpdate(src, dst, weight))

    def add_vertex(self, vertex: Vertex, weight: float = 0.0) -> None:
        """Record an isolated new vertex carried by this delta."""
        self.new_vertices.append((vertex, weight))

    def insertions(self) -> Iterator[EdgeUpdate]:
        """Iterate over the edge insertions in this delta."""
        return (u for u in self.updates if not u.delete)

    def deletions(self) -> Iterator[EdgeUpdate]:
        """Iterate over the edge deletions in this delta."""
        return (u for u in self.updates if u.delete)

    def __len__(self) -> int:
        return len(self.updates)

    def __iter__(self) -> Iterator[EdgeUpdate]:
        return iter(self.updates)

    def touched_vertices(self) -> List[Vertex]:
        """Return the distinct vertices referenced by this delta, in order."""
        seen = set()
        ordered: List[Vertex] = []
        for vertex, _weight in self.new_vertices:
            if vertex not in seen:
                seen.add(vertex)
                ordered.append(vertex)
        for update in self.updates:
            for vertex in (update.src, update.dst):
                if vertex not in seen:
                    seen.add(vertex)
                    ordered.append(vertex)
        return ordered

    @classmethod
    def from_edges(cls, edges: Iterable[tuple]) -> "GraphDelta":
        """Build an insertion-only delta from ``(src, dst[, weight])`` tuples."""
        delta = cls()
        for item in edges:
            if len(item) == 2:
                delta.add_edge(item[0], item[1])
            else:
                delta.add_edge(item[0], item[1], float(item[2]))
        return delta


def apply_delta(graph: DynamicGraph, delta: GraphDelta) -> DynamicGraph:
    """Apply ``delta`` to ``graph`` in place and return the graph.

    This is the plain structural ``G ⊕ ΔG`` of the paper; it does *not*
    perform any incremental maintenance of peeling state — that is the job
    of :mod:`repro.core`.  It exists so that static baselines and tests can
    materialise the updated graph directly.
    """
    for vertex, weight in delta.new_vertices:
        graph.add_vertex(vertex, weight)
    for update in delta.updates:
        if update.delete:
            graph.remove_edge(update.src, update.dst)
            continue
        if update.src_weight:
            graph.add_vertex(update.src, update.src_weight)
        if update.dst_weight:
            graph.add_vertex(update.dst, update.dst_weight)
        graph.add_edge(update.src, update.dst, update.weight)
    return graph
