"""``repro.serve``: the production serving subsystem.

Turns the in-process :class:`~repro.api.SpadeClient` into a long-running
network service: an asyncio HTTP gateway with micro-batched ingest
(:mod:`repro.serve.ingest`), snapshot-isolated queries
(:mod:`repro.serve.snapshots`), WAL + checkpoint durability
(:mod:`repro.serve.wal` / :mod:`repro.serve.recovery`) and Prometheus
metrics (:mod:`repro.serve.metrics`).  Run it with::

    python -m repro.serve --config engine.json --port 8080

Only :class:`ServeConfig` is imported eagerly — it is nested inside
:class:`repro.api.EngineConfig`, and pulling the server stack into every
``import repro.api`` would create an import cycle; the heavier members
load lazily on first attribute access (PEP 562).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.serve.config import ServeConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.app import ServeApp
    from repro.serve.ingest import IngestGateway
    from repro.serve.metrics import MetricsRegistry
    from repro.serve.recovery import CheckpointStore, RecoveredState, recover
    from repro.serve.server import HttpServer
    from repro.serve.snapshots import SnapshotService
    from repro.serve.wal import WriteAheadLog

__all__ = [
    "ServeConfig",
    "ServeApp",
    "IngestGateway",
    "SnapshotService",
    "WriteAheadLog",
    "CheckpointStore",
    "RecoveredState",
    "recover",
    "HttpServer",
    "MetricsRegistry",
]

_LAZY = {
    "ServeApp": ("repro.serve.app", "ServeApp"),
    "IngestGateway": ("repro.serve.ingest", "IngestGateway"),
    "SnapshotService": ("repro.serve.snapshots", "SnapshotService"),
    "WriteAheadLog": ("repro.serve.wal", "WriteAheadLog"),
    "CheckpointStore": ("repro.serve.recovery", "CheckpointStore"),
    "RecoveredState": ("repro.serve.recovery", "RecoveredState"),
    "recover": ("repro.serve.recovery", "recover"),
    "HttpServer": ("repro.serve.server", "HttpServer"),
    "MetricsRegistry": ("repro.serve.metrics", "MetricsRegistry"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro.serve' has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
