"""``ServeApp``: routes, lifecycle and durability wiring for one deployment.

The composition root of the serving subsystem.  One
:class:`~repro.api.EngineConfig` (with its nested
:class:`~repro.serve.config.ServeConfig`) describes the whole deployment;
:class:`ServeApp` recovers or boots the engine, wires the WAL, checkpoint
store, ingest gateway and snapshot service around one shared
``asyncio.Lock``, and exposes the HTTP surface:

==========================  =====================================================
``POST /v1/edges``          single event or bulk ``{"edges": [...]}`` ingest;
                            micro-batched, durable before ack; ``429`` +
                            ``Retry-After`` under backpressure; ``503`` +
                            ``Retry-After`` while read-only degraded (WAL
                            unwritable — reads keep serving)
``POST /v1/flush``          force-flush deferred work (ordering barrier)
``GET /v1/detect``          exact detection from the current snapshot, or a
                            past one with ``?asof=SEQ`` (time travel over the
                            WAL; 400 beyond the durable head)
``GET /v1/communities``     dense instances, ``offset``/``limit`` or keyset
                            ``cursor`` paginated; supports ``?asof=SEQ``
``GET /v1/vertices/{v}``    per-vertex stats from the current snapshot
``GET /v1/history/...``     cold-store analytics (``epochs``, ``communities``
                            timeline, ``vertices/{v}``), keyset paginated;
                            requires ``serve.history``
``GET /healthz``            liveness + engine shape + WAL/checkpoint/indexer
                            positions
``GET /metrics``            Prometheus text exposition
``GET /debug/traces``       slowest-recent recorded traces (``min_ms``,
                            ``limit``, ``trace_id`` filters) from the
                            in-memory ring
``GET /debug/profile``      per-peel-phase wall-time counters, process +
                            per-shard-worker, python vs. native kernel
==========================  =====================================================

Every data response carries the snapshot ``version`` (the WAL sequence it
reflects), which is the isolation contract clients can assert against —
and an ``X-Repro-Trace-Id`` header naming the request's trace
(:mod:`repro.obs`), whether or not the sampler recorded it.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro import native as _native
from repro._version import __version__
from repro.api.config import EngineConfig
from repro.errors import DegradedError, ReproError
from repro.graph.delta import EdgeUpdate
from repro.history import queries as history_queries
from repro.history.asof import AsofService
from repro.history.cursor import cursor_int, decode_cursor, encode_cursor
from repro.history.indexer import HistoryIndexer, IndexerTask, resolve_db_path
from repro.history.store import HistoryStore
from repro.history.store import connect as history_connect
from repro.obs import profile as obs_profile
from repro.obs.context import TraceContext
from repro.obs.events import EventLog
from repro.obs.recorder import TraceRecorder
from repro.peeling.semantics import PeelingSemantics
from repro.serve.config import ServeConfig
from repro.serve.ingest import IngestGateway
from repro.serve.metrics import MetricsRegistry
from repro.serve.recovery import CheckpointStore, recover
from repro.serve.server import HttpError, HttpServer, Request, Response, json_response
from repro.serve.snapshots import SnapshotService
from repro.serve.wal import WriteAheadLog

__all__ = ["ServeApp", "RUNINFO_FILENAME"]

#: JSON file written into ``wal_dir`` once the server is listening —
#: ``{"host": ..., "port": ..., "pid": ...}`` — so tooling (the CI smoke,
#: the bench) can discover an OS-assigned port.
RUNINFO_FILENAME = "server.json"


def _parse_label(value: object) -> object:
    """Validate a vertex label from the wire (JSON scalar, not null/bool).

    Anything else (objects, arrays, null) would be durably WAL-appended
    and then blow up inside the engine with a non-deterministic-looking
    ``TypeError`` — poisoning recovery.  Reject it before the queue.
    """
    if isinstance(value, str):
        if value:
            return value
        raise HttpError(400, "vertex labels must be non-empty")
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return value
    raise HttpError(400, f"vertex labels must be JSON strings or numbers, got {value!r}")


def _parse_prior(value: object) -> Optional[float]:
    """Validate an optional vertex prior (null or a non-negative number)."""
    if value is None:
        return None
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        if value >= 0:
            return float(value)
        raise HttpError(400, f"vertex priors must be >= 0, got {value}")
    raise HttpError(400, f"vertex priors must be numbers or null, got {value!r}")


def _parse_update(item: object) -> EdgeUpdate:
    """Coerce one wire-format edge into an :class:`EdgeUpdate` insert."""
    if isinstance(item, Mapping):
        try:
            src = item["src"]
            dst = item["dst"]
        except KeyError as exc:
            raise HttpError(400, f"edge object missing key {exc}")
        weight = item.get("weight", 1.0)
        src_prior = item.get("src_prior")
        dst_prior = item.get("dst_prior")
    elif isinstance(item, Sequence) and not isinstance(item, (str, bytes)):
        if len(item) == 2:
            src, dst = item
            weight, src_prior, dst_prior = 1.0, None, None
        elif len(item) == 3:
            src, dst, weight = item
            src_prior = dst_prior = None
        else:
            raise HttpError(400, f"edge rows must be [src, dst] or [src, dst, weight], got {item!r}")
    else:
        raise HttpError(400, f"unsupported edge shape {item!r}")
    try:
        weight = float(weight)
    except (TypeError, ValueError):
        raise HttpError(400, f"edge weight must be a number, got {weight!r}")
    if weight <= 0:
        raise HttpError(400, f"edge weight must be > 0, got {weight}")
    src = _parse_label(src)
    dst = _parse_label(dst)
    if src == dst:
        # Reject before the WAL sees it: the graph layer would refuse the
        # self loop anyway, and a pre-validated request fails fast with
        # 400 instead of poisoning a coalesced batch.
        raise HttpError(400, f"self loops are not part of the transaction model: {src!r}")
    return EdgeUpdate(
        src, dst, weight, src_weight=_parse_prior(src_prior), dst_weight=_parse_prior(dst_prior)
    )


def _int_query(request: Request, name: str, default: int, minimum: int, maximum: int) -> int:
    raw = request.query.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise HttpError(400, f"query parameter {name} must be an integer, got {raw!r}")
    if not minimum <= value <= maximum:
        raise HttpError(400, f"query parameter {name} must be in [{minimum}, {maximum}]")
    return value


def _float_query(request: Request, name: str, default: float) -> float:
    raw = request.query.get(name)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        raise HttpError(400, f"query parameter {name} must be a number, got {raw!r}")


class ServeApp:
    """One configured serving deployment (engine + durability + HTTP)."""

    def __init__(
        self,
        config: Union[EngineConfig, Mapping[str, object]],
        semantics: Optional[PeelingSemantics] = None,
        initial_edges: Optional[List[tuple]] = None,
    ) -> None:
        if isinstance(config, Mapping):
            config = EngineConfig.from_dict(config)
        if config.serve is None:
            config = config.replace(serve=ServeConfig())
        self.config = config
        self.serve_config: ServeConfig = config.serve  # type: ignore[assignment]
        self._semantics = semantics
        self._initial_edges = initial_edges
        self._started_at = time.time()

        self.metrics = MetricsRegistry()
        self._m_requests = self.metrics.counter(
            "repro_http_requests_total", "HTTP requests handled"
        )
        self._m_detect_latency = self.metrics.histogram(
            "repro_detect_seconds", "GET /v1/detect end-to-end handler time"
        )
        self._m_version = self.metrics.gauge(
            "repro_snapshot_version", "WAL sequence the latest snapshot reflects"
        )
        self._m_vertices = self.metrics.gauge(
            "repro_graph_vertices", "Vertices in the live graph"
        )
        self._m_edges = self.metrics.gauge(
            "repro_graph_edges", "Unique directed edges in the live graph"
        )
        self._m_checkpoint_fallbacks = self.metrics.counter(
            "repro_checkpoint_fallbacks_total",
            "Corrupt/unloadable checkpoints skipped in favor of an older one",
        )
        self._m_kernel = self.metrics.gauge(
            "repro_kernel_active",
            "1 when the compiled native kernels serve the hot loops, else 0",
        )
        self._m_build = self.metrics.gauge(
            "repro_build_info",
            "Deployment configuration (value is always 1; the labels carry it)",
            labelnames=("version", "kernel", "backend", "shards", "workers"),
        )
        self._m_traces = self.metrics.counter(
            "repro_traces_recorded_total",
            "Traces recorded to the ring buffer (sampled + slow)",
        )
        self._m_trace_log_errors = self.metrics.counter(
            "repro_trace_log_errors_total",
            "Event-log appends that failed (tracing keeps serving)",
        )
        self._m_profile_seconds = self.metrics.gauge(
            "repro_profile_seconds",
            "Cumulative wall seconds per peel/reorder phase (process + workers)",
            labelnames=("phase", "kernel"),
        )
        self._m_profile_calls = self.metrics.gauge(
            "repro_profile_calls",
            "Cumulative passes per peel/reorder phase (process + workers)",
            labelnames=("phase", "kernel"),
        )

        # --- observability (tracing + event log) ----------------------- #
        self.obs_config = self.serve_config.obs
        self.recorder = TraceRecorder(self.obs_config.trace_buffer)
        self._event_log: Optional[EventLog] = None
        self.trace_log_path: Optional[Path] = None
        trace_log = self.obs_config.trace_log
        if trace_log == "auto":
            trace_log = (
                str(Path(self.serve_config.wal_dir) / "events.jsonl")
                if self.serve_config.wal_dir is not None
                else None
            )
        if trace_log is not None:
            self.trace_log_path = Path(trace_log)
            self._event_log = EventLog(self.trace_log_path)

        # --- fault injection (chaos testing only) --------------------- #
        self._injector = None
        if self.serve_config.faults is not None:
            from repro.serve.faults import FaultInjector, FaultPlan

            self._injector = FaultInjector(FaultPlan.from_file(self.serve_config.faults))

        # --- kernel resolution (before recovery: a "native" request
        # that cannot be honoured should fail at boot, not mid-replay) -- #
        self.active_kernel: str = _native.resolve_kernel(config.kernel)
        self._m_kernel.set(1 if self.active_kernel == "native" else 0)

        # --- engine (recover or fresh boot) --------------------------- #
        recovered = recover(config, semantics=semantics, initial_edges=initial_edges)
        self.client = recovered.client
        self.recovered_ops = recovered.replayed_ops
        self.wal_corruption = recovered.wal_corruption
        self.checkpoint_fallbacks = recovered.checkpoint_fallbacks
        self.checkpoint_errors = 0
        self._m_checkpoint_fallbacks.inc(recovered.checkpoint_fallbacks)
        self._worker_engine: Optional["WorkerEngine"] = None
        if self.serve_config.workers > 1:
            # Multi-core serving: recovery rebuilt the exact single-engine
            # graph; hand it to process-resident shard workers as the
            # coordinator mirror.  Deferred (grouped) edges are flushed
            # first so no accepted update is lost in the lift — merged
            # worker-mode detection is flush-consistent anyway.
            from repro.api.client import SpadeClient
            from repro.serve.workers import WorkerEngine

            self.client.engine.flush_pending()
            engine = WorkerEngine(
                self.client.semantics,
                num_shards=self.serve_config.workers,
                edge_grouping=config.edge_grouping,
                backend=self.client.backend,
                coordinator_interval=config.coordinator_interval,
                kernel=config.kernel,
                metrics=self.metrics,
                injector=self._injector,
            )
            engine.load_graph(self.client.graph)
            self.client = SpadeClient.wrap(engine)
            self._worker_engine = engine
        self._m_build.labels(
            version=__version__,
            kernel=self.active_kernel,
            backend=self.client.backend,
            shards=self.client.shards,
            workers=self.serve_config.workers,
        ).set(1)
        self._lock = asyncio.Lock()
        self.service = SnapshotService(self.client, self._lock)

        # --- durability ----------------------------------------------- #
        self._wal: Optional[WriteAheadLog] = None
        self._checkpoints: Optional[CheckpointStore] = None
        self._checkpoint_seq: Optional[int] = None
        if self.serve_config.wal_dir is not None:
            self._checkpoints = CheckpointStore(
                self.serve_config.wal_dir, injector=self._injector
            )
            self._wal = WriteAheadLog(
                self.serve_config.wal_dir,
                fsync=self.serve_config.fsync,
                next_seq=recovered.wal_seq + 1,
                truncate_at=recovered.wal_offset,
                injector=self._injector,
            )
            if recovered.wal_seq == 0 and recovered.wal_offset == 0:
                # First boot: cut checkpoint zero so recovery never needs
                # the initial edge list again.
                self._cut_checkpoint(0, 0)
            if self._checkpoint_seq is None:
                self._checkpoint_seq = self._checkpoints.newest_seq()

        # --- time travel + historical analytics ------------------------ #
        self.asof: Optional[AsofService] = None
        self._indexer_task: Optional[IndexerTask] = None
        self.history_db: Optional[Path] = None
        history_cfg = self.serve_config.history
        if self.serve_config.wal_dir is not None:
            # As-of reads only need the WAL + checkpoints, so they are on
            # whenever durability is — the history sidecar is opt-in.
            m_hits = self.metrics.counter(
                "repro_asof_cache_hits_total", "As-of snapshot cache hits"
            )
            m_misses = self.metrics.counter(
                "repro_asof_cache_misses_total", "As-of snapshot cache misses"
            )
            m_reconstruct = self.metrics.histogram(
                "repro_asof_reconstruct_seconds",
                "Cold as-of reconstructions (checkpoint load + WAL-suffix replay)",
            )
            self.asof = AsofService(
                config,
                semantics=semantics,
                cache_size=(
                    history_cfg.asof_cache_size if history_cfg is not None else 8
                ),
                counters={
                    "hit": m_hits.inc,
                    "miss": m_misses.inc,
                    "reconstruct": m_reconstruct.observe,
                },
            )
            if history_cfg is not None:
                self.history_db = resolve_db_path(
                    self.serve_config.wal_dir, history_cfg
                )
                # Create the schema now so /v1/history answers (empty)
                # before the indexer's first poll instead of racing it.
                HistoryStore(self.history_db).close()
                self._m_history_epochs = self.metrics.counter(
                    "repro_history_epochs_total",
                    "Epochs this process appended to the cold store",
                )
                self._m_history_lag = self.metrics.gauge(
                    "repro_history_indexer_lag",
                    "WAL sequences between the durable head and the last indexed epoch",
                )
                self._indexer_task = IndexerTask(
                    HistoryIndexer(
                        self.serve_config.wal_dir,
                        history_cfg,
                        config=config,
                        semantics=semantics,
                    ),
                    history_cfg.poll_ms,
                    on_step=self._on_index_step,
                )

        self.gateway = IngestGateway(
            self.client,
            self.service,
            self._lock,
            self.serve_config,
            self.metrics,
            wal=self._wal,
            checkpoint=self._cut_checkpoint if self._checkpoints is not None else None,
        )
        if recovered.wal_corruption is not None:
            # The recovery scan dropped a corrupt WAL suffix — count it
            # (the gateway registered the family) and let /healthz carry
            # the reason so the truncation is reported, never silent.
            self.metrics.get("repro_wal_errors_total").inc()
        self._initial_seq = recovered.wal_seq
        self.server = HttpServer(
            self._handle,
            host=self.serve_config.host,
            port=self.serve_config.port,
            max_body=self.serve_config.max_body_bytes,
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def _cut_checkpoint(self, wal_seq: int, wal_offset: int) -> None:
        """Freeze the engine graph and persist a checkpoint (writer-held).

        A checkpoint that cannot be written (disk full — injected or
        real) is skipped rather than failing the commit: the WAL already
        holds the full history, so the only cost is a longer replay until
        a later interval succeeds.
        """
        assert self._checkpoints is not None
        try:
            self._checkpoints.save(self.client.snapshot(), wal_seq, wal_offset)
            self._checkpoint_seq = wal_seq
        except OSError:
            self.checkpoint_errors += 1

    def _on_index_step(self, report: Mapping[str, int]) -> None:
        """Fold one indexer poll into the metrics (loop thread)."""
        if report["new_epochs"]:
            self._m_history_epochs.inc(report["new_epochs"])
        self._m_history_lag.set(report["lag"])

    async def start(self) -> None:
        """Start the writer task and the HTTP listener; publish runinfo."""
        self.gateway.start(initial_seq=self._initial_seq)
        if self._indexer_task is not None:
            self._indexer_task.start()
        await self.server.start()
        if self.serve_config.wal_dir is not None:
            runinfo = {
                "host": self.serve_config.host,
                "port": self.server.port,
                "pid": os.getpid(),
                "version": __version__,
            }
            path = Path(self.serve_config.wal_dir) / RUNINFO_FILENAME
            path.write_text(json.dumps(runinfo), encoding="utf-8")

    async def stop(self) -> None:
        """Stop listening, drain pending writes, sync the WAL."""
        await self.server.stop()
        await self.gateway.stop()
        if self._indexer_task is not None:
            await self._indexer_task.stop()
        if self._wal is not None:
            self._wal.sync()
            self._wal.close()
        if self._event_log is not None:
            self._event_log.close()
        if self._worker_engine is not None:
            self._worker_engine.close()

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    async def _handle(self, request: Request) -> Response:
        """Trace-wrapping entry point: every request gets a trace id.

        The id goes on the response (or error) header either way; the
        span tree is only collected when the deterministic sampler says
        so, and the finished trace is recorded when sampled *or* slower
        than ``obs.slow_ms`` (retroactively, without spans).
        """
        self._m_requests.inc()
        trace = TraceContext.new(
            request.method, request.path, self.obs_config.trace_sample
        )
        try:
            response = await self._dispatch(request, trace)
        except HttpError as exc:
            self._finish_trace(trace, exc.status)
            headers = dict(exc.headers or {})
            headers["X-Repro-Trace-Id"] = trace.trace_id
            exc.headers = headers
            raise
        except Exception:
            self._finish_trace(trace, 500)
            raise
        self._finish_trace(trace, response.status)
        response.headers["X-Repro-Trace-Id"] = trace.trace_id
        return response

    def _finish_trace(self, trace: TraceContext, status: int) -> None:
        """Record a completed trace to the ring + event log when warranted."""
        duration = trace.finish(status)
        slow = (
            self.obs_config.slow_ms > 0
            and duration * 1000.0 >= self.obs_config.slow_ms
        )
        if not (trace.sampled or slow):
            return
        record = trace.to_dict("sampled" if trace.sampled else "slow")
        self.recorder.record(record)
        self._m_traces.inc()
        if self._event_log is not None:
            try:
                self._event_log.write(record)
            except OSError:
                self._m_trace_log_errors.inc()

    async def _dispatch(self, request: Request, trace: TraceContext) -> Response:
        path = request.path.rstrip("/") or "/"
        try:
            if path == "/healthz":
                return await self._handle_health(request)
            if path == "/metrics":
                return await self._handle_metrics(request)
            if path == "/debug/traces":
                self._require(request, "GET")
                return await self._handle_traces(request)
            if path == "/debug/profile":
                self._require(request, "GET")
                return await self._handle_profile(request)
            if path == "/v1/edges":
                self._require(request, "POST")
                return await self._handle_edges(request, trace)
            if path == "/v1/flush":
                self._require(request, "POST")
                return await self._handle_flush(request, trace)
            if path == "/v1/detect":
                self._require(request, "GET")
                return await self._handle_detect(request, trace)
            if path == "/v1/communities":
                self._require(request, "GET")
                return await self._handle_communities(request)
            if path.startswith("/v1/vertices/"):
                self._require(request, "GET")
                return await self._handle_vertex(request, path[len("/v1/vertices/"):])
            if path == "/v1/history/epochs":
                self._require(request, "GET")
                return await self._handle_history_epochs(request)
            if path == "/v1/history/communities":
                self._require(request, "GET")
                return await self._handle_history_communities(request)
            if path.startswith("/v1/history/vertices/"):
                self._require(request, "GET")
                return await self._handle_history_vertex(
                    request, path[len("/v1/history/vertices/"):]
                )
        except DegradedError as exc:
            raise self._degraded_http(exc) from exc
        except ReproError as exc:
            raise HttpError(400, str(exc)) from exc
        raise HttpError(404, f"no route for {request.method} {request.path}")

    @staticmethod
    def _require(request: Request, method: str) -> None:
        if request.method != method:
            raise HttpError(405, f"{request.path} requires {method}")

    # ------------------------------------------------------------------ #
    # Write path
    # ------------------------------------------------------------------ #
    async def _handle_edges(self, request: Request, trace: TraceContext) -> Response:
        payload = request.json()
        if isinstance(payload, Mapping) and "edges" in payload:
            rows = payload["edges"]
            if not isinstance(rows, Sequence) or isinstance(rows, (str, bytes)):
                raise HttpError(400, '"edges" must be an array')
            if isinstance(payload.get("op"), str) and payload["op"] == "delete":
                edges = []
                for row in rows:
                    if (
                        not isinstance(row, Sequence)
                        or isinstance(row, (str, bytes))
                        or len(row) != 2
                    ):
                        raise HttpError(400, f"delete rows must be [src, dst], got {row!r}")
                    edges.append((_parse_label(row[0]), _parse_label(row[1])))
                if not edges:
                    raise HttpError(400, "empty delete")
                return await self._submit("delete", edges, len(edges), trace)
            updates = [_parse_update(row) for row in rows]
        elif isinstance(payload, Sequence) and not isinstance(payload, (str, bytes)):
            updates = [_parse_update(row) for row in payload]
        else:
            updates = [_parse_update(payload)]
        if not updates:
            raise HttpError(400, "empty edge list")
        return await self._submit("insert", updates, len(updates), trace)

    async def _handle_flush(self, request: Request, trace: TraceContext) -> Response:
        return await self._submit("flush", (), 0, trace)

    def _degraded_http(self, exc: DegradedError) -> HttpError:
        """Map read-only degraded mode to ``503`` + ``Retry-After``."""
        retry_after = max(1, round(self.serve_config.probe_interval_ms / 1000.0))
        return HttpError(
            503,
            str(exc),
            headers={"Retry-After": str(retry_after)},
        )

    async def _submit(
        self,
        kind: str,
        updates: Sequence,
        edges: int,
        trace: Optional[TraceContext] = None,
    ) -> Response:
        try:
            future = self.gateway.submit(kind, updates, edges, trace)
        except DegradedError as exc:
            raise self._degraded_http(exc) from exc
        if future is None:
            retry_after = max(1, int(self.serve_config.max_delay_ms / 1000.0) + 1)
            raise HttpError(
                429,
                "ingest queue is full",
                headers={"Retry-After": str(retry_after)},
            )
        try:
            result = await future
        except DegradedError as exc:
            # The window this submission rode in hit a WAL append failure:
            # nothing of it was acked or made durable, so 503 + retry is
            # the truthful answer while reads keep serving.
            raise self._degraded_http(exc) from exc
        if "error" in result:
            # The operation was durably logged but deterministically
            # rejected by the engine (e.g. deleting an unknown edge).
            # Recovery skips it the same way, so 400 is the final word.
            raise HttpError(400, str(result["error"]))
        self._m_version.set(result["version"])  # type: ignore[arg-type]
        result = dict(result)
        result["accepted"] = edges
        return json_response(200, result)

    # ------------------------------------------------------------------ #
    # Read path
    # ------------------------------------------------------------------ #
    def _asof_seq(self, request: Request) -> Optional[int]:
        """The validated ``asof`` query parameter, or None when absent.

        Only integer syntax is checked here — range validation (negative,
        beyond the durable head) lives in
        :meth:`~repro.history.asof.AsofService.snapshot_at`, which knows
        the head and raises :class:`~repro.errors.AsofRangeError` → 400.
        """
        raw = request.query.get("asof")
        if raw is None:
            return None
        try:
            seq = int(raw)
        except ValueError:
            raise HttpError(400, f"query parameter asof must be an integer, got {raw!r}")
        if self.asof is None:
            raise HttpError(400, "asof reads require a WAL directory (serve.wal_dir)")
        return seq

    async def _handle_detect(self, request: Request, trace: TraceContext) -> Response:
        asof_seq = self._asof_seq(request)
        if asof_seq is not None:
            head = self.gateway.seq
            began = time.perf_counter()
            report = await asyncio.get_running_loop().run_in_executor(
                None, self.asof.detect_at, asof_seq, head
            )
            trace.add_span("asof_detect", began, time.perf_counter(), seq=asof_seq)
            return json_response(200, report)
        began = time.perf_counter()
        report = await self.service.detect()
        ended = time.perf_counter()
        self._m_detect_latency.observe(ended - began)
        trace.add_span("detect", began, ended, version=report.get("version"))
        self._m_version.set(report["version"])  # type: ignore[arg-type]
        return json_response(200, report)

    async def _handle_communities(self, request: Request) -> Response:
        offset = _int_query(request, "offset", 0, 0, 10**6)
        limit = _int_query(request, "limit", 10, 1, 1000)
        min_density = _float_query(request, "min_density", 0.0)
        min_size = _int_query(request, "min_size", 2, 1, 10**6)
        after_rank: Optional[int] = None
        cursor_token = request.query.get("cursor")
        if cursor_token is not None:
            # Keyset mode: the opaque token supersedes any offset.
            position = decode_cursor(cursor_token, "communities")
            after_rank = cursor_int(position, "rank")
            if after_rank < 0:
                raise HttpError(400, f"cursor rank must be >= 0, got {after_rank}")
        asof_seq = self._asof_seq(request)
        if asof_seq is not None:
            head = self.gateway.seq
            start = offset if after_rank is None else after_rank + 1
            loop = asyncio.get_running_loop()
            report = await loop.run_in_executor(
                None,
                lambda: self.asof.communities_at(
                    asof_seq,
                    head,
                    start=start,
                    limit=limit,
                    min_density=min_density,
                    min_size=min_size,
                ),
            )
            if after_rank is None:
                report["offset"] = offset
        else:
            report = await self.service.communities(
                offset=offset,
                limit=limit,
                min_density=min_density,
                min_size=min_size,
                after_rank=after_rank,
            )
        next_rank = report.pop("next_rank", None)
        report["next_cursor"] = (
            encode_cursor("communities", rank=next_rank)
            if report.get("has_more") and next_rank is not None
            else None
        )
        return json_response(200, report)

    async def _handle_vertex(self, request: Request, label: str) -> Response:
        if not label:
            raise HttpError(404, "missing vertex label")
        info = await self.service.vertex(label)
        if info is None:
            raise HttpError(404, f"unknown vertex {label!r}")
        return json_response(200, info)

    # ------------------------------------------------------------------ #
    # Historical analytics (the SQLite cold store)
    # ------------------------------------------------------------------ #
    async def _history_query(self, fn, *args, **kwargs) -> Response:
        """Run one cold-store query off the loop on a per-request connection.

        SQLite connections are cheap to open and thread-affine, so each
        request opens/uses/closes one inside a single executor thread —
        no pooling, no cross-thread handles, and the indexer's WAL-mode
        writer never blocks these readers.
        """
        if self.history_db is None:
            raise HttpError(
                404,
                "historical analytics are not enabled "
                "(configure serve.history / --history-db)",
            )
        path = self.history_db

        def _run():
            conn = history_connect(path)
            try:
                return fn(conn, *args, **kwargs)
            finally:
                conn.close()

        report = await asyncio.get_running_loop().run_in_executor(None, _run)
        return json_response(200, report)

    async def _handle_history_epochs(self, request: Request) -> Response:
        limit = _int_query(request, "limit", 50, 1, 1000)
        cursor = request.query.get("cursor")
        return await self._history_query(
            history_queries.epochs_page, cursor=cursor, limit=limit
        )

    async def _handle_history_communities(self, request: Request) -> Response:
        rank = _int_query(request, "rank", 0, 0, 10**6)
        limit = _int_query(request, "limit", 50, 1, 1000)
        cursor = request.query.get("cursor")
        return await self._history_query(
            history_queries.community_timeline, rank=rank, cursor=cursor, limit=limit
        )

    async def _handle_history_vertex(self, request: Request, label: str) -> Response:
        if not label:
            raise HttpError(404, "missing vertex label")
        limit = _int_query(request, "limit", 50, 1, 1000)
        min_density = _float_query(request, "min_density", 0.0)
        min_size = _int_query(request, "min_size", 1, 1, 10**6)
        cursor = request.query.get("cursor")
        return await self._history_query(
            history_queries.vertex_history,
            label,
            cursor=cursor,
            limit=limit,
            min_density=min_density,
            min_size=min_size,
        )

    # ------------------------------------------------------------------ #
    # Operational endpoints
    # ------------------------------------------------------------------ #
    async def _handle_health(self, request: Request) -> Response:
        graph = self.client.graph
        payload = {
            "status": "degraded" if self.gateway.degraded else "ok",
            "version": self.service.version,
            "vertices": graph.num_vertices(),
            "edges": graph.num_edges(),
            "pending": self.client.pending_edges(),
            "semantics": self.client.semantics.name,
            "backend": self.client.backend,
            "shards": self.client.shards,
            "kernel": {
                "requested": self.config.kernel,
                "active": self.active_kernel,
                "native_available": _native.available(),
            },
            "uptime_seconds": round(time.time() - self._started_at, 3),
            "recovered_ops": self.recovered_ops,
            "library_version": __version__,
        }
        if self.gateway.degraded:
            payload["degraded_reason"] = self.gateway.degraded_reason
        if self.wal_corruption is not None:
            payload["wal_corruption"] = self.wal_corruption
        if self.checkpoint_fallbacks:
            payload["checkpoint_fallbacks"] = self.checkpoint_fallbacks
        if self.checkpoint_errors:
            payload["checkpoint_errors"] = self.checkpoint_errors
        payload["wal_errors"] = int(self.metrics.get("repro_wal_errors_total").value)
        if self._wal is not None:
            payload["wal_seq"] = self.gateway.seq
        if self._checkpoint_seq is not None:
            payload["checkpoint_seq"] = self._checkpoint_seq
        if self.asof is not None:
            payload["asof_cache"] = self.asof.cache_stats()
        if self._indexer_task is not None:
            payload["history"] = self._indexer_task.status()
        if self._worker_engine is not None:
            payload["workers"] = {
                "count": self._worker_engine.num_shards,
                "pids": self._worker_engine.worker_pids(),
                "restarts": list(self._worker_engine.worker_restarts),
                "fallback": self._worker_engine.fallback,
                "fallback_reason": self._worker_engine.fallback_reason,
            }
        return json_response(200, payload)

    async def _handle_metrics(self, request: Request) -> Response:
        graph = self.client.graph
        self._m_vertices.set(graph.num_vertices())
        self._m_edges.set(graph.num_edges())
        self._m_version.set(self.service.version)
        if self._indexer_task is not None:
            self._m_history_lag.set(self._indexer_task.lag)
        self._refresh_profile_metrics(self._merged_profile())
        return Response(
            200,
            self.metrics.render().encode("utf-8"),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    # ------------------------------------------------------------------ #
    # Debug surface (tracing + profiling)
    # ------------------------------------------------------------------ #
    async def _handle_traces(self, request: Request) -> Response:
        min_ms = _float_query(request, "min_ms", 0.0)
        limit = _int_query(request, "limit", 50, 1, 10**6)
        trace_id = request.query.get("trace_id")
        if trace_id is not None:
            found = self.recorder.find(trace_id)
            traces = [found] if found is not None else []
        else:
            traces = self.recorder.slowest(min_ms=min_ms, limit=limit)
        return json_response(
            200,
            {
                "count": len(traces),
                "capacity": self.recorder.capacity,
                "recorded": self.recorder.total_recorded,
                "sample_rate": self.obs_config.trace_sample,
                "slow_ms": self.obs_config.slow_ms,
                "traces": traces,
            },
        )

    def _merged_profile(self) -> Dict[str, Dict[str, float]]:
        """Process counters + the latest snapshot from every shard worker."""
        tables = [obs_profile.snapshot()]
        if self._worker_engine is not None:
            tables.extend(self._worker_engine.worker_profiles().values())
        return obs_profile.merge(tables)

    def _refresh_profile_metrics(self, merged: Dict[str, Dict[str, float]]) -> None:
        """Mirror the merged profile table into the labeled gauges."""
        for key, cell in merged.items():
            phase, kernel = obs_profile.split_key(key)
            self._m_profile_seconds.labels(phase=phase, kernel=kernel).set(
                cell["seconds"]
            )
            self._m_profile_calls.labels(phase=phase, kernel=kernel).set(
                cell["calls"]
            )

    async def _handle_profile(self, request: Request) -> Response:
        process = obs_profile.snapshot()
        workers = (
            self._worker_engine.worker_profiles()
            if self._worker_engine is not None
            else {}
        )
        merged = obs_profile.merge([process, *workers.values()])
        self._refresh_profile_metrics(merged)
        return json_response(
            200,
            {
                "kernel": self.active_kernel,
                "process": process,
                "workers": workers,
                "merged": merged,
            },
        )
