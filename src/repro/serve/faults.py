"""Deterministic, seedable fault injection for the serving stack.

Durability claims are only as strong as the fault matrix they are tested
against (SQLite's WAL discipline is the model: checksummed frames,
recovery that stops at the first invalid frame).  This module is the
serving layer's chaos harness: a JSON **fault plan** describes *which*
I/O seam misbehaves, *when* (by per-site invocation count, so runs are
bit-reproducible), and *how* — and a :class:`FaultInjector` built from
the plan is threaded through the seams at deployment construction time
(``ServeConfig.faults`` / ``--faults plan.json``).

Plan shape (one JSON object)::

    {
      "seed": 7,
      "faults": [
        {"site": "wal.append",      "kind": "disk_full", "at": 8, "count": 4},
        {"site": "wal.append",      "kind": "bit_flip",  "at": 12},
        {"site": "wal.append",      "kind": "torn_write","at": 20},
        {"site": "checkpoint.save", "kind": "truncate",  "at": 2},
        {"site": "worker.post",     "kind": "eio",       "at": 30},
        {"site": "worker.spawn",    "kind": "crash",     "at": 5, "count": null}
      ]
    }

A rule fires on invocations ``at .. at+count-1`` of its site (1-based;
``count`` of ``null`` means forever; ``every`` adds a periodic repeat).
Counters are per-site and include degraded-mode probes on ``wal.append``,
so a count-limited ``disk_full`` deterministically "frees disk space"
after the configured number of failed appends/probes — which is exactly
what the auto-probe re-entry test needs.

Sites and the faults they accept
--------------------------------
``wal.append``
    ``disk_full`` / ``eio``  — the append raises ``OSError`` (ENOSPC /
    EIO) before any byte is written;
    ``torn_write``           — a prefix of the record reaches the file,
    then the append raises (a crash/partial-sector model; the writer
    self-repairs the fragment on its next successful append);
    ``bit_flip``             — the record is written with one flipped
    bit and the append *succeeds* (silent on-disk corruption — only the
    CRC on the read path can catch it).
``checkpoint.save``
    ``truncate``  — the freshly written ``.npz`` payload is truncated
    before it is published (torn checkpoint);
    ``disk_full`` — the save raises ``OSError(ENOSPC)``.
``worker.spawn``
    ``crash`` — the freshly spawned shard worker is SIGKILLed
    immediately (a crash-looping worker when the rule repeats).
``worker.post`` / ``worker.collect``
    ``eio`` / ``hang`` — the coordinator-side pipe operation fails
    (raises :class:`InjectedFault`), which the worker engine treats
    exactly like a broken pipe / request timeout.
"""

from __future__ import annotations

import errno
import json
import os
import random
import signal
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import ConfigError

__all__ = ["FaultPlan", "FaultRule", "FaultInjector", "InjectedFault", "SITE_KINDS"]

PathLike = Union[str, Path]

#: Which fault kinds each site understands.
SITE_KINDS: Dict[str, Tuple[str, ...]] = {
    "wal.append": ("disk_full", "eio", "torn_write", "bit_flip"),
    "checkpoint.save": ("truncate", "disk_full"),
    "worker.spawn": ("crash",),
    "worker.post": ("eio",),
    "worker.collect": ("hang",),
}


class InjectedFault(OSError):
    """An injected I/O failure; carries the site and kind that fired."""

    def __init__(self, err: int, site: str, kind: str, invocation: int) -> None:
        super().__init__(err, f"injected {kind} at {site}#{invocation}")
        self.site = site
        self.kind = kind
        self.invocation = invocation


@dataclass(frozen=True)
class FaultRule:
    """One entry of a fault plan: fire ``kind`` at site invocations."""

    site: str
    kind: str
    at: int = 1
    count: Optional[int] = 1
    every: Optional[int] = None

    def __post_init__(self) -> None:
        kinds = SITE_KINDS.get(self.site)
        if kinds is None:
            raise ConfigError(
                f"unknown fault site {self.site!r}; valid sites: "
                f"{', '.join(sorted(SITE_KINDS))}"
            )
        if self.kind not in kinds:
            raise ConfigError(
                f"fault kind {self.kind!r} is not valid at {self.site!r}; "
                f"valid kinds: {', '.join(kinds)}"
            )
        if self.at < 1:
            raise ConfigError(f"fault 'at' must be >= 1, got {self.at}")
        if self.count is not None and self.count < 1:
            raise ConfigError(f"fault 'count' must be >= 1 or null, got {self.count}")
        if self.every is not None and self.every < 1:
            raise ConfigError(f"fault 'every' must be >= 1 or null, got {self.every}")

    def fires(self, invocation: int) -> bool:
        """Does this rule fire on the given 1-based site invocation?"""
        if invocation < self.at:
            return False
        if self.count is None:
            return True
        if invocation < self.at + self.count:
            return True
        if self.every is not None:
            return (invocation - self.at) % self.every < self.count
        return False

    def to_dict(self) -> Dict[str, object]:
        return {
            "site": self.site,
            "kind": self.kind,
            "at": self.at,
            "count": self.count,
            "every": self.every,
        }


class FaultPlan:
    """A validated, JSON-round-trippable set of fault rules."""

    def __init__(self, rules: Sequence[FaultRule], seed: int = 0) -> None:
        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        self.seed = int(seed)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FaultPlan":
        unknown = sorted(set(data) - {"seed", "faults"})
        if unknown:
            raise ConfigError(f"unknown fault plan keys: {', '.join(unknown)}")
        raw = data.get("faults", [])
        if not isinstance(raw, Sequence) or isinstance(raw, (str, bytes)):
            raise ConfigError('"faults" must be an array of rule objects')
        rules = []
        for entry in raw:
            if not isinstance(entry, Mapping):
                raise ConfigError(f"fault rules must be objects, got {entry!r}")
            extra = sorted(set(entry) - {"site", "kind", "at", "count", "every"})
            if extra:
                raise ConfigError(f"unknown fault rule keys: {', '.join(extra)}")
            try:
                site = str(entry["site"])
                kind = str(entry["kind"])
            except KeyError as exc:
                raise ConfigError(f"fault rule missing key {exc}")
            rules.append(
                FaultRule(
                    site=site,
                    kind=kind,
                    at=int(entry.get("at", 1)),
                    count=None if entry.get("count", 1) is None else int(entry.get("count", 1)),
                    every=None if entry.get("every") is None else int(entry["every"]),
                )
            )
        return cls(rules, seed=int(data.get("seed", 0)))  # type: ignore[arg-type]

    @classmethod
    def from_file(cls, path: PathLike) -> "FaultPlan":
        with Path(path).open("r", encoding="utf-8") as handle:
            try:
                data = json.load(handle)
            except json.JSONDecodeError as exc:
                raise ConfigError(f"{path}: fault plan is not valid JSON: {exc}")
        if not isinstance(data, Mapping):
            raise ConfigError(f"{path}: fault plan must be a JSON object")
        return cls.from_dict(data)

    def to_dict(self) -> Dict[str, object]:
        return {"seed": self.seed, "faults": [rule.to_dict() for rule in self.rules]}


class FaultInjector:
    """Plan-driven fault dispenser, one per deployment.

    Call sites invoke one hook per seam; each hook bumps the site's
    invocation counter and consults the plan.  ``fired`` keeps a log of
    every fault that actually fired (site, kind, invocation), which the
    smoke harness folds into its report.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self._plan = plan
        self._counts: Dict[str, int] = {}
        self.fired: List[Dict[str, object]] = []

    def _next(self, site: str) -> int:
        count = self._counts.get(site, 0) + 1
        self._counts[site] = count
        return count

    def _match(self, site: str, invocation: int) -> Optional[FaultRule]:
        for rule in self._plan.rules:
            if rule.site == site and rule.fires(invocation):
                self._record(rule, invocation)
                return rule
        return None

    def _record(self, rule: FaultRule, invocation: int) -> None:
        self.fired.append(
            {"site": rule.site, "kind": rule.kind, "invocation": invocation}
        )

    def _rng(self, site: str, invocation: int) -> random.Random:
        return random.Random(f"{self._plan.seed}:{site}:{invocation}")

    # ------------------------------------------------------------------ #
    # wal.append — consumed by JsonlWriter (duck-typed)
    # ------------------------------------------------------------------ #
    def before_append(self, payload: bytes) -> Tuple[bytes, Optional[OSError]]:
        """Decide one WAL append's fate: ``(bytes_to_write, error_or_None)``.

        ``disk_full``/``eio`` write nothing and raise; ``torn_write``
        persists a prefix then raises; ``bit_flip`` persists a corrupted
        record and reports success (silent corruption).
        """
        invocation = self._next("wal.append")
        rule = self._match("wal.append", invocation)
        if rule is None:
            return payload, None
        if rule.kind == "disk_full":
            return b"", InjectedFault(errno.ENOSPC, rule.site, rule.kind, invocation)
        if rule.kind == "eio":
            return b"", InjectedFault(errno.EIO, rule.site, rule.kind, invocation)
        rng = self._rng("wal.append", invocation)
        if rule.kind == "torn_write":
            cut = rng.randrange(1, max(2, len(payload)))
            return (
                payload[:cut],
                InjectedFault(errno.EIO, rule.site, rule.kind, invocation),
            )
        # bit_flip: flip one bit somewhere before the trailing newline.
        index = rng.randrange(0, max(1, len(payload) - 1))
        bit = 1 << rng.randrange(8)
        flipped = bytearray(payload)
        flipped[index] ^= bit
        return bytes(flipped), None

    # ------------------------------------------------------------------ #
    # checkpoint.save — consumed by CheckpointStore
    # ------------------------------------------------------------------ #
    def on_checkpoint_payload(self, path: PathLike) -> None:
        """Maybe damage a just-written checkpoint payload (pre-publish)."""
        invocation = self._next("checkpoint.save")
        rule = self._match("checkpoint.save", invocation)
        if rule is None:
            return
        if rule.kind == "disk_full":
            raise InjectedFault(errno.ENOSPC, rule.site, rule.kind, invocation)
        size = os.path.getsize(path)
        rng = self._rng("checkpoint.save", invocation)
        keep = rng.randrange(1, max(2, size // 2))
        with open(path, "rb+") as handle:
            handle.truncate(keep)
            handle.flush()
            os.fsync(handle.fileno())

    # ------------------------------------------------------------------ #
    # worker.* — consumed by WorkerEngine
    # ------------------------------------------------------------------ #
    def on_worker_spawn(self, pid: Optional[int]) -> None:
        """Maybe SIGKILL a freshly spawned shard worker (crash loop)."""
        invocation = self._next("worker.spawn")
        rule = self._match("worker.spawn", invocation)
        if rule is not None and pid is not None:
            try:
                os.kill(pid, signal.SIGKILL)
            except OSError:
                pass

    def on_worker_pipe(self, site: str, shard: int) -> None:
        """Maybe fail a coordinator-side pipe op (``worker.post``/``collect``)."""
        invocation = self._next(site)
        rule = self._match(site, invocation)
        if rule is not None:
            raise InjectedFault(errno.EIO, site, rule.kind, invocation)
