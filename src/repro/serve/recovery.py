"""Crash recovery: snapshot checkpoints + WAL-suffix replay.

Durability is two files deep: every accepted operation is in the WAL
(:mod:`repro.serve.wal`), and every ``checkpoint_interval`` accepted edges
the writer freezes the engine's graph into an immutable
:class:`~repro.graph.csr.CsrSnapshot` and persists it as an ``.npz``
checkpoint with a small JSON sidecar recording the WAL position it covers.
Restart then costs ``load(latest checkpoint) + replay(WAL suffix)`` rather
than a full-history replay.

Bit-exactness
-------------
The engine's peeling results are sensitive to *enumeration order*: vertex
tie-breaks follow interner insertion order, and per-vertex incident
weights accumulate in edge-pool order.  A CSR snapshot preserves both —
``order`` is vertex insertion order and neighbor runs are pool runs — but
flattening loses the *global* interleaving of edge arrivals across
vertices.  :func:`edges_in_insertion_order` reconstructs a valid global
order by merging the per-source out-runs and per-destination in-runs
(each is a subsequence of the original arrival order, so a Kahn-style
merge of the two partial orders exists and **any** linear extension
rebuilds byte-identical pools).  ``tests/test_serve_recovery.py`` pins
``freeze(rebuild(freeze(g))) == freeze(g)`` array for array.
"""

from __future__ import annotations

import json
import os
import zlib
from collections import deque
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.api.client import SpadeClient
from repro.api.config import EngineConfig
from repro.errors import ReproError, StorageError
from repro.graph.backend import create_graph
from repro.graph.csr import CsrSnapshot
from repro.peeling.semantics import PeelingSemantics
from repro.serve.wal import WriteAheadLog, scan_ops

__all__ = [
    "CheckpointStore",
    "RecoveredState",
    "edges_in_insertion_order",
    "graph_from_snapshot",
    "recover",
]

PathLike = Union[str, Path]


def edges_in_insertion_order(snapshot: CsrSnapshot) -> Iterator[Tuple[int, int, float]]:
    """Yield ``(src_id, dst_id, weight)`` in a pool-faithful global order.

    Emits every unique directed edge exactly once, such that replaying the
    emissions through ``add_edge`` reproduces the snapshot's per-source
    out-pool order *and* per-destination in-pool order — the two orders
    the peeling paths are sensitive to.  Kahn's algorithm over the two
    partial orders; O(|V| + |E|).
    """
    num = snapshot.num_ids
    out_off = snapshot.out_offsets
    out_nbr = snapshot.out_neighbors
    out_w = snapshot.out_weights
    in_off = snapshot.in_offsets
    in_nbr = snapshot.in_neighbors

    # Rank of each (src, dst) edge within dst's in-pool run.
    in_rank: Dict[Tuple[int, int], int] = {}
    for dst in range(num):
        base = int(in_off[dst])
        for rank in range(int(in_off[dst + 1]) - base):
            in_rank[(int(in_nbr[base + rank]), dst)] = rank

    out_ptr = [0] * num
    in_ptr = [0] * num
    ready: deque = deque()

    def probe(src: int) -> None:
        # Enqueue src if its current out-front edge is also its
        # destination's current in-front edge.
        pos = int(out_off[src]) + out_ptr[src]
        if pos < int(out_off[src + 1]):
            dst = int(out_nbr[pos])
            if in_rank[(src, dst)] == in_ptr[dst]:
                ready.append(src)

    for vid in range(num):
        probe(vid)

    emitted = 0
    while ready:
        src = ready.popleft()
        pos = int(out_off[src]) + out_ptr[src]
        if pos >= int(out_off[src + 1]):
            continue
        dst = int(out_nbr[pos])
        if in_rank[(src, dst)] != in_ptr[dst]:
            # Stale candidate: the same vertex can be probed from both the
            # out side and the in side before its front edge is emitted.
            continue
        yield src, dst, float(out_w[pos])
        emitted += 1
        out_ptr[src] += 1
        in_ptr[dst] += 1
        probe(src)
        nxt = int(in_off[dst]) + in_ptr[dst]
        if nxt < int(in_off[dst + 1]):
            probe(int(in_nbr[nxt]))
    if emitted != snapshot.num_edges:
        raise StorageError(
            f"checkpoint snapshot is not pool-consistent: merged {emitted} of "
            f"{snapshot.num_edges} edges"
        )


def graph_from_snapshot(snapshot: CsrSnapshot, backend: str = "array"):
    """Rebuild a mutable graph whose pools mirror ``snapshot`` exactly.

    Requires a snapshot saved with labels.  Vertices are added in dense-id
    order (= original insertion order) with their priors; edges follow
    :func:`edges_in_insertion_order` with their final accumulated weights.
    """
    labels = snapshot.labels
    if labels is None:
        raise StorageError("cannot rebuild a graph from a label-less snapshot")
    graph = create_graph(backend)
    weights = snapshot.vertex_weights
    for vid in snapshot.order:
        graph.add_vertex(labels[vid], float(weights[vid]))
    for src, dst, weight in edges_in_insertion_order(snapshot):
        graph.add_edge(labels[src], labels[dst], weight)
    return graph


def _file_crc(path: PathLike) -> Tuple[int, int]:
    """``(crc32, size)`` of a file's bytes, streamed."""
    crc = 0
    size = 0
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(1 << 20)
            if not chunk:
                break
            crc = zlib.crc32(chunk, crc)
            size += len(chunk)
    return crc, size


class CheckpointStore:
    """Filesystem layout and lifecycle of ``.npz`` snapshot checkpoints.

    A checkpoint is a pair of files inside ``wal_dir``::

        checkpoint-<seq>.npz    the CsrSnapshot payload
        checkpoint-<seq>.json   {"wal_seq": n, "wal_offset": bytes,
                                 "payload_crc": c, "payload_bytes": b, ...}

    The payload is written atomically (``checkpoint-<seq>.tmp.npz`` +
    fsync + ``os.replace``, matching the sidecar's discipline) and the
    sidecar — written *after* the payload, fsynced — records the
    payload's CRC32 and size.  A crash between the two leaves a payload
    without a sidecar, which :meth:`latest` simply ignores; a payload
    whose bytes no longer match its sidecar (torn sector, truncation,
    bit rot) or that fails to load is **skipped** with a note in
    :attr:`fallbacks`, so recovery falls back to the previous complete
    checkpoint and a longer WAL replay instead of crashing.  Only the
    newest ``keep`` checkpoints are retained.
    """

    def __init__(
        self, wal_dir: PathLike, keep: int = 2, injector: Optional[object] = None
    ) -> None:
        self._dir = Path(wal_dir)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._keep = max(1, int(keep))
        self._injector = injector
        #: Human-readable reasons for every checkpoint :meth:`latest` skipped.
        self.fallbacks: List[str] = []

    @property
    def directory(self) -> Path:
        return self._dir

    def _payload_path(self, wal_seq: int) -> Path:
        return self._dir / f"checkpoint-{wal_seq:012d}.npz"

    def _meta_path(self, wal_seq: int) -> Path:
        return self._dir / f"checkpoint-{wal_seq:012d}.json"

    def save(self, snapshot: CsrSnapshot, wal_seq: int, wal_offset: int) -> Path:
        """Persist one checkpoint covering the WAL up to ``wal_seq``."""
        payload = self._payload_path(wal_seq)
        # The tmp name must keep the .npz suffix: np.savez appends it to
        # suffix-less paths, and os.replace needs the exact written name.
        tmp = self._dir / f"checkpoint-{wal_seq:012d}.tmp.npz"
        try:
            snapshot.save(tmp)
            # CRC over the bytes as written; an injected truncation below
            # happens *after* this, modelling a torn write the sidecar's
            # checksum is there to catch at load time.
            payload_crc, payload_bytes = _file_crc(tmp)
            if self._injector is not None:
                self._injector.on_checkpoint_payload(tmp)  # type: ignore[attr-defined]
            with tmp.open("rb+") as handle:
                os.fsync(handle.fileno())
            os.replace(tmp, payload)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        meta = {
            "wal_seq": int(wal_seq),
            "wal_offset": int(wal_offset),
            "num_vertices": snapshot.num_vertices,
            "num_edges": snapshot.num_edges,
            "payload_crc": payload_crc,
            "payload_bytes": payload_bytes,
        }
        meta_path = self._meta_path(wal_seq)
        tmp_meta = meta_path.with_suffix(".json.tmp")
        with tmp_meta.open("w", encoding="utf-8") as handle:
            json.dump(meta, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_meta, meta_path)
        self._prune()
        return payload

    def _prune(self) -> None:
        for stray in self._dir.glob("checkpoint-*.tmp.npz"):
            stray.unlink(missing_ok=True)
        complete = sorted(
            meta for meta in self._dir.glob("checkpoint-*.json")
            if meta.with_suffix(".npz").exists()
        )
        for meta in complete[: -self._keep]:
            if self._meta_seq(meta) == 0:
                # Checkpoint zero carries the initial edge list — the only
                # durable record of the pre-WAL graph.  Time-travel reads
                # below the oldest retained checkpoint replay from it, so
                # it is never pruned.
                continue
            meta.with_suffix(".npz").unlink(missing_ok=True)
            meta.unlink(missing_ok=True)

    @staticmethod
    def _meta_seq(meta_path: Path) -> Optional[int]:
        """WAL sequence a checkpoint's file name encodes (None if foreign)."""
        stem = meta_path.stem  # checkpoint-<seq>
        prefix, _, digits = stem.partition("-")
        if prefix != "checkpoint" or not digits.isdigit():
            return None
        return int(digits)

    def newest_seq(self) -> Optional[int]:
        """WAL sequence of the newest *complete* checkpoint (no load).

        Filename-only probe for operational reporting (``/healthz``'s
        ``checkpoint_seq``): completeness means the sidecar/payload pair
        exists; the payload is not checksum-verified here — :meth:`latest`
        does that when a checkpoint is actually loaded.
        """
        seqs = [
            seq
            for meta in self._dir.glob("checkpoint-*.json")
            if meta.with_suffix(".npz").exists()
            and (seq := self._meta_seq(meta)) is not None
        ]
        return max(seqs) if seqs else None

    def newest_meta(self) -> Optional[Dict[str, int]]:
        """Sidecar of the newest complete checkpoint, payload untouched.

        For positional probes (where does the WAL suffix past the newest
        checkpoint begin?) that must not pay the payload-CRC cost of
        :meth:`latest`.
        """
        seq = self.newest_seq()
        if seq is None:
            return None
        with self._meta_path(seq).open("r", encoding="utf-8") as handle:
            return json.load(handle)

    def latest(
        self, max_seq: Optional[int] = None
    ) -> Optional[Tuple[CsrSnapshot, Dict[str, int]]]:
        """Load the newest *verifiable* checkpoint, or ``None`` when fresh.

        Walks checkpoints newest-first; a payload whose CRC/size disagrees
        with its sidecar, or that fails to deserialise, is skipped (reason
        appended to :attr:`fallbacks`) and the previous one is tried —
        recovery then replays a longer WAL suffix instead of dying.
        Sidecars without ``payload_crc`` (pre-checksum format) load
        unchecked, so old checkpoint directories still recover.

        ``max_seq`` restricts the walk to checkpoints covering the WAL up
        to that sequence — the as-of read path's "nearest checkpoint at or
        below the target" lookup.
        """
        metas = sorted(self._dir.glob("checkpoint-*.json"), reverse=True)
        for meta_path in metas:
            if max_seq is not None:
                seq = self._meta_seq(meta_path)
                if seq is None or seq > max_seq:
                    continue
            payload = meta_path.with_suffix(".npz")
            if not payload.exists():
                continue
            with meta_path.open("r", encoding="utf-8") as handle:
                meta = json.load(handle)
            expected_crc = meta.get("payload_crc")
            if expected_crc is not None:
                actual_crc, actual_bytes = _file_crc(payload)
                if (
                    actual_crc != expected_crc
                    or actual_bytes != meta.get("payload_bytes", actual_bytes)
                ):
                    self.fallbacks.append(
                        f"{payload.name}: payload checksum mismatch "
                        f"({actual_bytes} bytes, crc {actual_crc} != {expected_crc})"
                    )
                    continue
            try:
                snapshot = CsrSnapshot.load(payload)
            except Exception as exc:  # zipfile/numpy raise a zoo of types
                self.fallbacks.append(f"{payload.name}: unloadable ({exc})")
                continue
            return snapshot, meta
        return None


class RecoveredState:
    """What :func:`recover` hands the serving app at boot.

    ``wal_corruption`` is ``None`` for a clean log; otherwise the reason
    the WAL scan stopped early — recovery then covers exactly the valid
    prefix, ``wal_offset`` is the boundary the reopened WAL truncates
    at, and the app surfaces the reason via ``/healthz`` and
    ``repro_wal_errors_total`` rather than replaying past corruption.
    ``checkpoint_fallbacks`` counts checkpoints that had to be skipped
    (checksum mismatch / unloadable payload) before one verified.
    """

    __slots__ = (
        "client",
        "wal_seq",
        "wal_offset",
        "replayed_ops",
        "from_checkpoint",
        "wal_corruption",
        "checkpoint_fallbacks",
    )

    def __init__(
        self,
        client: SpadeClient,
        wal_seq: int,
        wal_offset: int,
        replayed_ops: int,
        from_checkpoint: bool,
        wal_corruption: Optional[str] = None,
        checkpoint_fallbacks: int = 0,
    ) -> None:
        self.client = client
        self.wal_seq = wal_seq
        self.wal_offset = wal_offset
        self.replayed_ops = replayed_ops
        self.from_checkpoint = from_checkpoint
        self.wal_corruption = wal_corruption
        self.checkpoint_fallbacks = checkpoint_fallbacks


def recover(
    config: EngineConfig,
    semantics: Optional[PeelingSemantics] = None,
    initial_edges: Optional[List[tuple]] = None,
) -> RecoveredState:
    """Rebuild a :class:`SpadeClient` from ``wal_dir`` state (or fresh).

    With a checkpoint present: rebuild its graph pool-faithfully, adopt it
    (``load_graph`` runs the Algorithm-1 static peel), then replay the WAL
    records past the checkpoint's byte offset through ``client.apply`` —
    the identical operations the original process applied, in order.

    Without one (first boot): load ``initial_edges`` (may be empty) the
    ordinary way and replay whatever WAL exists from byte 0.  The caller
    is expected to cut checkpoint zero right away so later recoveries
    never depend on ``initial_edges`` again.
    """
    serve = config.serve
    if serve is not None and serve.workers > 1:
        # Worker mode: replay through the plain single-engine shape.  The
        # worker coordinator's mirror is bit-identical to a single
        # engine's graph (the PR 3 guarantee), so recovering single-engine
        # and handing the mirror to the worker engine afterwards (see
        # ``ServeApp``) reproduces exactly the state the crashed
        # deployment held — without booting worker processes twice.
        config = config.replace(shards=1)
    if serve is None or serve.wal_dir is None:
        client = SpadeClient(config, semantics=semantics)
        client.load(initial_edges or [])
        return RecoveredState(client, 0, 0, 0, False)

    store = CheckpointStore(serve.wal_dir)
    checkpoint = store.latest()
    client = SpadeClient(config, semantics=semantics)
    if checkpoint is not None:
        snapshot, meta = checkpoint
        graph = graph_from_snapshot(snapshot, backend=client.backend)
        client.engine.load_graph(graph)
        wal_seq = int(meta["wal_seq"])
        wal_offset = int(meta["wal_offset"])
    else:
        client.load(initial_edges or [])
        wal_seq = 0
        wal_offset = 0

    wal_path = WriteAheadLog.path_in(serve.wal_dir)
    ops, next_offset, corruption = scan_ops(wal_path, wal_offset)
    for seq, op in ops:
        try:
            client.apply([op])
        except (ReproError, TypeError, ValueError):
            # The original process logged this operation and then hit the
            # same deterministic engine rejection (the gateway answers 400
            # for these; the exception tuple mirrors the gateway's).
            # Replaying reproduces whatever partial effect it had and
            # fails identically — skipping keeps recovery in lockstep
            # with the crashed process instead of crash-looping on one
            # poisoned record.
            pass
        wal_seq = seq
    return RecoveredState(
        client,
        wal_seq,
        next_offset,
        len(ops),
        checkpoint is not None,
        wal_corruption=corruption,
        checkpoint_fallbacks=len(store.fallbacks),
    )
