"""Snapshot-isolated reads: queries never block the writer.

The serving layer runs a strict single-writer / many-readers discipline
on one asyncio loop:

* **One writer.**  Only the ingest gateway's commit path mutates the
  engine, always while holding the shared :class:`asyncio.Lock`.
* **Versioned snapshots.**  Every committed operation advances a version
  counter (the WAL sequence).  The first read after a commit freezes the
  engine's graph into an immutable :class:`~repro.graph.csr.CsrSnapshot`
  (a version-guarded cache on the array backend, so it is cheap when
  nothing changed) — taken under the same lock, so it can never observe a
  half-applied batch.
* **Lock-free reads.**  The actual query work — a CSR peel for
  ``GET /v1/detect``, the report-remove-repeel enumeration for
  ``GET /v1/communities`` — runs in a worker thread over the frozen
  snapshot, holding no lock at all.  The writer keeps committing while a
  reader peels; the reader's response carries the version its snapshot
  was taken at, which is the isolation contract the property tests
  verify: a response at version ``v`` equals a fresh offline engine
  replayed through exactly the first ``v`` operations.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional

from repro.api.client import SpadeClient
from repro.core.enumeration import CommunityInstance, enumerate_csr
from repro.graph.csr import CsrSnapshot
from repro.peeling.static import peel_csr

__all__ = ["SnapshotView", "SnapshotService"]


class SnapshotView:
    """An immutable ``(version, snapshot)`` pair published to readers."""

    __slots__ = ("version", "snapshot")

    def __init__(self, version: int, snapshot: CsrSnapshot) -> None:
        self.version = version
        self.snapshot = snapshot


class SnapshotService:
    """Versioned snapshot publication + the query surface built on it."""

    def __init__(self, client: SpadeClient, lock: asyncio.Lock) -> None:
        self._client = client
        self._lock = lock
        self._engine_version = 0
        self._view: Optional[SnapshotView] = None

    # ------------------------------------------------------------------ #
    # Writer side
    # ------------------------------------------------------------------ #
    @property
    def version(self) -> int:
        """Version of the latest committed engine state."""
        return self._engine_version

    def advance(self, version: int) -> None:
        """Record that the engine now reflects WAL sequence ``version``.

        Called by the writer after each commit (while it still holds the
        lock); the cached view is left in place so readers that can
        tolerate the previous version keep using it until a fresh one is
        demanded.
        """
        self._engine_version = version

    # ------------------------------------------------------------------ #
    # Snapshot publication
    # ------------------------------------------------------------------ #
    async def current(self) -> SnapshotView:
        """Return a view of the latest committed state (freeze if stale)."""
        view = self._view
        if view is not None and view.version == self._engine_version:
            return view
        async with self._lock:
            # Re-check under the lock: a concurrent reader may have
            # refreshed while this one awaited the writer.
            view = self._view
            if view is not None and view.version == self._engine_version:
                return view
            # Freeze off the event loop (the engine is stable while the
            # lock is held): an O(|V|+|E|) freeze on the loop thread
            # would stall every connection, acks included.
            snapshot = await asyncio.get_running_loop().run_in_executor(
                None, self._client.snapshot
            )
            view = SnapshotView(self._engine_version, snapshot)
            self._view = view
            return view

    # ------------------------------------------------------------------ #
    # Queries (lock-free over the frozen snapshot)
    # ------------------------------------------------------------------ #
    async def detect(self) -> Dict[str, object]:
        """Exact detection over the current snapshot, off the event loop."""
        view = await self.current()
        semantics = self._client.semantics.name
        loop = asyncio.get_running_loop()
        result = await loop.run_in_executor(None, peel_csr, view.snapshot, semantics)
        return {
            "version": view.version,
            "community": sorted(map(str, result.community)),
            "density": result.best_density,
            "peel_index": result.best_index,
            "vertices": view.snapshot.num_vertices,
            "edges": view.snapshot.num_edges,
            "semantics": semantics,
            "backend": self._client.backend,
            "shards": self._client.shards,
            "exact": True,
        }

    async def communities(
        self,
        offset: int = 0,
        limit: int = 10,
        min_density: float = 0.0,
        min_size: int = 2,
        after_rank: Optional[int] = None,
    ) -> Dict[str, object]:
        """Paginated dense-instance enumeration over the current snapshot.

        Two pagination modes share one shape: classic ``offset`` (kept
        for existing clients) and keyset (``after_rank`` — the rank of
        the last instance the client saw, from a cursor token the HTTP
        layer decodes).  One extra instance is enumerated beyond the page
        so ``has_more`` is exact; ``next_rank`` is the keyset position a
        follow-up cursor resumes after (the HTTP layer encodes it).
        """
        view = await self.current()
        semantics = self._client.semantics.name
        loop = asyncio.get_running_loop()
        start = offset if after_rank is None else after_rank + 1

        def _enumerate() -> List[CommunityInstance]:
            return enumerate_csr(
                view.snapshot,
                max_instances=start + limit + 1,
                min_density=min_density,
                min_size=min_size,
                semantics_name=semantics,
            )

        instances = await loop.run_in_executor(None, _enumerate)
        page = instances[start : start + limit]
        has_more = len(instances) > start + limit
        report: Dict[str, object] = {
            "version": view.version,
            "limit": limit,
            "count": len(page),
            "communities": [
                {
                    "rank": instance.rank,
                    "density": instance.density,
                    "size": len(instance.vertices),
                    "vertices": sorted(map(str, instance.vertices)),
                }
                for instance in page
            ],
            "has_more": has_more,
            "next_rank": page[-1].rank if page else None,
        }
        if after_rank is None:
            report["offset"] = offset
        return report

    async def vertex(self, label: object) -> Optional[Dict[str, object]]:
        """Per-vertex view (prior, degrees, incident weight) or ``None``."""
        view = await self.current()
        snapshot = view.snapshot
        vid = snapshot.id_of(label)
        if vid < 0 or not bool(snapshot.member[vid]):
            return None
        out_lo, out_hi = int(snapshot.out_offsets[vid]), int(snapshot.out_offsets[vid + 1])
        in_lo, in_hi = int(snapshot.in_offsets[vid]), int(snapshot.in_offsets[vid + 1])
        incident = float(snapshot.out_weights[out_lo:out_hi].sum()) + float(
            snapshot.in_weights[in_lo:in_hi].sum()
        )
        return {
            "version": view.version,
            "label": str(label),
            "prior": float(snapshot.vertex_weights[vid]),
            "out_degree": out_hi - out_lo,
            "in_degree": in_hi - in_lo,
            "incident_weight": incident,
        }
