"""End-to-end durability smoke: boot, ingest, ``kill -9``, recover, compare.

The CI gate for the serving subsystem (``python -m repro.serve.smoke``):

1. boot ``python -m repro.serve`` as a real subprocess on the fraud
   workload directory (WAL + checkpoints enabled, OS-assigned port);
2. fire a mix of bulk and single-edge ``POST /v1/edges`` plus a mid-stream
   ``GET /v1/detect``;
3. ``SIGKILL`` the process mid-stream — no shutdown hooks, no flush;
4. restart it from the same WAL directory (checkpoint + WAL-suffix
   recovery) and keep ingesting to prove liveness;
5. replay the WAL offline through a fresh in-process
   :class:`~repro.api.SpadeClient` and fail (exit 1) unless the restarted
   server's ``detect`` and first ``communities`` page are **identical**
   to the offline replay.

Every acknowledged event is by construction in the WAL, so equality with
the offline replay of the WAL is the durability statement in ISSUE 5.

Chaos mode (``--faults plan.json``) arms a deterministic
:mod:`repro.serve.faults` plan for **phase 1 only** — the restart in
phase 2 always boots clean, so whatever the faults left on disk (torn
records, flipped bits, truncated checkpoints) is exactly what recovery
has to survive.  Ingest rides out read-only degraded windows (503 +
``Retry-After``) by retrying, checking on the first 503 that ``/healthz``
reports ``degraded`` while ``GET /v1/detect`` still answers 200.  The
final divergence check is unchanged: the restarted server must match the
offline replay of the surviving WAL prefix bit for bit — a fault may
*shrink* the acknowledged history at a documented boundary, but it must
never silently diverge from it.  ``--expect`` pins the failure-handling
path a plan is meant to exercise (``degraded``, ``wal-corruption``,
``checkpoint-fallback``, ``worker-fallback``) and ``--report`` writes a
JSON artifact of everything observed.
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.api.client import SpadeClient
from repro.api.config import EngineConfig
from repro.serve.app import RUNINFO_FILENAME
from repro.serve.wal import WriteAheadLog, scan_ops
from repro.workloads.fraud import inject_standard_patterns

__all__ = ["main", "run_smoke"]

#: ``--expect`` vocabulary: which failure-handling path a fault plan must
#: actually exercise (so a mistuned plan fails CI instead of proving nothing).
EXPECTATIONS = ("degraded", "wal-corruption", "checkpoint-fallback", "worker-fallback")


def _wait_for_server(wal_dir: Path, proc: subprocess.Popen, timeout: float = 30.0) -> int:
    """Wait for the runinfo file of the *current* process; return the port."""
    runinfo_path = wal_dir / RUNINFO_FILENAME
    deadline = time.time() + timeout
    while time.time() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(
                f"server exited early with {proc.returncode}; stderr:\n"
                f"{proc.stderr.read().decode() if proc.stderr else ''}"
            )
        if runinfo_path.exists():
            try:
                runinfo = json.loads(runinfo_path.read_text(encoding="utf-8"))
            except json.JSONDecodeError:
                runinfo = None
            if runinfo and runinfo.get("pid") == proc.pid:
                port = int(runinfo["port"])
                status, _ = _request(port, "GET", "/healthz")
                if status == 200:
                    return port
        time.sleep(0.05)
    raise RuntimeError("server did not become healthy in time")


def _request(
    port: int, method: str, path: str, payload: Optional[object] = None
) -> Tuple[int, Dict]:
    status, body, _headers = _request_full(port, method, path, payload)
    return status, body


def _request_full(
    port: int, method: str, path: str, payload: Optional[object] = None
) -> Tuple[int, Dict, Dict[str, str]]:
    """Like :func:`_request` but also returns the (lowercased) headers."""
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        body = None if payload is None else json.dumps(payload)
        headers = {"Content-Type": "application/json"} if body is not None else {}
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        data = response.read()
        response_headers = {
            name.lower(): value for name, value in response.getheaders()
        }
        return (
            response.status,
            json.loads(data) if data else {},
            response_headers,
        )
    finally:
        connection.close()


def _post_edges(
    port: int,
    payload: object,
    say,
    observed: Dict[str, object],
    retries: int = 80,
    backoff: float = 0.15,
) -> None:
    """POST /v1/edges, riding out read-only degraded windows (503).

    On the first 503 the degraded contract is checked once: ``/healthz``
    must report ``status == "degraded"`` and ``GET /v1/detect`` must keep
    answering 200 (reads serve the committed snapshot while ingest is
    parked).  Retried posts may duplicate a partially committed chunk;
    that is fine for the divergence check because every applied duplicate
    is in the WAL too.
    """
    for _attempt in range(retries):
        status, body = _request(port, "POST", "/v1/edges", payload)
        if status == 200:
            return
        if status != 503:
            raise AssertionError(f"ingest failed with {status}: {body}")
        if not observed.get("degraded"):
            observed["degraded"] = True
            health_status, health = _request(port, "GET", "/healthz")
            assert health_status == 200 and health.get("status") == "degraded", (
                f"503 from ingest but /healthz does not say degraded: {health}"
            )
            read_status, _ = _request(port, "GET", "/v1/detect")
            assert read_status == 200, "reads must keep serving while degraded"
            say(
                f"ingest degraded ({health.get('degraded_reason')}); "
                f"reads still serving — retrying"
            )
        time.sleep(backoff)
    raise AssertionError(f"ingest still degraded after {retries} retries")


def _assert_trace_well_formed(entry: Dict) -> None:
    """Span ids are unique and every parent reference resolves in-trace."""
    spans = entry.get("spans", [])
    span_ids = {span["id"] for span in spans}
    assert len(span_ids) == len(spans), f"duplicate span ids: {spans}"
    for span in spans:
        if span["parent"] is not None:
            assert span["parent"] in span_ids, (
                f"span {span['name']} has dangling parent {span['parent']}"
            )


def _trace_probe(
    port: int,
    chunk: List[List[object]],
    say,
    observed: Dict[str, object],
    expect_worker_spans: bool,
    retries: int = 80,
    backoff: float = 0.15,
) -> str:
    """One fully traced bulk ingest + flush: header → ring → span tree.

    Returns the bulk request's trace id.  The flush barrier scatters to
    every shard, so with live workers its trace must carry
    ``worker_roundtrip`` spans even if the bulk chunk's updates were all
    parked by the coordinator.
    """
    for _attempt in range(retries):
        status, body, headers = _request_full(
            port, "POST", "/v1/edges", {"edges": chunk}
        )
        if status == 200:
            break
        assert status == 503, f"trace probe ingest failed with {status}: {body}"
        time.sleep(backoff)
    else:
        raise AssertionError(f"trace probe still degraded after {retries} retries")
    trace_id = headers.get("x-repro-trace-id")
    assert trace_id, f"no X-Repro-Trace-Id on the ingest response: {headers}"

    status, payload = _request(port, "GET", f"/debug/traces?trace_id={trace_id}")
    assert status == 200 and payload["count"] == 1, (
        f"trace {trace_id} not held by /debug/traces: {payload}"
    )
    entry = payload["traces"][0]
    names = {span["name"] for span in entry["spans"]}
    assert {"queue_wait", "wal_append", "engine_apply"} <= names, (
        f"bulk trace is missing pipeline spans: {sorted(names)}"
    )
    _assert_trace_well_formed(entry)

    status, _body, flush_headers = _request_full(port, "POST", "/v1/flush")
    assert status == 200, f"trace probe flush failed: {status}"
    flush_id = flush_headers.get("x-repro-trace-id")
    assert flush_id, "no X-Repro-Trace-Id on the flush response"
    status, payload = _request(port, "GET", f"/debug/traces?trace_id={flush_id}")
    assert status == 200 and payload["count"] == 1
    flush_entry = payload["traces"][0]
    _assert_trace_well_formed(flush_entry)
    flush_names = {span["name"] for span in flush_entry["spans"]}
    if expect_worker_spans:
        assert "worker_roundtrip" in flush_names, (
            f"flush barrier trace has no worker spans: {sorted(flush_names)}"
        )
    observed["trace"] = {
        "trace_id": trace_id,
        "bulk_spans": sorted(names),
        "flush_trace_id": flush_id,
        "flush_spans": sorted(flush_names),
    }
    say(
        f"trace {trace_id} observable end-to-end "
        f"(spans: {', '.join(sorted(names))})"
    )
    return trace_id


def _spawn(config_path: Path) -> subprocess.Popen:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--config", str(config_path)],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )


def _fraud_edges(num: int, seed: int = 11) -> List[List[object]]:
    """Dyadic-weighted transaction rows: fraud bursts over background noise.

    Dyadic weights (multiples of 1/64) keep float accumulation
    order-independent, so the offline comparison is strict equality
    rather than a tolerance.
    """
    import random

    scenario = inject_standard_patterns(seed, 0.0, 1000.0, instances_per_pattern=1)
    fraud = sorted(scenario.edges, key=lambda e: e.timestamp)
    rows: List[List[object]] = [
        [str(e.src), str(e.dst), max(1, round(float(e.weight) * 64)) / 64.0]
        for e in fraud
    ]
    rng = random.Random(seed)
    while len(rows) < num:
        src, dst = rng.randrange(150), rng.randrange(150)
        if src == dst:
            continue
        rows.append([f"bg{src}", f"bg{dst}", rng.randint(1, 128) / 64.0])
    # Interleave: background mixed through the fraud bursts, like a stream.
    rng.shuffle(rows)
    return rows[:num]


def run_smoke(
    events: int = 600,
    checkpoint_interval: int = 150,
    workers: int = 0,
    verbose: bool = True,
    faults: Optional[str] = None,
    expect: Optional[List[str]] = None,
    report: Optional[str] = None,
    history_interval: Optional[int] = None,
    history_copy: Optional[str] = None,
    trace_sample: Optional[float] = None,
    trace_log_copy: Optional[str] = None,
) -> int:
    """Run the kill-and-restart divergence check; return a process exit code.

    With ``workers >= 2`` the server runs process-resident shard workers,
    and the smoke adds a third failure mode between the ingest phases: one
    shard worker is ``SIGKILL``\\ ed mid-stream and the server must respawn
    it from the coordinator mirror (visible in ``/healthz`` restarts)
    without losing exactness against the offline replay.

    ``faults`` arms a :mod:`repro.serve.faults` plan for phase 1 (the
    phase 2 restart boots clean); ``expect`` lists failure-handling paths
    (:data:`EXPECTATIONS`) that must have been observed for the run to
    pass; ``report`` writes a JSON artifact of everything observed.

    ``history_interval`` enables the historical-analytics indexer in
    **both** phases and extends the contract: the phase-1 ``kill -9``
    lands mid-indexing and the restarted indexer must resume
    idempotently — after catch-up the cold store holds exactly one epoch
    per multiple of the interval (no duplicates, no gaps, checksums
    intact), a standalone ``python -m repro.history`` re-index changes
    nothing, and ``detect?asof=<phase-1 version>`` on the restarted
    server reproduces the pre-kill detection bit for bit.
    ``history_copy`` copies the final ``.sqlite`` out of the tempdir
    (the CI artifact).

    ``trace_sample`` enables end-to-end tracing (:mod:`repro.obs`) in both
    phases with the JSONL event log at ``<wal-dir>/events.jsonl``.  At a
    rate >= 1.0 the smoke additionally pins the observability contract:
    a bulk ingest's ``X-Repro-Trace-Id`` is retrievable from
    ``/debug/traces`` with queue-wait/WAL-append/engine-apply (and, with
    live workers, worker-roundtrip) child spans, span parenting stays
    well-formed across the worker ``kill -9`` → respawn sub-phase, and
    the event log — which survives the server kill — holds the probe's
    trace id.  ``trace_log_copy`` copies the event log out of the tempdir
    (the CI artifact).
    """

    def say(message: str) -> None:
        if verbose:
            print(f"[smoke] {message}", flush=True)

    for expectation in expect or []:
        if expectation not in EXPECTATIONS:
            raise ValueError(
                f"unknown expectation {expectation!r}; valid: {', '.join(EXPECTATIONS)}"
            )

    observed: Dict[str, object] = {
        "degraded": False,
        "worker_fallback": False,
        "wal_corruption": None,
        "checkpoint_fallbacks": 0,
    }
    rows = _fraud_edges(events)
    mid = len(rows) // 2
    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        wal_dir = Path(tmp) / "wal"
        config = {
            "semantics": "DW",
            "backend": "array",
            "serve": {
                "port": 0,
                "wal_dir": str(wal_dir),
                "fsync": True,
                "max_delay_ms": 2.0,
                "max_batch": 64,
                "checkpoint_interval": checkpoint_interval,
                "workers": workers,
            },
        }
        if history_interval is not None:
            # Both phases index (resume across the kill is the point);
            # a fast poll keeps the catch-up wait below short.
            config["serve"]["history"] = {
                "epoch_interval": history_interval,
                "poll_ms": 50.0,
            }
        if trace_sample is not None:
            # Both phases trace; the event log accumulates across the kill.
            config["serve"]["obs"] = {
                "trace_sample": trace_sample,
                "slow_ms": 0.0,
                "trace_log": "auto",
            }
        # The fault plan is phase 1 only: the restart boots clean and has
        # to cope with whatever the faults left on disk.
        clean_path = Path(tmp) / "engine.json"
        clean_path.write_text(json.dumps(config), encoding="utf-8")
        if faults is not None:
            config["serve"]["faults"] = str(Path(faults).resolve())
            config_path = Path(tmp) / "engine-faulty.json"
            config_path.write_text(json.dumps(config), encoding="utf-8")
        else:
            config_path = clean_path

        # Phase 1: boot and ingest the first half (bulk + single mix).
        proc = _spawn(config_path)
        try:
            port = _wait_for_server(wal_dir, proc)
            say(f"phase 1 up on :{port}; ingesting {mid} events" + (
                f" under fault plan {faults}" if faults else ""
            ))
            index = 0
            while index < mid:
                if index % 97 == 0:  # sprinkle single-edge posts into the bulk flow
                    _post_edges(port, {
                        "src": rows[index][0], "dst": rows[index][1], "weight": rows[index][2],
                    }, say, observed)
                    index += 1
                else:
                    chunk = rows[index : index + 25]
                    _post_edges(port, {"edges": chunk}, say, observed)
                    index += len(chunk)
            status, mid_detect = _request(port, "GET", "/v1/detect")
            assert status == 200
            say(
                f"mid-stream detect at version {mid_detect['version']}: "
                f"|S|={len(mid_detect['community'])} g={mid_detect['density']:.4f}"
            )
            status, pre_kill_health = _request(port, "GET", "/healthz")
            assert status == 200
            worker_info = pre_kill_health.get("workers") or {}
            if worker_info.get("fallback"):
                observed["worker_fallback"] = True
                say(
                    f"shard workers fell back to the in-process engine "
                    f"({worker_info.get('fallback_reason')})"
                )
            probe_trace_id: Optional[str] = None
            if trace_sample is not None and trace_sample >= 1.0:
                workers_live = (
                    workers > 1 and not worker_info.get("fallback")
                )
                probe_trace_id = _trace_probe(
                    port,
                    rows[:20],
                    say,
                    observed,
                    expect_worker_spans=workers_live,
                )
            if workers > 1 and faults is None:
                # Worker-crash phase: SIGKILL one shard worker, keep
                # ingesting, and require a respawn before killing the
                # whole server below.
                status, health = _request(port, "GET", "/healthz")
                assert status == 200 and "workers" in health, f"no worker info: {health}"
                victim = int(health["workers"]["pids"][0])
                os.kill(victim, signal.SIGKILL)
                say(f"killed -9 shard worker pid {victim}")
                stop = min(index + 50, len(rows))
                while index < stop:
                    chunk = rows[index : index + 25]
                    status, _ = _request(port, "POST", "/v1/edges", {"edges": chunk})
                    assert status == 200, f"post-worker-kill post failed: {status}"
                    index += len(chunk)
                # The flush barrier scatters to every shard, so the dead
                # worker is discovered even if none of the 50 edges above
                # happened to route a message to it.
                status, _ = _request(port, "POST", "/v1/flush")
                assert status == 200, f"post-worker-kill flush failed: {status}"
                status, health = _request(port, "GET", "/healthz")
                assert status == 200
                restarts = health["workers"]["restarts"]
                assert sum(restarts) >= 1, f"worker was not respawned: {health['workers']}"
                say(f"worker respawned from the mirror (restarts={restarts})")
                if trace_sample is not None and trace_sample >= 1.0:
                    # The respawn happened inside some traced request; its
                    # trace must hold a worker_respawn span with parenting
                    # still well-formed — the id "survives" the respawn.
                    status, payload = _request(
                        port, "GET", "/debug/traces?limit=400"
                    )
                    assert status == 200
                    respawn_entry = next(
                        (
                            entry
                            for entry in payload["traces"]
                            if any(
                                span["name"] == "worker_respawn"
                                for span in entry["spans"]
                            )
                        ),
                        None,
                    )
                    assert respawn_entry is not None, (
                        "no trace holds a worker_respawn span after the kill"
                    )
                    _assert_trace_well_formed(respawn_entry)
                    trace_doc = observed.setdefault("trace", {})
                    trace_doc["respawn_trace_id"] = respawn_entry["trace_id"]  # type: ignore[index]
                    say(
                        f"worker_respawn span recorded in trace "
                        f"{respawn_entry['trace_id']}"
                    )
            resume_at = index
            # Kill without ceremony, mid-stream.
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
            say("killed -9")
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

        # Phase 2: restart from WAL + checkpoint (always clean — the
        # on-disk damage is the input now), keep ingesting.
        proc = _spawn(clean_path)
        try:
            port = _wait_for_server(wal_dir, proc)
            status, health = _request(port, "GET", "/healthz")
            assert status == 200
            recovered_health = health
            observed["wal_corruption"] = health.get("wal_corruption")
            observed["checkpoint_fallbacks"] = int(health.get("checkpoint_fallbacks", 0))
            say(
                f"phase 2 recovered to version {health['version']} "
                f"({health['recovered_ops']} WAL ops replayed); ingesting the rest"
            )
            if observed["wal_corruption"]:
                say(f"recovery reported WAL corruption: {observed['wal_corruption']}")
            if observed["checkpoint_fallbacks"]:
                say(
                    f"recovery skipped {observed['checkpoint_fallbacks']} corrupt "
                    f"checkpoint(s) and replayed a longer WAL suffix"
                )
            index = resume_at
            while index < len(rows):
                chunk = rows[index : index + 25]
                status, _ = _request(port, "POST", "/v1/edges", {"edges": chunk})
                assert status == 200, f"post-recovery bulk post failed: {status}"
                index += len(chunk)
            status, final_detect = _request(port, "GET", "/v1/detect")
            assert status == 200
            status, final_communities = _request(port, "GET", "/v1/communities?limit=5")
            assert status == 200
            asof_failures: List[str] = []
            if history_interval is not None:
                # Wait for the background indexer to catch up to the last
                # due epoch boundary, then pin the time-travel contract.
                deadline = time.time() + 60
                hist: Dict[str, object] = {}
                head = 0
                while time.time() < deadline:
                    status, health = _request(port, "GET", "/healthz")
                    assert status == 200
                    hist = health.get("history") or {}
                    head = int(health.get("wal_seq", 0))
                    if hist.get("last_error"):
                        break
                    target = (head // history_interval) * history_interval
                    if int(hist.get("last_indexed_seq", -1)) >= target:
                        break
                    time.sleep(0.1)
                observed["history"] = hist
                if hist.get("last_error"):
                    asof_failures.append(f"indexer errored: {hist['last_error']}")
                target = (head // history_interval) * history_interval
                if int(hist.get("last_indexed_seq", -1)) < target:
                    asof_failures.append(
                        f"indexer never caught up: last_indexed="
                        f"{hist.get('last_indexed_seq')} < due boundary {target}"
                    )
                say(
                    f"indexer caught up: {hist.get('epochs_indexed')} epochs this "
                    f"process, last_indexed_seq={hist.get('last_indexed_seq')}, "
                    f"head={head}"
                )
                # Time travel across the crash: the restarted server must
                # reproduce the pre-kill detection bit for bit at its
                # version (skipped if chaos truncated that prefix).
                mid_version = int(mid_detect["version"])
                if observed["wal_corruption"] is None and mid_version <= head:
                    status, asof_detect = _request(
                        port, "GET", f"/v1/detect?asof={mid_version}"
                    )
                    if status != 200:
                        asof_failures.append(
                            f"asof={mid_version} answered {status}: {asof_detect}"
                        )
                    else:
                        for key in ("community", "density", "peel_index"):
                            if asof_detect[key] != mid_detect[key]:
                                asof_failures.append(
                                    f"asof={mid_version} {key} diverged from the "
                                    f"pre-kill detection: {asof_detect[key]!r} != "
                                    f"{mid_detect[key]!r}"
                                )
                        say(
                            f"time travel to pre-kill version {mid_version} is "
                            f"bit-identical across the crash"
                        )
                status, body = _request(port, "GET", f"/v1/detect?asof={head + 999}")
                if status != 400:
                    asof_failures.append(
                        f"asof beyond head answered {status}, want 400: {body}"
                    )
        finally:
            if proc.poll() is None:
                proc.terminate()
                try:
                    proc.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait(timeout=30)

        # Offline replay of the WAL — the acknowledged history and then some
        # (anything WAL-ed but unacked at the kill is still a valid prefix
        # of what the recovered server applied).  The final WAL must scan
        # clean even in chaos mode: phase 2's recovery truncated whatever
        # the faults corrupted, so leftover corruption here would mean the
        # server kept appending past a record it could never replay.
        ops, _offset, residual_corruption = scan_ops(WriteAheadLog.path_in(wal_dir))
        offline = SpadeClient(EngineConfig(semantics="DW", backend="array"))
        offline.load([])
        for _seq, op in ops:
            offline.apply([op])
        offline_report = offline.detect()
        offline_community = sorted(map(str, offline_report.vertices))
        offline_instances = [
            {
                "rank": instance.rank,
                "density": instance.density,
                "size": len(instance.vertices),
                "vertices": sorted(map(str, instance.vertices)),
            }
            for instance in offline.communities(max_instances=5)
        ]

        failures: List[str] = list(asof_failures)
        if residual_corruption is not None:
            failures.append(f"final WAL does not scan clean: {residual_corruption}")
        if final_detect["version"] != ops[-1][0]:
            failures.append(
                f"version {final_detect['version']} != last WAL seq {ops[-1][0]}"
            )
        if final_detect["community"] != offline_community:
            failures.append(
                f"community diverged:\n  served : {final_detect['community']}\n"
                f"  offline: {offline_community}"
            )
        if final_detect["density"] != offline_report.density:
            failures.append(
                f"density diverged: {final_detect['density']} != {offline_report.density}"
            )
        if final_detect["peel_index"] != offline_report.peel_index:
            failures.append(
                f"peel_index diverged: {final_detect['peel_index']} != {offline_report.peel_index}"
            )
        if final_communities["communities"] != offline_instances:
            failures.append("communities page diverged from offline enumeration")

        history_doc: Optional[Dict[str, object]] = None
        if history_interval is not None:
            # Cold-store audit with the servers gone: one epoch per due
            # interval multiple (no duplicates, no gaps — SQLite's PK plus
            # single-transaction appends across two processes and a
            # kill -9), every checksum intact, and a standalone re-index
            # is a no-op.
            import shutil

            from repro.history.store import HISTORY_FILENAME, HistoryStore

            db_path = wal_dir / HISTORY_FILENAME
            head_seq = ops[-1][0] if ops else 0
            expected_seqs = list(
                range(history_interval, head_seq + 1, history_interval)
            )
            with HistoryStore(db_path) as store:
                seqs_before = store.epoch_seqs()
                corrupt = [s for s in seqs_before if not store.verify_epoch(s)]
            if seqs_before != expected_seqs:
                failures.append(
                    f"epoch ledger wrong: {seqs_before} != every multiple of "
                    f"{history_interval} up to {head_seq} ({expected_seqs})"
                )
            if corrupt:
                failures.append(f"epoch checksums failed verification: {corrupt}")
            env = dict(os.environ)
            src = str(Path(__file__).resolve().parents[2])
            env["PYTHONPATH"] = src + (
                os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
            )
            reindex = subprocess.run(
                [
                    sys.executable, "-m", "repro.history",
                    "--wal-dir", str(wal_dir),
                    # The deployment's own config: epochs must be
                    # enumerated under the same semantics/knobs or the
                    # store's meta guard refuses (by design).
                    "--config", str(clean_path),
                ],
                env=env,
                capture_output=True,
                text=True,
                timeout=300,
            )
            if reindex.returncode != 0:
                failures.append(
                    f"standalone re-index exited {reindex.returncode}: "
                    f"{reindex.stderr.strip()}"
                )
            with HistoryStore(db_path) as store:
                seqs_after = store.epoch_seqs()
            if seqs_after != seqs_before:
                failures.append(
                    f"standalone re-index was not idempotent: "
                    f"{len(seqs_before)} epochs -> {len(seqs_after)}"
                )
            else:
                say(
                    f"cold store intact: {len(seqs_before)} epochs, one per "
                    f"multiple of {history_interval}, re-index idempotent"
                )
            history_doc = {
                "db_path": str(db_path),
                "epoch_interval": history_interval,
                "epochs": len(seqs_before),
                "head_seq": head_seq,
                "reindex_idempotent": seqs_after == seqs_before,
                "observed": observed.get("history"),
            }
            if history_copy is not None:
                shutil.copy(db_path, history_copy)
                say(f"cold store copied to {history_copy}")

        trace_doc_out: Optional[Dict[str, object]] = None
        if trace_sample is not None:
            # The event log is append-only JSONL in the WAL directory: it
            # survives the phase-1 kill -9 and accumulates across both
            # processes.  The probe's trace id must be in it.
            from repro.obs.events import read_events

            events_path = wal_dir / "events.jsonl"
            records: List[Dict[str, object]] = []
            if events_path.exists():
                records, _ = read_events(events_path)
            else:
                failures.append(f"event log missing: {events_path}")
            if trace_sample >= 1.0:
                probe_id = (observed.get("trace") or {}).get("trace_id")  # type: ignore[union-attr]
                if probe_id and not any(
                    record.get("trace_id") == probe_id for record in records
                ):
                    failures.append(
                        f"probe trace {probe_id} is not in the event log "
                        f"({len(records)} records)"
                    )
            trace_doc_out = {
                "trace_sample": trace_sample,
                "event_log_records": len(records),
                "observed": observed.get("trace"),
            }
            say(f"event log holds {len(records)} records across both phases")
            if trace_log_copy is not None and events_path.exists():
                import shutil

                shutil.copy(events_path, trace_log_copy)
                say(f"event log copied to {trace_log_copy}")

        # A fault plan must actually exercise the path it was written for;
        # a mistuned plan that injects nothing observable is a CI bug.
        satisfied = {
            "degraded": bool(observed["degraded"]),
            "wal-corruption": observed["wal_corruption"] is not None,
            "checkpoint-fallback": int(observed["checkpoint_fallbacks"]) >= 1,
            "worker-fallback": bool(observed["worker_fallback"]),
        }
        for expectation in expect or []:
            if not satisfied[expectation]:
                failures.append(
                    f"expected failure path {expectation!r} was never observed "
                    f"(observed: {observed})"
                )

        if report is not None:
            report_doc = {
                "events": events,
                "checkpoint_interval": checkpoint_interval,
                "workers": workers,
                "faults": faults,
                "expect": list(expect or []),
                "observed": observed,
                "phase1_health": pre_kill_health,
                "phase2_health": recovered_health,
                "wal_ops": len(ops),
                "community_size": len(offline_community),
                "density": offline_report.density,
                "history": history_doc,
                "tracing": trace_doc_out,
                "failures": failures,
                "ok": not failures,
            }
            Path(report).write_text(
                json.dumps(report_doc, indent=2, default=str) + "\n", encoding="utf-8"
            )
            say(f"report written to {report}")

        if failures:
            for failure in failures:
                print(f"[smoke] FAIL: {failure}", file=sys.stderr, flush=True)
            return 1
        say(
            f"OK: recovery is bit-identical to the offline replay of "
            f"{len(ops)} WAL ops ({sum(1 for _, o in ops)} operations, "
            f"|S|={len(offline_community)}, g={offline_report.density:.6f})"
        )
        return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.smoke",
        description="Kill -9 / recovery divergence check for repro.serve.",
    )
    parser.add_argument("--events", type=int, default=600)
    parser.add_argument("--checkpoint-interval", type=int, default=150)
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="process-resident shard workers (adds a worker kill -9 phase when >= 2)",
    )
    parser.add_argument(
        "--faults",
        default=None,
        help="fault-injection plan JSON armed for phase 1 (repro.serve.faults)",
    )
    parser.add_argument(
        "--expect",
        action="append",
        default=None,
        choices=EXPECTATIONS,
        help="failure-handling path the run must observe (repeatable)",
    )
    parser.add_argument(
        "--report",
        default=None,
        help="write a JSON report of everything observed to this path",
    )
    parser.add_argument(
        "--history-interval",
        type=int,
        default=None,
        help="enable the historical-analytics indexer (both phases) and audit "
        "idempotent resume + time travel across the kill",
    )
    parser.add_argument(
        "--history-copy",
        default=None,
        help="copy the final cold-store .sqlite to this path (CI artifact)",
    )
    parser.add_argument(
        "--trace-sample",
        type=float,
        default=None,
        help="enable end-to-end tracing at this sample rate (both phases); "
        ">= 1.0 additionally pins the header -> /debug/traces -> event-log "
        "contract and span parenting across the worker respawn",
    )
    parser.add_argument(
        "--trace-log-copy",
        default=None,
        help="copy the final events.jsonl to this path (CI artifact)",
    )
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)
    return run_smoke(
        events=args.events,
        checkpoint_interval=args.checkpoint_interval,
        workers=args.workers,
        verbose=not args.quiet,
        faults=args.faults,
        expect=args.expect,
        report=args.report,
        history_interval=args.history_interval,
        history_copy=args.history_copy,
        trace_sample=args.trace_sample,
        trace_log_copy=args.trace_log_copy,
    )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
