"""Prometheus-text metrics for the serving layer (stdlib-only).

A deliberately tiny subset of the Prometheus client model — counters,
gauges and cumulative histograms rendered in the text exposition format —
so that ``GET /metrics`` works against any Prometheus scraper without
adding a dependency.  All mutation happens on the event loop thread (or
under the writer lock), so the implementation carries no locking.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
]

#: Default buckets for second-denominated latencies (500µs .. 5s).
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

#: Default buckets for size-denominated observations (batch sizes etc.).
SIZE_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


def _fmt(value: float) -> str:
    """Render a sample value the way Prometheus text format expects."""
    if value == int(value):
        return str(int(value))
    return repr(float(value))


def _label_str(labels: Mapping[str, str], extra: Optional[Tuple[str, str]] = None) -> str:
    """Render a ``{k="v",...}`` label block (empty string when unlabeled)."""
    pairs = [(key, labels[key]) for key in labels]
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    return "{" + ",".join(f'{key}="{value}"' for key, value in pairs) + "}"


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "help", "labels", "_value")

    def __init__(self, name: str, help: str, labels: Optional[Mapping[str, str]] = None) -> None:
        self.name = name
        self.help = help
        self.labels: Dict[str, str] = dict(labels or {})
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def sample_lines(self) -> List[str]:
        return [f"{self.name}{_label_str(self.labels)} {_fmt(self._value)}"]

    def render(self) -> List[str]:
        return [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} counter",
            *self.sample_lines(),
        ]


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("name", "help", "labels", "_value")

    def __init__(self, name: str, help: str, labels: Optional[Mapping[str, str]] = None) -> None:
        self.name = name
        self.help = help
        self.labels: Dict[str, str] = dict(labels or {})
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def sample_lines(self) -> List[str]:
        return [f"{self.name}{_label_str(self.labels)} {_fmt(self._value)}"]

    def render(self) -> List[str]:
        return [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} gauge",
            *self.sample_lines(),
        ]


class Histogram:
    """A cumulative histogram with fixed upper bounds."""

    __slots__ = ("name", "help", "labels", "buckets", "_counts", "_sum", "_count")

    def __init__(
        self,
        name: str,
        help: str,
        buckets: Sequence[float] = LATENCY_BUCKETS,
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.name = name
        self.help = help
        self.labels: Dict[str, str] = dict(labels or {})
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError(f"histogram {name} needs at least one bucket")
        self._counts = [0] * len(self.buckets)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self._sum += value
        self._count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self._counts[index] += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def quantile(self, q: float) -> float:
        """Approximate quantile from bucket bounds (upper-bound estimate).

        Good enough for health summaries; the bench computes exact
        percentiles from raw samples instead.

        An **empty** histogram answers ``0.0`` for every quantile — a
        deliberate, pinned choice (not NaN, not an exception): scrapers
        and health summaries read quantiles before the first request
        lands, and a zero reads naturally as "no latency observed yet".
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            return 0.0
        target = q * self._count
        for index, bound in enumerate(self.buckets):
            if self._counts[index] >= target:
                return bound
        return self.buckets[-1]

    def sample_lines(self) -> List[str]:
        lines = []
        for bound, count in zip(self.buckets, self._counts):
            block = _label_str(self.labels, extra=("le", _fmt(bound)))
            lines.append(f"{self.name}_bucket{block} {count}")
        block = _label_str(self.labels, extra=("le", "+Inf"))
        lines.append(f"{self.name}_bucket{block} {self._count}")
        suffix = _label_str(self.labels)
        lines.append(f"{self.name}_sum{suffix} {_fmt(self._sum)}")
        lines.append(f"{self.name}_count{suffix} {self._count}")
        return lines

    def render(self) -> List[str]:
        return [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} histogram",
            *self.sample_lines(),
        ]


class MetricFamily:
    """A labeled family: one name/help, one child metric per label set.

    The serving layer's shard workers need per-shard samples
    (``repro_worker_queue_depth{shard="2"}``) under one ``# HELP`` /
    ``# TYPE`` header — the Prometheus child-metric model.  ``labels()``
    returns (creating on first use) the child for one label valuation;
    children keep first-use order in the rendered output.
    """

    def __init__(
        self,
        kind: type,
        name: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        if not labelnames:
            raise ValueError(f"metric family {name} needs at least one label name")
        self.kind = kind
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._buckets = buckets
        self._children: Dict[Tuple[str, ...], object] = {}

    def labels(self, **labels: object):
        """Return the child metric for one label valuation (create once)."""
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name} takes labels {self.labelnames}, got {sorted(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            ordered = dict(zip(self.labelnames, key))
            if self.kind is Histogram:
                child = Histogram(
                    self.name,
                    self.help,
                    self._buckets if self._buckets is not None else LATENCY_BUCKETS,
                    labels=ordered,
                )
            else:
                child = self.kind(self.name, self.help, labels=ordered)
            self._children[key] = child
        return child

    def render(self) -> List[str]:
        type_name = {Counter: "counter", Gauge: "gauge", Histogram: "histogram"}[self.kind]
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {type_name}",
        ]
        for child in self._children.values():
            lines.extend(child.sample_lines())  # type: ignore[attr-defined]
        return lines


def _describe(metric: object) -> str:
    """``"a counter"`` / ``"a histogram family (labels shard)"`` — for errors."""
    if isinstance(metric, MetricFamily):
        kind = {Counter: "counter", Gauge: "gauge", Histogram: "histogram"}[metric.kind]
        return f"a {kind} family (labels {', '.join(metric.labelnames)})"
    return f"a {type(metric).__name__.lower()}"


class MetricsRegistry:
    """Name-ordered collection of metrics with one text renderer."""

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _register(self, metric):
        existing = self._metrics.get(metric.name)
        if existing is not None:
            raise ValueError(
                f"metric {metric.name!r} is already registered as "
                f"{_describe(existing)}; cannot re-register it as "
                f"{_describe(metric)}. Reuse the existing instance via "
                f"registry.get({metric.name!r}) instead."
            )
        self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help: str, labelnames: Optional[Sequence[str]] = None):
        if labelnames is not None:
            return self._register(MetricFamily(Counter, name, help, labelnames))
        return self._register(Counter(name, help))

    def gauge(self, name: str, help: str, labelnames: Optional[Sequence[str]] = None):
        if labelnames is not None:
            return self._register(MetricFamily(Gauge, name, help, labelnames))
        return self._register(Gauge(name, help))

    def histogram(
        self,
        name: str,
        help: str,
        buckets: Optional[Sequence[float]] = None,
        labelnames: Optional[Sequence[str]] = None,
    ):
        if labelnames is not None:
            return self._register(MetricFamily(Histogram, name, help, labelnames, buckets))
        return self._register(
            Histogram(name, help, buckets if buckets is not None else LATENCY_BUCKETS)
        )

    def get(self, name: str):
        return self._metrics[name]

    def render(self) -> str:
        """Render every metric in the Prometheus text exposition format."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            lines.extend(self._metrics[name].render())  # type: ignore[attr-defined]
        return "\n".join(lines) + "\n"
