"""``ServeConfig``: the serving-layer knobs, nested inside ``EngineConfig``.

The serving subsystem adds deployment-shaped knobs (port, micro-batch
window, WAL directory, checkpoint cadence) that belong in the same JSON
document as the engine knobs — one config file describes one deployment.
:class:`ServeConfig` mirrors :class:`repro.api.EngineConfig`'s contract:
a frozen dataclass that validates on construction and round-trips through
plain dicts, so ``EngineConfig.from_dict(json.load(f))`` rebuilds the
whole thing (engine *and* server) from one file.

This module deliberately imports only :mod:`repro.errors` so that
``repro.api.config`` can nest it without pulling the asyncio server stack
into every ``import repro.api``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.errors import ConfigError
from repro.history.config import HistoryConfig
from repro.obs.config import ObsConfig

__all__ = ["ServeConfig"]


@dataclass(frozen=True)
class ServeConfig:
    """A complete, validated serving-layer configuration.

    Attributes
    ----------
    host / port:
        Listen address.  ``port=0`` asks the OS for a free port (the
        resolved port is written to ``<wal_dir>/server.json`` and printed
        at startup), which is what the bench and the CI smoke use.
    max_batch:
        Maximum number of edges coalesced into one Algorithm-2 batch pass
        by the ingest gateway.
    max_delay_ms:
        Maximum milliseconds an accepted event may wait in the coalescing
        window before it is committed (the latency half of the
        throughput/latency trade).
    queue_size:
        Bound on the ingest queue (in submitted requests).  A full queue
        makes ``POST /v1/edges`` answer ``429`` with ``Retry-After``
        instead of buffering without limit.
    wal_dir:
        Directory for the write-ahead log and snapshot checkpoints.
        ``None`` disables durability entirely (no WAL, no checkpoints,
        no recovery) — useful for benches and throwaway servers.
    fsync:
        Whether every WAL commit is ``fsync``\\ ed before the HTTP
        acknowledgment (durable against power loss, not just process
        crash).
    checkpoint_interval:
        Number of accepted edges between ``.npz`` snapshot checkpoints.
        Checkpoints bound recovery time: restart replays only the WAL
        suffix past the latest checkpoint.
    max_body_bytes:
        Largest request body the HTTP server accepts (``413`` beyond).
    workers:
        Number of process-resident shard workers behind the gateway
        (``repro.serve.workers``).  ``0`` (default) and ``1`` keep the
        whole engine in the server process; ``>= 2`` hash-partitions the
        graph across that many worker **processes** — true multi-core
        ingest — while the coordinator keeps the exact global mirror, so
        detections stay bit-identical to a single engine.  Supersedes the
        engine-level ``shards`` knob for the served deployment (the
        workers *are* the shards).
    probe_interval_ms:
        While ingest is read-only degraded (WAL append failed), how often
        the background probe re-tests the WAL directory for writability
        before re-entering read-write mode.
    faults:
        Path to a fault-injection plan JSON (``repro.serve.faults``), or
        ``None`` (the production default).  When set, the deployment's
        WAL appends, checkpoint saves, and worker pipes run through a
        deterministic :class:`~repro.serve.faults.FaultInjector` — the
        chaos-testing hook behind ``--faults`` and the CI chaos smoke.
    history:
        Historical-analytics sidecar (:class:`repro.history.HistoryConfig`)
        or ``None`` (default: no background indexer, no ``/v1/history``
        endpoints).  As-of reads (``?asof=SEQ``) only need a ``wal_dir``
        and work either way.  A plain mapping coerces via
        ``HistoryConfig.from_dict`` so one JSON document still describes
        the whole deployment.
    obs:
        Observability knobs (:class:`repro.obs.ObsConfig`): trace
        sampling rate, the always-record slow threshold, the JSONL event
        log destination, and the ``/debug/traces`` ring capacity.
        Always present (tracing defaults on at a 10% sample); a plain
        mapping coerces via ``ObsConfig.from_dict``.
    """

    host: str = "127.0.0.1"
    port: int = 8080
    max_batch: int = 256
    max_delay_ms: float = 5.0
    queue_size: int = 1024
    wal_dir: Optional[str] = None
    fsync: bool = True
    checkpoint_interval: int = 10000
    max_body_bytes: int = 8 * 1024 * 1024
    workers: int = 0
    probe_interval_ms: float = 200.0
    faults: Optional[str] = None
    history: Optional[HistoryConfig] = None
    obs: ObsConfig = ObsConfig()

    def __post_init__(self) -> None:
        if isinstance(self.history, Mapping):
            object.__setattr__(
                self, "history", HistoryConfig.from_dict(self.history)
            )
        if self.history is not None and not isinstance(self.history, HistoryConfig):
            raise ConfigError(
                f"history must be a HistoryConfig, a mapping, or None, "
                f"got {self.history!r}"
            )
        if isinstance(self.obs, Mapping):
            object.__setattr__(self, "obs", ObsConfig.from_dict(self.obs))
        if self.obs is None:
            object.__setattr__(self, "obs", ObsConfig())
        if not isinstance(self.obs, ObsConfig):
            raise ConfigError(
                f"obs must be an ObsConfig, a mapping, or None, got {self.obs!r}"
            )
        if not isinstance(self.host, str) or not self.host:
            raise ConfigError(f"host must be a non-empty string, got {self.host!r}")
        if not 0 <= int(self.port) <= 65535:
            raise ConfigError(f"port must be in [0, 65535], got {self.port}")
        if self.max_batch < 1:
            raise ConfigError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_delay_ms < 0:
            raise ConfigError(f"max_delay_ms must be >= 0, got {self.max_delay_ms}")
        if self.queue_size < 1:
            raise ConfigError(f"queue_size must be >= 1, got {self.queue_size}")
        if self.wal_dir is not None and not isinstance(self.wal_dir, str):
            raise ConfigError(f"wal_dir must be a string path or None, got {self.wal_dir!r}")
        if self.checkpoint_interval < 1:
            raise ConfigError(
                f"checkpoint_interval must be >= 1, got {self.checkpoint_interval}"
            )
        if self.max_body_bytes < 1024:
            raise ConfigError(
                f"max_body_bytes must be >= 1024, got {self.max_body_bytes}"
            )
        if not 0 <= int(self.workers) <= 64:
            raise ConfigError(f"workers must be in [0, 64], got {self.workers}")
        if self.probe_interval_ms <= 0:
            raise ConfigError(
                f"probe_interval_ms must be > 0, got {self.probe_interval_ms}"
            )
        if self.faults is not None and not isinstance(self.faults, str):
            raise ConfigError(
                f"faults must be a fault-plan path or None, got {self.faults!r}"
            )

    # ------------------------------------------------------------------ #
    # Round-tripping (mirrors EngineConfig's contract)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """Export as a plain JSON-serialisable dict (all knobs, always)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ServeConfig":
        """Build (and validate) a config from a dict; unknown keys fail."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(
                f"unknown ServeConfig keys: {', '.join(unknown)}; "
                f"valid keys: {', '.join(sorted(known))}"
            )
        return cls(**dict(data))

    def replace(self, **changes: object) -> "ServeConfig":
        """Return a copy with the given knobs changed (re-validated)."""
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]
