"""``python -m repro.serve``: run one deployment from one JSON document.

Usage::

    python -m repro.serve --config engine.json --port 8080

``engine.json`` is an :class:`~repro.api.EngineConfig` dict, optionally
carrying a nested ``"serve"`` section; CLI flags override the serving
knobs so the same config file works across environments.  The initial
graph comes from ``--load`` (a ``.jsonl`` update stream or a whitespace
edgelist) on first boot only — once a WAL directory has a checkpoint, the
server always recovers from checkpoint + WAL and ``--load`` is ignored.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
from pathlib import Path
from typing import List, Optional

from repro.api.config import EngineConfig
from repro.native import VALID_KERNELS
from repro.serve.app import ServeApp
from repro.serve.config import ServeConfig

__all__ = ["main", "build_parser", "load_initial_edges"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve a Spade detection engine over HTTP.",
    )
    parser.add_argument(
        "--config",
        type=Path,
        default=None,
        help="EngineConfig JSON file (may embed a 'serve' section)",
    )
    parser.add_argument("--host", default=None, help="listen address override")
    parser.add_argument("--port", type=int, default=None, help="listen port override (0 = OS-assigned)")
    parser.add_argument("--wal-dir", default=None, help="durability directory override")
    parser.add_argument(
        "--no-fsync",
        action="store_true",
        help="do not fsync WAL appends (faster, crash-durable only)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-resident shard workers (>= 2 enables multi-core ingest; 0 = in-process)",
    )
    parser.add_argument(
        "--kernel",
        choices=VALID_KERNELS,
        default=None,
        help="hot-loop implementation (native = compiled C kernels, fails loud; "
        "auto = native when available, python fallback)",
    )
    parser.add_argument(
        "--faults",
        default=None,
        help="fault-injection plan JSON (repro.serve.faults) — chaos testing only",
    )
    parser.add_argument(
        "--history-db",
        default=None,
        help="enable the historical-analytics indexer, writing epochs to this "
        "SQLite file ('auto' = <wal-dir>/history.sqlite)",
    )
    parser.add_argument(
        "--epoch-interval",
        type=int,
        default=None,
        help="WAL sequences between cold-store detection epochs (default 64; "
        "implies --history-db auto)",
    )
    parser.add_argument(
        "--trace-sample",
        type=float,
        default=None,
        help="fraction of requests traced end-to-end (0 disables spans, "
        "1 traces everything; default 0.1)",
    )
    parser.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        help="always record requests slower than this many ms, even when "
        "the sampler skipped them (0 disables; default 250)",
    )
    parser.add_argument(
        "--trace-log",
        default=None,
        help="JSONL trace event log destination ('auto' = <wal-dir>/events.jsonl; "
        "inspect with python -m repro.obs tail)",
    )
    parser.add_argument(
        "--load",
        type=Path,
        default=None,
        help="initial edges (.jsonl stream or whitespace edgelist); first boot only",
    )
    return parser


def load_initial_edges(path: Path) -> List[tuple]:
    """Read initial ``(src, dst, weight)`` transactions from a file."""
    if path.suffix == ".jsonl":
        from repro.storage.jsonl import read_stream

        return [(e.src, e.dst, e.weight) for e in read_stream(path)]
    from repro.storage.edgelist import read_edgelist

    return list(read_edgelist(path))


def _resolve_config(args: argparse.Namespace) -> EngineConfig:
    if args.config is not None:
        with args.config.open("r", encoding="utf-8") as handle:
            config = EngineConfig.from_dict(json.load(handle))
    else:
        config = EngineConfig()
    serve = config.serve if config.serve is not None else ServeConfig()
    overrides = {}
    if args.host is not None:
        overrides["host"] = args.host
    if args.port is not None:
        overrides["port"] = args.port
    if args.wal_dir is not None:
        overrides["wal_dir"] = args.wal_dir
    if args.no_fsync:
        overrides["fsync"] = False
    if args.workers is not None:
        overrides["workers"] = args.workers
    if args.faults is not None:
        overrides["faults"] = args.faults
    if args.history_db is not None or args.epoch_interval is not None:
        from repro.history.config import HistoryConfig

        history = serve.history if serve.history is not None else HistoryConfig()
        if args.history_db is not None and args.history_db != "auto":
            history = history.replace(db_path=args.history_db)
        if args.epoch_interval is not None:
            history = history.replace(epoch_interval=args.epoch_interval)
        overrides["history"] = history
    if (
        args.trace_sample is not None
        or args.slow_ms is not None
        or args.trace_log is not None
    ):
        obs = serve.obs
        if args.trace_sample is not None:
            obs = obs.replace(trace_sample=args.trace_sample)
        if args.slow_ms is not None:
            obs = obs.replace(slow_ms=args.slow_ms)
        if args.trace_log is not None:
            obs = obs.replace(trace_log=args.trace_log)
        overrides["obs"] = obs
    if overrides:
        serve = serve.replace(**overrides)
    config = config.replace(serve=serve)
    if args.kernel is not None:
        config = config.replace(kernel=args.kernel)
    return config


async def _run(config: EngineConfig, initial_edges: Optional[List[tuple]]) -> None:
    app = ServeApp(config, initial_edges=initial_edges)
    await app.start()
    print(
        f"repro.serve listening on http://{app.serve_config.host}:{app.server.port} "
        f"(semantics={app.client.semantics.name}, backend={app.client.backend}, "
        f"shards={app.client.shards}, workers={app.serve_config.workers}, "
        f"kernel={app.active_kernel}, recovered_ops={app.recovered_ops})",
        flush=True,
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signame in ("SIGINT", "SIGTERM"):
        try:
            loop.add_signal_handler(getattr(signal, signame), stop.set)
        except (NotImplementedError, AttributeError):  # pragma: no cover - win
            pass
    try:
        await stop.wait()
    finally:
        await app.stop()


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    config = _resolve_config(args)
    initial = load_initial_edges(args.load) if args.load is not None else None
    try:
        asyncio.run(_run(config, initial))
    except KeyboardInterrupt:  # pragma: no cover - interactive convenience
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
