"""A minimal asyncio HTTP/1.1 server (stdlib-only, keep-alive, JSON).

The serving layer needs exactly this much HTTP: parse a request line +
headers + a ``Content-Length`` body, dispatch to an async handler, write a
response, and keep the connection open for the next request.  Building it
on ``asyncio.start_server`` keeps the whole subsystem dependency-free and
single-loop (``http.server`` is thread-per-connection and would break the
single-writer lock discipline).

Out of scope by design: TLS, chunked transfer encoding (``411``/``501``),
HTTP/2, and multipart bodies.  Limits are enforced up front — header block
``<= 32 KiB``, body ``<= max_body_bytes`` (``413``) — so a misbehaving
client cannot balloon the process.
"""

from __future__ import annotations

import asyncio
import json
from typing import Awaitable, Callable, Dict, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = ["Request", "Response", "HttpError", "HttpServer", "json_response"]

#: Upper bound on the request line + header block.
MAX_HEADER_BYTES = 32 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}


class Request:
    """One parsed HTTP request."""

    __slots__ = ("method", "path", "query", "headers", "body", "http_version")

    def __init__(
        self,
        method: str,
        path: str,
        query: Dict[str, str],
        headers: Dict[str, str],
        body: bytes,
        http_version: str,
    ) -> None:
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body
        self.http_version = http_version

    def json(self) -> object:
        """Parse the body as JSON (:class:`HttpError` 400 on failure)."""
        if not self.body:
            raise HttpError(400, "request body required")
        try:
            return json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise HttpError(400, f"invalid JSON body: {exc}") from None


class Response:
    """One response: a status, a payload and optional extra headers."""

    __slots__ = ("status", "body", "content_type", "headers")

    def __init__(
        self,
        status: int,
        body: bytes,
        content_type: str = "application/json",
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self.status = status
        self.body = body
        self.content_type = content_type
        self.headers = headers or {}


def json_response(
    status: int, payload: object, headers: Optional[Dict[str, str]] = None
) -> Response:
    """Build an ``application/json`` response from a JSON-able payload."""
    body = (json.dumps(payload) + "\n").encode("utf-8")
    return Response(status, body, "application/json", headers)


class HttpError(Exception):
    """Raise inside a handler to answer with a specific status."""

    def __init__(
        self, status: int, message: str, headers: Optional[Dict[str, str]] = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or {}


Handler = Callable[[Request], Awaitable[Response]]


async def _read_request(
    reader: asyncio.StreamReader, max_body: int
) -> Optional[Request]:
    """Read one request off the stream; ``None`` on a clean EOF."""
    try:
        header_block = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "truncated request")
    except asyncio.LimitOverrunError:
        raise HttpError(413, "header block too large")
    if len(header_block) > MAX_HEADER_BYTES:
        raise HttpError(413, "header block too large")
    try:
        text = header_block.decode("latin-1")
        request_line, *header_lines = text.split("\r\n")
        method, target, http_version = request_line.split(" ", 2)
    except ValueError:
        raise HttpError(400, "malformed request line")
    headers: Dict[str, str] = {}
    for line in header_lines:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    if "transfer-encoding" in headers:
        raise HttpError(501, "chunked transfer encoding is not supported")
    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError:
            raise HttpError(400, "invalid Content-Length")
        if length < 0:
            raise HttpError(400, "invalid Content-Length")
        if length > max_body:
            raise HttpError(413, f"body exceeds {max_body} bytes")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise HttpError(400, "truncated request body")
    elif method in ("POST", "PUT", "PATCH"):
        raise HttpError(411, "Content-Length required")
    parts = urlsplit(target)
    query = dict(parse_qsl(parts.query, keep_blank_values=True))
    return Request(
        method.upper(), unquote(parts.path), query, headers, body, http_version
    )


def _render(response: Response, keep_alive: bool) -> bytes:
    reason = _REASONS.get(response.status, "Unknown")
    lines = [
        f"HTTP/1.1 {response.status} {reason}",
        f"Content-Type: {response.content_type}",
        f"Content-Length: {len(response.body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in response.headers.items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + response.body


class HttpServer:
    """``asyncio.start_server`` wrapper dispatching to one async handler."""

    def __init__(
        self,
        handler: Handler,
        host: str = "127.0.0.1",
        port: int = 0,
        max_body: int = 8 * 1024 * 1024,
    ) -> None:
        self._handler = handler
        self._host = host
        self._requested_port = port
        self._max_body = max_body
        self._server: Optional[asyncio.AbstractServer] = None
        self.port: int = port

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_connection,
            self._host,
            self._requested_port,
            limit=MAX_HEADER_BYTES + 1024,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await _read_request(reader, self._max_body)
                except HttpError as exc:
                    writer.write(
                        _render(
                            json_response(exc.status, {"error": exc.message}, exc.headers),
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                keep_alive = (
                    request.headers.get("connection", "").lower() != "close"
                    and request.http_version != "HTTP/1.0"
                )
                try:
                    response = await self._handler(request)
                except HttpError as exc:
                    response = json_response(
                        exc.status, {"error": exc.message}, exc.headers
                    )
                except Exception as exc:  # noqa: BLE001 - boundary of the server
                    response = json_response(
                        500, {"error": f"{type(exc).__name__}: {exc}"}
                    )
                writer.write(_render(response, keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            # No wait_closed here: the handler task gets cancelled by
            # server shutdown while parked on the next request, and
            # awaiting inside that cancellation re-raises noisily.
            # close() schedules the transport teardown on the loop.
            try:
                writer.close()
            except RuntimeError:  # pragma: no cover - loop already closed
                pass
