"""Process-resident shard workers: true multi-core ingest for ``repro.serve``.

The in-process :class:`~repro.engine.sharded.ShardedSpade` proved the
partition-then-combine discipline (13× single-edge insert throughput at 4
shards), but the served stack still drove every shard from one GIL-bound
interpreter.  This module moves each shard into a **resident worker
process** (spawn start method, one duplex pipe per shard) while the
coordinator — the asyncio gateway's single writer — keeps exactly the
responsibilities that must stay ordered and global:

* the **mirror**: the bit-identical global graph every ``vsusp`` /
  ``esusp`` evaluation runs against, and the thing merged ``detect()``
  peels (via its cached CSR snapshot) — so exactness never depends on
  worker state;
* the **WAL sequence**: one ordered log, acks only after WAL append +
  worker apply, deletes/flushes remaining ordering barriers across all
  shards;
* the **routing/parking discipline** inherited unchanged from
  ``ShardedSpade`` (same PYTHONHASHSEED-independent hash, so worker-mode
  answers are comparable with in-process answers edge for edge).

What changes is *where* shard maintenance runs: the dispatch hooks
scatter per-shard slices to the worker pipes and then gather, so N
workers chew their reorder passes concurrently on real cores.  Parked
cross-shard batches drain the same way — one ``runs`` message per owning
shard, all shards in flight at once — turning the coordinator pass into a
pipelined stage instead of a serial loop.

Worker state is **derived state**: given the mirror and the router it is
reconstructible at any time, which makes the failure policy simple — a
dead, wedged or erroring worker is killed and respawned from a fresh
partition of the mirror (``kill -9`` a worker mid-stream and the served
answers stay bit-identical to the offline single-engine replay; the
respawn is counted in ``repro_worker_restarts_total``).  Boot and respawn
ship the shard subgraph as a ``CsrSnapshot`` ``.npz`` that the child
memory-maps read-only (the PR 2 zero-copy path).

Respawns are budgeted: ``respawn_budget`` boot attempts per incident,
with exponential backoff between attempts.  A shard that crash-loops
through its whole budget triggers **fallback to the in-process engine**
— the workers are stopped and the inherited ``ShardedSpade`` shard
engines are rebuilt from the mirror, so the deployment keeps serving
exact answers (single-core again, reported via ``/healthz`` and the
``repro_worker_fallback`` gauge) instead of crash-looping the
coordinator.  Fault injection (``repro.serve.faults``) hooks the spawn
(``worker.spawn`` crash) and pipe (``worker.post`` / ``worker.collect``)
seams to prove exactly that path in CI.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import tempfile
import time
from typing import Dict, List, Optional, Tuple

from repro.core.reorder import ReorderStats
from repro.core.state import Community
from repro.engine.sharded import ShardedSpade
from repro.engine.worker import WorkerState, decode_state, encode_update, shard_worker_main
from repro.errors import ReproError, WorkerFallbackError
from repro.graph.csr import freeze_graph
from repro.graph.delta import EdgeUpdate
from repro.graph.graph import DynamicGraph, Vertex
from repro.obs.context import current_trace
from repro.peeling.semantics import PeelingSemantics
from repro.serve.metrics import MetricsRegistry, SIZE_BUCKETS

__all__ = ["ShardWorker", "WorkerCrash", "WorkerEngine"]

#: Spawn, never fork: the coordinator runs inside an asyncio process with
#: executor threads, and forking a threaded interpreter is a deadlock
#: lottery.  Spawned children boot a clean interpreter and re-import.
_CTX = multiprocessing.get_context("spawn")


class WorkerCrash(ReproError):
    """A shard worker died, timed out, or answered with an error."""


class ShardWorker:
    """One resident shard process behind a strict request/response pipe."""

    def __init__(
        self,
        index: int,
        staging_dir: str,
        semantics_name: str,
        edge_grouping: bool,
        backend: str,
        kernel: Optional[str] = None,
        injector: Optional[object] = None,
    ) -> None:
        self.index = index
        self._staging = staging_dir
        self._semantics_name = semantics_name
        self._edge_grouping = edge_grouping
        self._backend = backend
        self._kernel = kernel
        self._injector = injector
        self._conn = None
        self._proc: Optional[multiprocessing.process.BaseProcess] = None
        self._loads = 0
        self._snapshot_path: Optional[str] = None

    def _maybe_inject(self, site: str) -> None:
        """Consume one fault-plan invocation of a pipe seam (chaos only)."""
        if self._injector is not None:
            try:
                self._injector.on_worker_pipe(site, self.index)  # type: ignore[attr-defined]
            except OSError as exc:
                raise WorkerCrash(
                    f"shard worker {self.index}: injected {site} failure: {exc}"
                ) from exc

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def spawn(self) -> None:
        """Start the child process (idempotent only via destroy-first)."""
        parent, child = _CTX.Pipe()
        proc = _CTX.Process(
            target=shard_worker_main,
            args=(child, self.index),
            name=f"repro-shard-{self.index}",
            daemon=True,
        )
        proc.start()
        child.close()
        self._conn = parent
        self._proc = proc
        if self._injector is not None:
            # worker.spawn crash rules SIGKILL the fresh child here.
            self._injector.on_worker_spawn(proc.pid)  # type: ignore[attr-defined]

    @property
    def pid(self) -> Optional[int]:
        return self._proc.pid if self._proc is not None else None

    def alive(self) -> bool:
        return self._proc is not None and self._proc.is_alive()

    def destroy(self) -> None:
        """Close the pipe and make sure the child is gone."""
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None
        if self._proc is not None:
            if self._proc.is_alive():
                self._proc.terminate()
                self._proc.join(timeout=5)
                if self._proc.is_alive():  # pragma: no cover - stuck child
                    self._proc.kill()
                    self._proc.join(timeout=5)
            self._proc = None
        self.discard_snapshot()

    def stop(self, timeout: float = 5.0) -> None:
        """Graceful shutdown: ask, wait, then force."""
        if self._conn is not None and self.alive():
            try:
                self._conn.send(("stop", None))
            except (BrokenPipeError, OSError):
                pass
            else:
                assert self._proc is not None
                self._proc.join(timeout=timeout)
        self.destroy()

    # ------------------------------------------------------------------ #
    # Requests
    # ------------------------------------------------------------------ #
    def post(self, message: Tuple[str, object]) -> None:
        """Send one request without waiting (scatter half)."""
        self._maybe_inject("worker.post")
        if self._conn is None:
            raise WorkerCrash(f"shard worker {self.index} has no live pipe")
        try:
            self._conn.send(message)
        except (BrokenPipeError, OSError) as exc:
            raise WorkerCrash(f"shard worker {self.index} pipe broke on send: {exc}") from exc

    def post_load(self, shard_graph: DynamicGraph) -> None:
        """Freeze ``shard_graph`` to a ``.npz`` and send the load request."""
        self._loads += 1
        path = os.path.join(self._staging, f"shard{self.index}-{self._loads}.npz")
        freeze_graph(shard_graph).save(path)
        self._snapshot_path = path
        self.post(
            (
                "load",
                {
                    "snapshot": path,
                    "semantics": self._semantics_name,
                    "edge_grouping": self._edge_grouping,
                    "backend": self._backend,
                    "kernel": self._kernel,
                },
            )
        )

    def discard_snapshot(self) -> None:
        """Unlink the staged boot snapshot once the worker adopted it."""
        if self._snapshot_path is not None:
            try:
                os.unlink(self._snapshot_path)
            except OSError:
                pass
            self._snapshot_path = None

    def collect(self, timeout: float) -> Optional[WorkerState]:
        """Receive one response (gather half); raise :class:`WorkerCrash`.

        Polls in short slices so a child that died without closing the
        pipe (``kill -9``) is noticed promptly rather than at the
        deadline.
        """
        self._maybe_inject("worker.collect")
        if self._conn is None:
            raise WorkerCrash(f"shard worker {self.index} has no live pipe")
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise WorkerCrash(
                    f"shard worker {self.index} timed out after {timeout:.0f}s"
                )
            if self._conn.poll(min(remaining, 0.2)):
                try:
                    status, payload = self._conn.recv()
                except (EOFError, OSError) as exc:
                    raise WorkerCrash(
                        f"shard worker {self.index} pipe closed mid-request: {exc}"
                    ) from exc
                if status != "ok":
                    raise WorkerCrash(f"shard worker {self.index} failed: {payload}")
                if isinstance(payload, dict) and "community" in payload:
                    return decode_state(payload)
                return None
            if self._proc is not None and not self._proc.is_alive():
                # One last poll: a response may still sit in the pipe.
                if self._conn.poll(0):
                    continue
                raise WorkerCrash(
                    f"shard worker {self.index} exited with code {self._proc.exitcode}"
                )


class WorkerEngine(ShardedSpade):
    """``ShardedSpade`` whose shards live in resident worker processes.

    Inherits the whole coordinator discipline — mirror maintenance,
    semantics evaluation, routing, cross-shard parking, merged detection
    off the mirror snapshot — and overrides only the shard dispatch
    hooks, scattering each dispatch across the worker pipes and gathering
    the per-shard results (community view, maintenance counters, benign
    buffer depth) that every worker response carries.

    Failure policy: any pipe break, timeout or worker-side error respawns
    that shard from a fresh partition of the mirror; parked updates homed
    on the respawned shard are dropped because the mirror (and therefore
    the rebuilt shard) already contains them.
    """

    def __init__(
        self,
        semantics: Optional[PeelingSemantics] = None,
        num_shards: int = 4,
        edge_grouping: bool = False,
        backend: Optional[str] = None,
        coordinator_interval: int = 1024,
        kernel: Optional[str] = None,
        metrics: Optional[MetricsRegistry] = None,
        request_timeout: float = 120.0,
        load_timeout: float = 600.0,
        respawn_budget: int = 3,
        respawn_backoff: float = 0.05,
        injector: Optional[object] = None,
    ) -> None:
        super().__init__(
            semantics,
            num_shards=num_shards,
            edge_grouping=edge_grouping,
            backend=backend,
            coordinator_interval=coordinator_interval,
            kernel=kernel,
        )
        self._workers: List[ShardWorker] = []
        self._local: List[Optional[Community]] = [None] * num_shards
        self._benign_pending = [0] * num_shards
        self._parked_by_home = [0] * num_shards
        self._request_timeout = float(request_timeout)
        self._load_timeout = float(load_timeout)
        self._respawn_budget = max(1, int(respawn_budget))
        self._respawn_backoff = float(respawn_backoff)
        self._injector = injector
        self._staging = tempfile.mkdtemp(prefix="repro-workers-")
        self._closed = False
        self._fallback = False
        self._fallback_reason: Optional[str] = None
        #: Respawn count per shard (also exported as a labeled counter).
        self.worker_restarts = [0] * num_shards
        #: Latest cumulative repro.obs.profile snapshot per shard (each
        #: worker response carries one; a respawned worker restarts its
        #: counters, so these undercount across respawns).
        self._worker_profiles: Dict[int, Dict[str, Dict[str, float]]] = {}

        self._m_queue = self._m_apply = self._m_restarts = self._m_fallback = None
        self._m_stage = None
        if metrics is not None:
            # Shared with IngestGateway (whichever constructs first registers).
            try:
                self._m_stage = metrics.get("repro_stage_seconds")
            except KeyError:
                self._m_stage = metrics.histogram(
                    "repro_stage_seconds",
                    "Per-request pipeline stage latency (tracing-independent)",
                    labelnames=("stage",),
                )
        if metrics is not None:
            self._m_queue = metrics.gauge(
                "repro_worker_queue_depth",
                "Parked cross-shard updates awaiting the owning worker",
                labelnames=("shard",),
            )
            self._m_apply = metrics.histogram(
                "repro_worker_apply_seconds",
                "Per-dispatch worker apply latency (send to response)",
                labelnames=("shard",),
            )
            self._m_restarts = metrics.counter(
                "repro_worker_restarts_total",
                "Worker processes respawned after a crash/timeout/error",
                labelnames=("shard",),
            )
            self._m_batch = metrics.histogram(
                "repro_worker_dispatch_edges",
                "Edges shipped to one worker in one dispatch",
                buckets=SIZE_BUCKETS,
                labelnames=("shard",),
            )
            self._m_fallback = metrics.gauge(
                "repro_worker_fallback",
                "1 after shard workers fell back to the in-process engine, else 0",
            )
        else:
            self._m_batch = None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def worker_pids(self) -> List[Optional[int]]:
        """Live worker process ids, in shard order (operational surface)."""
        return [worker.pid for worker in self._workers]

    def worker_profiles(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        """Latest per-shard profile tables, keyed ``"shard-N"`` (/debug/profile)."""
        return {
            f"shard-{home}": dict(table)
            for home, table in sorted(self._worker_profiles.items())
        }

    @property
    def fallback(self) -> bool:
        """True once shard maintenance fell back to in-process engines."""
        return self._fallback

    @property
    def fallback_reason(self) -> Optional[str]:
        """Why the fallback happened, or ``None`` while workers serve."""
        return self._fallback_reason

    # ------------------------------------------------------------------ #
    # Shard dispatch hooks (process-resident overrides)
    # ------------------------------------------------------------------ #
    def _boot_shards(self, shard_graphs: List[DynamicGraph]) -> None:
        if self._closed:
            raise ReproError("worker engine is closed")
        if self._fallback:
            ShardedSpade._boot_shards(self, shard_graphs)
            return
        self._stop_workers()
        self._shards = []  # no in-process shard engines in worker mode
        self._local = [None] * self._num_shards
        self._benign_pending = [0] * self._num_shards
        self._parked_by_home = [0] * self._num_shards
        self._workers = [
            ShardWorker(
                index,
                self._staging,
                self._semantics.name,
                self._edge_grouping,
                self.backend,
                kernel=self._kernel,
                injector=self._injector,
            )
            for index in range(self._num_shards)
        ]
        # Spawn + load scatter first, gather second: the children boot
        # and run their Algorithm-1 static peels concurrently.
        try:
            for worker in self._workers:
                worker.spawn()
            for worker, shard_graph in zip(self._workers, shard_graphs):
                worker.post_load(shard_graph)
        except WorkerCrash as exc:
            # A boot-time spawn/post failure: retry every shard through
            # the budgeted path (the healthy ones just reboot quickly).
            self._reboot_all(exc)
            return
        for index, worker in enumerate(self._workers):
            try:
                state = worker.collect(self._load_timeout)
                if state is None:
                    raise WorkerCrash(
                        f"shard worker {index} answered its load without state"
                    )
            except WorkerCrash as exc:
                worker.destroy()
                try:
                    self._workers[index] = self._boot_worker(index, exc)
                except WorkerFallbackError as failure:
                    self._enter_fallback(str(failure))
                    return
                continue
            worker.discard_snapshot()
            self._local[index] = state.community
            self._benign_pending[index] = state.pending

    def _reboot_all(self, cause: WorkerCrash) -> None:
        """Re-boot every shard through the budgeted path (may fall back)."""
        for worker in self._workers:
            worker.destroy()
        for index in range(self._num_shards):
            try:
                self._workers[index] = self._boot_worker(index, cause)
            except WorkerFallbackError as failure:
                self._enter_fallback(str(failure))
                return

    def _boot_worker(self, home: int, cause: Optional[Exception] = None) -> ShardWorker:
        """Spawn + load one shard from the mirror, within the respawn budget.

        Retries up to ``respawn_budget`` times with exponential backoff
        between attempts; a shard that cannot be brought up raises
        :class:`~repro.errors.WorkerFallbackError` (typed — never a bare
        ``AssertionError``) so the caller can fall back to the in-process
        engine instead of killing the coordinator.
        """
        last_error: Optional[Exception] = cause
        for attempt in range(1, self._respawn_budget + 1):
            if attempt > 1:
                time.sleep(min(self._respawn_backoff * 2 ** (attempt - 2), 2.0))
            worker = ShardWorker(
                home,
                self._staging,
                self._semantics.name,
                self._edge_grouping,
                self.backend,
                injector=self._injector,
            )
            try:
                worker.spawn()
                worker.post_load(self._build_shard_graph(home))
                state = worker.collect(self._load_timeout)
                if state is None:
                    raise WorkerCrash(
                        f"shard worker {home} answered its load without state"
                    )
            except WorkerCrash as exc:
                last_error = exc
                worker.destroy()
                continue
            worker.discard_snapshot()
            self._local[home] = state.community
            self._benign_pending[home] = state.pending
            return worker
        raise WorkerFallbackError(
            f"shard {home} failed to come up after {self._respawn_budget} "
            f"attempts: {last_error}"
        )

    def _enter_fallback(self, reason: str) -> None:
        """Stop the workers and rebuild in-process shards from the mirror.

        The mirror holds every accepted update (it is maintained before
        any dispatch), so partitioning it rebuilds exact shard state; the
        parked cross-shard queue is dropped for the same reason — its
        updates are already in the mirror, and the rebuilt shards would
        double-apply them.
        """
        self._fallback = True
        self._fallback_reason = reason
        if self._m_fallback is not None:
            self._m_fallback.set(1)
        self._stop_workers()
        self._local = [None] * self._num_shards
        self._benign_pending = [0] * self._num_shards
        self._pending = []
        self._pending_has_delete = False
        for home in range(self._num_shards):
            if self._parked_by_home[home]:
                self._parked_by_home[home] = 0
                if self._m_queue is not None:
                    self._m_queue.labels(shard=home).set(0)
        ShardedSpade._boot_shards(self, self._partition_graphs())

    def _park(self, update: EdgeUpdate, home: int) -> None:
        super()._park(update, home)
        self._parked_by_home[home] += 1
        if self._m_queue is not None:
            self._m_queue.labels(shard=home).set(self._parked_by_home[home])

    def _dispatch_immediate(
        self,
        immediate: Dict[int, List[EdgeUpdate]],
        batch: bool,
        timestamp: Optional[float],
        stats: ReorderStats,
    ) -> None:
        if self._fallback:
            ShardedSpade._dispatch_immediate(self, immediate, batch, timestamp, stats)
            return
        messages: Dict[int, Tuple[str, object]] = {}
        for home, routed in immediate.items():
            if not batch and len(routed) == 1:
                messages[home] = ("single", (encode_update(routed[0]), timestamp))
            else:
                messages[home] = ("batch", [encode_update(u) for u in routed])
        self._scatter(messages, stats)

    def _dispatch_deletes(
        self, immediate: Dict[int, List[Tuple[Vertex, Vertex]]], stats: ReorderStats
    ) -> None:
        if self._fallback:
            ShardedSpade._dispatch_deletes(self, immediate, stats)
            return
        self._scatter(
            {home: ("delete", [tuple(edge) for edge in doomed]) for home, doomed in immediate.items()},
            stats,
        )

    def _dispatch_parked(
        self, per_home: Dict[int, List[EdgeUpdate]], stats: Optional[ReorderStats]
    ) -> None:
        if self._fallback:
            ShardedSpade._dispatch_parked(self, per_home, stats)
            return
        messages: Dict[int, Tuple[str, object]] = {}
        for home, ops in per_home.items():
            runs: List[Tuple[bool, List[object]]] = []
            i = 0
            while i < len(ops):
                j = i
                if ops[i].delete:
                    while j < len(ops) and ops[j].delete:
                        j += 1
                    runs.append((True, [(u.src, u.dst) for u in ops[i:j]]))
                else:
                    while j < len(ops) and not ops[j].delete:
                        j += 1
                    runs.append((False, [encode_update(u) for u in ops[i:j]]))
                i = j
            messages[home] = ("runs", runs)
        self._scatter(messages, stats)
        for home in range(self._num_shards):
            if self._parked_by_home[home]:
                self._parked_by_home[home] = 0
                if self._m_queue is not None:
                    self._m_queue.labels(shard=home).set(0)

    def _flush_shards(self) -> None:
        if self._fallback:
            ShardedSpade._flush_shards(self)
            return
        self._scatter(
            {home: ("flush", None) for home in range(self._num_shards)}, None
        )

    def _shard_communities(self) -> List[Community]:
        if self._fallback:
            return ShardedSpade._shard_communities(self)
        # Every worker response carries the shard's current community, so
        # the coordinator-side cache is always fresh: no IPC round trip.
        communities = []
        for home, community in enumerate(self._local):
            if community is None:
                raise ReproError(f"shard worker {home} has no loaded state")
            communities.append(community)
        return communities

    def _shard_pending(self) -> int:
        if self._fallback:
            return ShardedSpade._shard_pending(self)
        return sum(self._benign_pending)

    def shard_communities(self, parallel: Optional[bool] = None) -> List[Community]:
        """Every shard's current community (coordinator pass included).

        Worker mode keeps the per-shard answers current on every
        response, so this is IPC-free beyond the coordinator pass itself
        (``parallel`` is accepted for interface compatibility — the work
        already ran in the worker processes).
        """
        if self._fallback:
            return ShardedSpade.shard_communities(self, parallel)
        self._coordinator_pass()
        return self._shard_communities()

    # ------------------------------------------------------------------ #
    # Scatter/gather + failure policy
    # ------------------------------------------------------------------ #
    def _edges_in(self, message: Tuple[str, object]) -> int:
        kind, payload = message
        if kind == "single":
            return 1
        if kind in ("batch", "delete"):
            return len(payload)  # type: ignore[arg-type]
        if kind == "runs":
            return sum(len(rows) for _is_delete, rows in payload)  # type: ignore[union-attr]
        return 0

    def _scatter(
        self,
        messages: Dict[int, Tuple[str, object]],
        stats: Optional[ReorderStats],
    ) -> None:
        """Send every shard its slice, then gather; respawn on failure.

        The scatter half never blocks on a slow shard (one request per
        pipe, workers are always draining), so all addressed workers run
        their maintenance passes concurrently; the gather half observes
        per-shard apply latency and refreshes the cached local views.

        When a trace is ambient (the ingest commit thread activated the
        request's :class:`~repro.obs.context.TraceContext`), each request
        carries the trace id over the pipe and each gather records a
        ``worker_roundtrip`` span with a ``worker_apply`` child anchored
        by the worker-reported apply *duration* — worker clocks are not
        comparable to the coordinator's, so the child is pinned to the
        end of the round trip.
        """
        trace = current_trace()
        posted: List[Tuple[int, float]] = []
        for home, message in messages.items():
            wire: tuple = message
            if trace is not None:
                wire = (message[0], message[1], {"trace": trace.trace_id})
            began = time.perf_counter()
            try:
                self._workers[home].post(wire)
            except WorkerCrash:
                self._respawn(home)
                if self._fallback:
                    return
                continue
            posted.append((home, began))
            if self._m_batch is not None:
                self._m_batch.labels(shard=home).observe(max(1, self._edges_in(message)))
        for home, began in posted:
            if self._fallback:
                return
            try:
                state = self._workers[home].collect(self._request_timeout)
            except WorkerCrash:
                self._respawn(home)
                if self._fallback:
                    return
                continue
            if state is None:  # pragma: no cover - protocol invariant
                continue
            now = time.perf_counter()
            if self._m_apply is not None:
                self._m_apply.labels(shard=home).observe(now - began)
            if self._m_stage is not None:
                self._m_stage.labels(stage="worker_roundtrip").observe(now - began)
            if trace is not None:
                roundtrip = trace.add_span(
                    "worker_roundtrip",
                    began,
                    now,
                    shard=home,
                    kind=messages[home][0],
                )
                if state.elapsed > 0:
                    trace.add_span(
                        "worker_apply",
                        now - state.elapsed,
                        now,
                        parent=roundtrip,
                        shard=home,
                    )
            if state.profile:
                self._worker_profiles[home] = state.profile
            self._local[home] = state.community
            self._benign_pending[home] = state.pending
            if stats is not None:
                stats.merge(state.stats)

    def _respawn(self, home: int) -> None:
        """Respawn one shard from a fresh partition of the mirror.

        The mirror is updated *before* any dispatch, so the rebuilt shard
        already reflects whatever slice the dead worker never applied —
        including any still-parked updates homed there, which are
        therefore dropped from the queue instead of double-applied.
        """
        trace = current_trace()
        respawn_began = time.perf_counter()
        self.worker_restarts[home] += 1
        if self._m_restarts is not None:
            self._m_restarts.labels(shard=home).inc()
        self._workers[home].destroy()
        self._worker_profiles.pop(home, None)
        if self._pending:
            kept = [u for u in self._pending if self.router.shard_of(u.src) != home]
            if len(kept) != len(self._pending):
                self._pending = kept
                self._pending_has_delete = any(u.delete for u in kept)
        self._parked_by_home[home] = 0
        if self._m_queue is not None:
            self._m_queue.labels(shard=home).set(0)
        try:
            self._workers[home] = self._boot_worker(home)
        except WorkerFallbackError as exc:
            self._enter_fallback(str(exc))
        finally:
            if trace is not None:
                trace.add_span(
                    "worker_respawn",
                    respawn_began,
                    time.perf_counter(),
                    shard=home,
                    restarts=self.worker_restarts[home],
                    fallback=self._fallback,
                )

    # ------------------------------------------------------------------ #
    # Shutdown
    # ------------------------------------------------------------------ #
    def _stop_workers(self) -> None:
        for worker in self._workers:
            worker.stop()
        self._workers = []

    def close(self) -> None:
        """Stop every worker and remove the snapshot staging directory."""
        if self._closed:
            return
        self._closed = True
        self._stop_workers()
        shutil.rmtree(self._staging, ignore_errors=True)

    def __enter__(self) -> "WorkerEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - best-effort safety net
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        pids = [worker.pid for worker in self._workers]
        return (
            f"WorkerEngine(semantics={self._semantics.name}, backend={self.backend}, "
            f"shards={self._num_shards}, pids={pids}, restarts={self.worker_restarts})"
        )
