"""The micro-batching ingest gateway: the serving layer's single writer.

Concurrent ``POST /v1/edges`` handlers do not touch the engine.  They
enqueue their parsed events on a bounded :class:`asyncio.Queue` and await
a future; one writer task drains the queue, coalescing consecutive insert
submissions into a single :class:`~repro.api.events.InsertBatch` — the
paper's Algorithm-2 batch pass — bounded by ``max_batch`` edges or a
``max_delay_ms`` window, whichever closes first.  Deletes and flushes are
ordering barriers: they close the current window and are applied as their
own operations, so the WAL replays exactly what happened.

Commit protocol (per window, under the shared writer lock, off-loop)::

    1. append the coalesced operation(s) to the WAL   (fsync if configured)
    2. apply them to the engine through SpadeClient.apply
    3. maybe cut a checkpoint (every checkpoint_interval accepted edges)

then advance the snapshot service's version and resolve the waiters'
futures.  An event is acknowledged over HTTP only after step 2, so every
acknowledged event is both durable and applied — the invariant the
kill-and-restart tests exercise.

Backpressure is explicit: a full queue makes :meth:`IngestGateway.submit`
return ``None`` and the HTTP layer answers ``429`` with ``Retry-After``
instead of growing an unbounded buffer in front of a saturated engine.

Degraded read-only mode
-----------------------
A WAL append that fails with ``OSError`` (disk full, EIO — injected or
real) can never be acknowledged, so the gateway flips into **read-only
degraded mode**: the in-flight window's waiters fail with
:class:`~repro.errors.DegradedError` (the HTTP layer answers ``503``
with ``Retry-After``), new submissions are refused immediately, and
snapshot reads keep serving at the last durable version — safe because
the WAL append *precedes* the engine apply, so served state never ran
ahead of the log.  A background probe re-tests the WAL directory every
``probe_interval_ms`` and re-enters read-write the moment an fsynced
probe write succeeds.  ``repro_degraded_mode`` (gauge) and
``repro_wal_errors_total`` (counter) expose the state.
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.api.client import SpadeClient
from repro.api.events import Delete, Event, Flush, InsertBatch
from repro.errors import DegradedError, ReproError
from repro.graph.delta import EdgeUpdate
from repro.obs.context import TraceContext, activate, deactivate
from repro.serve.config import ServeConfig
from repro.serve.metrics import MetricsRegistry, SIZE_BUCKETS
from repro.serve.snapshots import SnapshotService
from repro.serve.wal import WriteAheadLog

__all__ = ["IngestGateway", "Submission"]


class Submission:
    """One queued write request awaiting commit.

    ``trace`` rides along explicitly because the commit happens on an
    executor thread — ``run_in_executor`` does not propagate
    :mod:`contextvars`, so the request's :class:`TraceContext` must
    travel with the data it describes.
    """

    __slots__ = ("kind", "updates", "edges", "future", "enqueued_at", "trace")

    def __init__(
        self,
        kind: str,
        updates: Sequence,
        edges: int,
        future: "asyncio.Future[Dict[str, object]]",
        trace: Optional[TraceContext] = None,
    ) -> None:
        self.kind = kind  # "insert" | "delete" | "flush"
        self.updates = updates
        self.edges = edges
        self.future = future
        self.enqueued_at = time.perf_counter()
        self.trace = trace


class IngestGateway:
    """Bounded queue + writer task turning submissions into committed ops."""

    def __init__(
        self,
        client: SpadeClient,
        service: SnapshotService,
        lock: asyncio.Lock,
        config: ServeConfig,
        metrics: MetricsRegistry,
        wal: Optional[WriteAheadLog] = None,
        checkpoint: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        self._client = client
        self._service = service
        self._lock = lock
        self._config = config
        self._wal = wal
        self._checkpoint = checkpoint
        self._queue: "asyncio.Queue[Submission]" = asyncio.Queue(config.queue_size)
        self._task: Optional["asyncio.Task[None]"] = None
        self._seq = 0
        self._edges_since_checkpoint = 0
        self._degraded = False
        self._degraded_reason: Optional[str] = None
        self._probe_task: Optional["asyncio.Task[None]"] = None

        self._m_accepted = metrics.counter(
            "repro_ingest_events_accepted_total", "Edges accepted (acknowledged)"
        )
        self._m_rejected = metrics.counter(
            "repro_ingest_events_rejected_total", "Edges rejected with 429 backpressure"
        )
        self._m_batches = metrics.counter(
            "repro_ingest_batches_total", "Coalesced operations committed"
        )
        self._m_batch_size = metrics.histogram(
            "repro_ingest_batch_size_edges", "Edges per coalesced operation", SIZE_BUCKETS
        )
        self._m_commit = metrics.histogram(
            "repro_ingest_commit_seconds", "WAL append + engine apply per window"
        )
        self._m_fsync = metrics.histogram(
            "repro_wal_append_seconds", "WAL append (incl. fsync) per operation"
        )
        self._m_apply = metrics.histogram(
            "repro_engine_apply_seconds",
            "Engine apply per operation (scatter/gather when worker-sharded)",
        )
        self._m_latency = metrics.histogram(
            "repro_ingest_ack_seconds", "Submission enqueue to acknowledgment"
        )
        self._m_depth = metrics.gauge(
            "repro_ingest_queue_depth", "Submissions waiting in the ingest queue"
        )
        self._m_degraded = metrics.gauge(
            "repro_degraded_mode",
            "1 while ingest is read-only degraded (WAL unwritable), else 0",
        )
        self._m_wal_errors = metrics.counter(
            "repro_wal_errors_total",
            "WAL append failures and corrupt records dropped at recovery",
        )
        # Shared with WorkerEngine (whichever constructs first registers).
        try:
            self._m_stage = metrics.get("repro_stage_seconds")
        except KeyError:
            self._m_stage = metrics.histogram(
                "repro_stage_seconds",
                "Per-request pipeline stage latency (tracing-independent)",
                labelnames=("stage",),
            )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def seq(self) -> int:
        """WAL sequence of the last committed operation."""
        return self._seq

    @property
    def degraded(self) -> bool:
        """True while ingest is refusing writes (read-only degraded mode)."""
        return self._degraded

    @property
    def degraded_reason(self) -> Optional[str]:
        """Why ingest degraded, or ``None`` while read-write."""
        return self._degraded_reason

    def start(self, initial_seq: int = 0) -> None:
        """Start the writer task; ``initial_seq`` resumes a recovered WAL."""
        self._seq = initial_seq
        self._service.advance(initial_seq)
        self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        """Drain the queue, commit what is pending, stop the writer."""
        if self._probe_task is not None:
            self._probe_task.cancel()
            try:
                await self._probe_task
            except asyncio.CancelledError:
                pass
            self._probe_task = None
        if self._task is None:
            return
        await self._queue.join()
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:
            pass
        self._task = None

    # ------------------------------------------------------------------ #
    # Producer side (HTTP handlers)
    # ------------------------------------------------------------------ #
    def submit(
        self,
        kind: str,
        updates: Sequence,
        edges: int,
        trace: Optional[TraceContext] = None,
    ) -> Optional["asyncio.Future[Dict[str, object]]"]:
        """Enqueue one write request; ``None`` means full (answer 429).

        Raises :class:`~repro.errors.DegradedError` while ingest is
        read-only degraded (the HTTP layer answers 503).
        """
        if self._degraded:
            raise DegradedError(self._degraded_reason or "WAL unwritable")
        future: "asyncio.Future[Dict[str, object]]" = (
            asyncio.get_running_loop().create_future()
        )
        submission = Submission(kind, updates, edges, future, trace)
        try:
            self._queue.put_nowait(submission)
        except asyncio.QueueFull:
            self._m_rejected.inc(max(1, edges))
            return None
        self._m_depth.set(self._queue.qsize())
        return future

    # ------------------------------------------------------------------ #
    # Writer task
    # ------------------------------------------------------------------ #
    async def _get_with_timeout(self, timeout: float) -> Optional[Submission]:
        """``queue.get`` with a timeout that can never lose a submission.

        ``asyncio.wait_for`` on Python <= 3.11 can discard the result of a
        ``get()`` that completed just as the timeout cancelled it — the
        submission would leave the queue but never join a window, hanging
        its HTTP request forever.  ``asyncio.wait`` does not cancel on
        timeout, so the getter either yields the item (even when the
        cancel below loses the race) or provably dequeued nothing.
        """
        getter = asyncio.ensure_future(self._queue.get())
        try:
            done, _pending = await asyncio.wait({getter}, timeout=timeout)
        except asyncio.CancelledError:
            getter.cancel()
            raise
        if getter in done:
            return getter.result()
        getter.cancel()
        try:
            return await getter
        except asyncio.CancelledError:
            return None

    async def _run(self) -> None:
        max_delay = self._config.max_delay_ms / 1000.0
        while True:
            first = await self._queue.get()
            window = [first]
            edges = first.edges
            # The coalescing window opens when the first submission was
            # *enqueued*, not when the writer picked it up: work that
            # queued behind the previous commit has already waited its
            # share, so a saturated pipeline commits back-to-back with
            # natural batching instead of sleeping max_delay per cycle.
            deadline = first.enqueued_at + max_delay
            # A delete/flush is an ordering barrier: it never coalesces
            # with anything behind it.
            while first.kind == "insert" and edges < self._config.max_batch:
                try:
                    nxt = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        break
                    nxt = await self._get_with_timeout(remaining)
                    if nxt is None:
                        break
                window.append(nxt)
                edges += nxt.edges
                if nxt.kind != "insert":
                    break
            self._m_depth.set(self._queue.qsize())
            try:
                await self._commit_window(window)
            finally:
                for _ in window:
                    self._queue.task_done()

    def _coalesce(
        self, window: List[Submission]
    ) -> List[Tuple[Event, List[Submission]]]:
        """Group consecutive insert submissions into InsertBatch operations."""
        ops: List[Tuple[Event, List[Submission]]] = []
        run: List[Submission] = []

        def close_run() -> None:
            if run:
                updates: List[EdgeUpdate] = []
                for submission in run:
                    updates.extend(submission.updates)
                ops.append((InsertBatch(tuple(updates)), list(run)))
                run.clear()

        for submission in window:
            if submission.kind == "insert":
                run.append(submission)
            elif submission.kind == "delete":
                close_run()
                ops.append((Delete(tuple(submission.updates)), [submission]))
            else:
                close_run()
                ops.append((Flush(), [submission]))
        close_run()
        return ops

    async def _commit_window(self, window: List[Submission]) -> None:
        if self._degraded:
            # Fail fast: submissions that raced into the queue before the
            # degradation flag flipped must not touch the failing WAL.
            error = DegradedError(self._degraded_reason or "WAL unwritable")
            for submission in window:
                if not submission.future.done():
                    submission.future.set_exception(error)
            return
        pickup = time.perf_counter()
        for submission in window:
            self._m_stage.labels(stage="queue_wait").observe(
                pickup - submission.enqueued_at
            )
            if submission.trace is not None:
                submission.trace.add_span(
                    "queue_wait",
                    submission.enqueued_at,
                    pickup,
                    window=len(window),
                )
        ops = self._coalesce(window)
        began = time.perf_counter()
        try:
            async with self._lock:
                results = await asyncio.get_running_loop().run_in_executor(
                    None, self._commit_sync, ops
                )
        except DegradedError as exc:
            # The WAL refused an append: everything committed before the
            # failure is durable and applied (publish its version); the
            # rest of the window was never acked.  Enter read-only mode
            # and start probing for the disk to come back.
            self._service.advance(self._seq)
            self._enter_degraded(exc.reason)
            for submission in window:
                if not submission.future.done():
                    submission.future.set_exception(exc)
            return
        except Exception as exc:  # engine/WAL failure: fail the waiters
            # Ops earlier in the window may have committed before the
            # failure advanced past them — publish their version so reads
            # never stamp the new state with a stale number.
            self._service.advance(self._seq)
            for submission in window:
                if not submission.future.done():
                    submission.future.set_exception(exc)
            return
        self._m_commit.observe(time.perf_counter() - began)
        self._service.advance(self._seq)
        now = time.perf_counter()
        for (op, submissions), result in zip(ops, results):
            for submission in submissions:
                self._m_latency.observe(now - submission.enqueued_at)
                if not submission.future.done():
                    submission.future.set_result(dict(result))
        self._m_accepted.inc(sum(s.edges for s in window))

    # ------------------------------------------------------------------ #
    # Degraded read-only mode
    # ------------------------------------------------------------------ #
    def _enter_degraded(self, reason: str) -> None:
        if self._degraded:
            return
        self._degraded = True
        self._degraded_reason = reason
        self._m_degraded.set(1)
        self._probe_task = asyncio.get_running_loop().create_task(self._probe_loop())

    def _exit_degraded(self) -> None:
        self._degraded = False
        self._degraded_reason = None
        self._m_degraded.set(0)
        self._probe_task = None

    async def _probe_loop(self) -> None:
        """Re-test the WAL directory until a durable write succeeds again."""
        interval = self._config.probe_interval_ms / 1000.0
        loop = asyncio.get_running_loop()
        while self._degraded:
            await asyncio.sleep(interval)
            if self._wal is None:
                break
            try:
                async with self._lock:
                    await loop.run_in_executor(None, self._wal.probe)
            except OSError:
                continue
            self._exit_degraded()
            return

    def _commit_sync(
        self, ops: List[Tuple[Event, List[Submission]]]
    ) -> List[Dict[str, object]]:
        """WAL-append + apply each operation (runs in a worker thread).

        Tracing: one submission's trace becomes the *primary* for each
        coalesced op — activated as the ambient trace for the duration
        of the op so the WAL appender and the worker scatter/gather can
        attach child spans without plumbing.  Every other sampled trace
        in the op still gets the annotations (wal seq, which trace
        carried the spans), so a coalesced-away request remains
        attributable.
        """
        results: List[Dict[str, object]] = []
        for op, submissions in ops:
            seq = self._seq + 1
            primary: Optional[TraceContext] = next(
                (
                    s.trace
                    for s in submissions
                    if s.trace is not None and s.trace.sampled
                ),
                None,
            )
            token = activate(primary) if primary is not None else None
            try:
                if self._wal is not None:
                    wal_began = time.perf_counter()
                    try:
                        seq, offset = self._wal.append_op(op)
                    except OSError as exc:
                        # Disk full / EIO: nothing durable was added (the WAL
                        # discards partial bytes), so this op and everything
                        # behind it in the window must not be applied or acked.
                        self._m_wal_errors.inc()
                        raise DegradedError(f"WAL append failed: {exc}") from exc
                    wal_elapsed = time.perf_counter() - wal_began
                    self._m_fsync.observe(wal_elapsed)
                    self._m_stage.labels(stage="wal_append").observe(wal_elapsed)
                else:
                    offset = 0
                for submission in submissions:
                    if submission.trace is not None:
                        submission.trace.annotate(
                            wal_seq=seq, coalesced=len(submissions)
                        )
                        if primary is not None and submission.trace is not primary:
                            submission.trace.annotate(spans_on=primary.trace_id)
                apply_span = (
                    primary.start_span("engine_apply", kind=op.__class__.__name__)
                    if primary is not None
                    else None
                )
                try:
                    apply_began = time.perf_counter()
                    report = self._client.apply([op])
                    apply_elapsed = time.perf_counter() - apply_began
                    self._m_apply.observe(apply_elapsed)
                    self._m_stage.labels(stage="engine_apply").observe(apply_elapsed)
                except (ReproError, TypeError, ValueError) as exc:
                    # Deterministic engine rejection (invalid weight, a label
                    # the engine cannot digest...).  The record is already
                    # durable, but replaying it fails identically, so recovery
                    # skips it and the state machines stay in lockstep; the
                    # submitters get the error, later operations in the window
                    # still commit.
                    self._seq = seq
                    results.append(
                        {"wal_seq": seq, "version": seq, "error": str(exc)}
                    )
                    continue
                finally:
                    if primary is not None:
                        primary.end_span(apply_span)
            finally:
                if token is not None:
                    deactivate(token)
            self._seq = seq
            self._m_batches.inc()
            edges = report.edges_applied
            self._m_batch_size.observe(max(1, edges))
            results.append(
                {
                    "wal_seq": seq,
                    "version": seq,
                    "edges": edges,
                    "density": report.density,
                    "community_size": len(report.vertices),
                }
            )
            if self._checkpoint is not None:
                self._edges_since_checkpoint += edges
                if self._edges_since_checkpoint >= self._config.checkpoint_interval:
                    self._checkpoint(seq, offset)
                    self._edges_since_checkpoint = 0
        return results
