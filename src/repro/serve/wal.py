"""Write-ahead log: every accepted event is durable before it is acked.

The WAL is a single append-only JSON-lines file (``wal.jsonl`` inside the
configured ``wal_dir``) built on :class:`repro.storage.jsonl.JsonlWriter`.
Each record carries a monotonically increasing sequence number and one
engine *operation* — exactly the event the ingest gateway applied, i.e.
the **coalesced** :class:`~repro.api.events.InsertBatch` rather than the
individual HTTP posts that fed it.  Logging the applied operation (not the
wire requests) is what makes recovery bit-exact: replaying the WAL drives
the engine through the identical sequence of maintenance passes.

Record shapes (one JSON object per line)::

    {"seq": 12, "kind": "batch",  "edges": [[src, dst, w], ...], "crc": N}
    {"seq": 13, "kind": "delete", "edges": [[src, dst], ...],    "crc": N}
    {"seq": 14, "kind": "flush",                                 "crc": N}

Insert edges optionally carry vertex priors as five-element rows
``[src, dst, w, src_prior, dst_prior]`` (nulls allowed).  Vertex labels
travel as JSON scalars — the serving layer's label domain is whatever
arrived over HTTP, which is JSON by construction.

Format versioning is implicit, SQLite-frame style: the current (v2)
writer stamps every record with ``"crc"`` — ``zlib.crc32`` over the
canonical serialisation of the record *without* the crc key — appended
as the final key so the bytes on disk are exactly the hashed bytes plus
``,"crc":N}``.  Records without a ``crc`` key are legacy v1 records and
decode unchecked, so logs written before the format change still
recover (pinned by a test).

Recovery scans the suffix past the latest checkpoint with
:func:`scan_ops`, which tolerates the torn final line a ``kill -9``
mid-append leaves behind (never-acked by definition) and **stops at the
first invalid record** — CRC mismatch, undecodable payload, or a
sequence regression — reporting the boundary instead of replaying past
silent corruption, exactly the SQLite WAL-frame discipline.
"""

from __future__ import annotations

import json
import time
import zlib
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.api.events import Delete, Event, Flush, Insert, InsertBatch
from repro.errors import StorageError
from repro.graph.delta import EdgeUpdate
from repro.obs.context import current_trace
from repro.storage.jsonl import JsonlWriter

__all__ = [
    "WriteAheadLog",
    "encode_op",
    "decode_record",
    "iter_ops",
    "read_ops",
    "scan_ops",
]

#: File name of the log inside ``wal_dir``.
WAL_FILENAME = "wal.jsonl"

PathLike = Union[str, Path]


def _encode_update(update: EdgeUpdate) -> List[object]:
    row: List[object] = [update.src, update.dst, update.weight]
    if update.src_weight is not None or update.dst_weight is not None:
        row.extend([update.src_weight, update.dst_weight])
    return row


def encode_op(op: Event) -> Dict[str, object]:
    """Encode an engine operation as a WAL record payload (no seq)."""
    if isinstance(op, InsertBatch):
        return {"kind": "batch", "edges": [_encode_update(u) for u in op.updates]}
    if isinstance(op, Insert):
        return {"kind": "batch", "edges": [_encode_update(op.as_update())]}
    if isinstance(op, Delete):
        return {"kind": "delete", "edges": [[src, dst] for src, dst in op.edges]}
    if isinstance(op, Flush):
        return {"kind": "flush"}
    raise StorageError(f"cannot encode WAL operation {op!r}")


def decode_record(record: Dict[str, object]) -> Event:
    """Decode one WAL record back into the engine operation it logged."""
    kind = record.get("kind")
    if kind == "batch":
        updates = []
        for row in record["edges"]:  # type: ignore[index]
            if len(row) == 5:
                src, dst, weight, sp, dp = row
                updates.append(
                    EdgeUpdate(src, dst, float(weight), src_weight=sp, dst_weight=dp)
                )
            else:
                src, dst, weight = row
                updates.append(EdgeUpdate(src, dst, float(weight)))
        return InsertBatch(tuple(updates))
    if kind == "delete":
        return Delete(tuple((src, dst) for src, dst in record["edges"]))  # type: ignore[misc]
    if kind == "flush":
        return Flush()
    raise StorageError(f"unknown WAL record kind {kind!r}")


def _canonical(record: Dict[str, object]) -> bytes:
    """The byte string a record's CRC is computed over (no ``crc`` key)."""
    return json.dumps(record, separators=(",", ":"), default=str).encode("utf-8")


class WalScan:
    """Streaming iterator over ``(seq, op)`` pairs of one WAL file.

    Reads the log one line at a time (never materializing it), yielding
    each valid record as it is decoded.  :attr:`next_offset` always holds
    the byte offset just past the last *valid* record consumed so far —
    the durable boundary a resuming reader (the asof replay, the history
    indexer's tail loop) continues from — and :attr:`corruption` is
    populated the moment the scan stops on an invalid record.  The file
    handle is closed as soon as the scan ends (exhaustion, corruption, or
    an explicit :meth:`close`).

    The stop rules are exactly :func:`scan_ops`'s — this class *is* the
    scan; ``scan_ops`` just drains it into a list.
    """

    def __init__(self, path: PathLike, offset: int = 0) -> None:
        self.path = Path(path)
        self.next_offset = offset
        self.corruption: Optional[str] = None
        self._last_seq = -1
        self._handle = None
        if not self.path.exists():
            if offset:
                raise StorageError(f"records file not found: {self.path}")
            return
        self._handle = self.path.open("rb")
        self._handle.seek(offset)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "WalScan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __iter__(self) -> "WalScan":
        return self

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        self.close()

    def _stop(self, reason: Optional[str]) -> None:
        if reason is not None:
            self.corruption = reason
        self.close()

    def __next__(self) -> Tuple[int, Event]:
        while True:
            if self._handle is None:
                raise StopIteration
            raw = self._handle.readline()
            if not raw or not raw.endswith(b"\n"):
                # EOF, or an unterminated fragment (a crash — or a live
                # writer — mid-append): never part of the durable prefix.
                self._stop(None)
                raise StopIteration
            stripped = raw.strip()
            if not stripped:
                # Blank (but terminated) filler line: consumed, no record.
                self.next_offset += len(raw)
                continue
            position = self.next_offset
            try:
                record = json.loads(stripped)
            except (json.JSONDecodeError, UnicodeDecodeError):
                # UnicodeDecodeError: a flipped bit can break UTF-8 before
                # the payload even parses as JSON — same corruption,
                # earlier layer.  A terminated-but-invalid *final* line is
                # ordinary kill -9 residue (the payload write and a later
                # append's newline can interleave), so peek: at EOF the
                # scan is clean, mid-file it is corruption.
                if self._handle.read(1) == b"":
                    self._stop(None)
                else:
                    self._stop(f"invalid JSON record at byte {position}")
                raise StopIteration
            if not isinstance(record, dict):
                self._stop(f"non-object record at byte {position}")
                raise StopIteration
            crc = record.pop("crc", None)
            if crc is not None and zlib.crc32(_canonical(record)) != crc:
                self._stop(
                    f"CRC mismatch at byte {position} (seq {record.get('seq')})"
                )
                raise StopIteration
            try:
                seq = int(record["seq"])
            except (KeyError, TypeError, ValueError):
                self._stop(f"record without sequence number at byte {position}")
                raise StopIteration
            if seq <= self._last_seq:
                self._stop(
                    f"WAL sequence regressed ({seq} after {self._last_seq}) "
                    f"at byte {position}"
                )
                raise StopIteration
            try:
                op = decode_record(record)
            except (StorageError, KeyError, TypeError, ValueError) as exc:
                self._stop(
                    f"undecodable record at byte {position} (seq {seq}): {exc}"
                )
                raise StopIteration
            self._last_seq = seq
            self.next_offset = position + len(raw)
            return seq, op


def iter_ops(path: PathLike, offset: int = 0) -> WalScan:
    """Stream ``(seq, op)`` pairs from byte ``offset`` without materializing.

    Returns a :class:`WalScan` — iterate it like any generator; its
    ``next_offset`` / ``corruption`` attributes carry the scan state the
    tuple-returning :func:`scan_ops` reports.  This is the memory-bounded
    path the history indexer and the as-of replay use to walk week-long
    logs record by record.
    """
    return WalScan(path, offset)


def scan_ops(
    path: PathLike, offset: int = 0
) -> Tuple[List[Tuple[int, Event]], int, Optional[str]]:
    """Scan ``(seq, op)`` pairs from byte ``offset``, stopping at corruption.

    Returns ``(ops, next_offset, corruption)``.  ``next_offset`` is the
    byte offset just past the last *valid* record — the durable boundary
    recovery resumes (and truncates) at.  ``corruption`` is ``None`` for
    a clean log; a torn **final** line (unterminated, or terminated but
    JSON-invalid — normal ``kill -9`` residue, never acknowledged) also
    scans clean.  Anything else that stops the scan — a CRC mismatch, a
    mid-file JSON error, an undecodable record, a sequence regression —
    is corruption: the scan stops *before* the bad record and reports
    why, and every record past the boundary is deliberately dropped
    (SQLite's first-invalid-frame rule).

    Records carrying ``"crc"`` (format v2) are verified byte-exactly
    against their canonical serialisation; records without it are legacy
    v1 and decode unchecked.

    This materializes the whole suffix as a list; callers that should
    stay memory-bounded (tailing a long log) use :func:`iter_ops`.
    """
    scan = iter_ops(path, offset)
    ops = list(scan)
    return ops, scan.next_offset, scan.corruption


def read_ops(path: PathLike, offset: int = 0) -> Tuple[List[Tuple[int, Event]], int]:
    """Strict :func:`scan_ops`: corruption raises instead of truncating.

    The offline-replay and test callers want loud failure on a damaged
    log; the serving recovery path uses :func:`scan_ops` directly so it
    can recover to the boundary and *report* the truncation.
    """
    ops, next_offset, corruption = scan_ops(path, offset)
    if corruption is not None:
        raise StorageError(f"{path}: {corruption}")
    return ops, next_offset


class WriteAheadLog:
    """Appender for the serving layer's durability log.

    ``next_seq`` starts where the on-disk log ends (recovery hands the
    last replayed sequence in), so sequence numbers stay unique across
    restarts.  ``truncate_at`` is recovery's resume offset: any torn
    bytes past it (a ``kill -9`` mid-append) are discarded before the
    first new record, so appends never fuse with a crash fragment.
    """

    def __init__(
        self,
        wal_dir: PathLike,
        fsync: bool = True,
        next_seq: int = 1,
        truncate_at: Optional[int] = None,
        injector: Optional[object] = None,
    ) -> None:
        self._dir = Path(wal_dir)
        self._writer = JsonlWriter(
            self._dir / WAL_FILENAME,
            fsync=fsync,
            truncate_at=truncate_at,
            injector=injector,
        )
        self._next_seq = int(next_seq)
        self._fsync = bool(fsync)

    @classmethod
    def path_in(cls, wal_dir: PathLike) -> Path:
        """The log path a given ``wal_dir`` implies."""
        return Path(wal_dir) / WAL_FILENAME

    @property
    def path(self) -> Path:
        return self._writer.path

    @property
    def offset(self) -> int:
        """Byte offset just past the last appended record."""
        return self._writer.offset

    @property
    def next_seq(self) -> int:
        """Sequence number the next append will use."""
        return self._next_seq

    def append_op(self, op: Event) -> Tuple[int, int]:
        """Durably append one operation; return ``(seq, offset_after)``.

        Records are stamped with a trailing CRC32 over their canonical
        serialisation (format v2).  A failed append (``OSError``, e.g.
        disk full) consumes **no** sequence number and leaves
        :attr:`offset` unchanged — the op was never durable, so the
        caller must not ack it; the next successful append reuses the
        sequence on the last durable boundary.
        """
        record = encode_op(op)
        seq = self._next_seq
        record_with_seq: Dict[str, object] = {"seq": seq}
        record_with_seq.update(record)
        record_with_seq["crc"] = zlib.crc32(_canonical(record_with_seq))
        before = self._writer.offset
        began = time.perf_counter()
        offset = self._writer.append(record_with_seq)
        trace = current_trace()
        if trace is not None:
            trace.add_span(
                "wal_append",
                began,
                time.perf_counter(),
                seq=seq,
                bytes=offset - before,
                fsync=self._fsync,
            )
        self._next_seq = seq + 1
        return seq, offset

    def probe(self) -> None:
        """Raise ``OSError`` while the WAL directory is still unwritable.

        Used by the ingest gateway's degraded-mode probe loop; routed
        through the same fault injector as :meth:`append_op`.
        """
        self._writer.probe()

    def sync(self) -> None:
        """Force the log to stable storage (used at graceful shutdown)."""
        self._writer.sync()

    def close(self) -> None:
        self._writer.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
