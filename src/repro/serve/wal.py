"""Write-ahead log: every accepted event is durable before it is acked.

The WAL is a single append-only JSON-lines file (``wal.jsonl`` inside the
configured ``wal_dir``) built on :class:`repro.storage.jsonl.JsonlWriter`.
Each record carries a monotonically increasing sequence number and one
engine *operation* — exactly the event the ingest gateway applied, i.e.
the **coalesced** :class:`~repro.api.events.InsertBatch` rather than the
individual HTTP posts that fed it.  Logging the applied operation (not the
wire requests) is what makes recovery bit-exact: replaying the WAL drives
the engine through the identical sequence of maintenance passes.

Record shapes (one JSON object per line)::

    {"seq": 12, "kind": "batch",  "edges": [[src, dst, w], ...]}
    {"seq": 13, "kind": "delete", "edges": [[src, dst], ...]}
    {"seq": 14, "kind": "flush"}

Insert edges optionally carry vertex priors as five-element rows
``[src, dst, w, src_prior, dst_prior]`` (nulls allowed).  Vertex labels
travel as JSON scalars — the serving layer's label domain is whatever
arrived over HTTP, which is JSON by construction.

Recovery reads the suffix past the latest checkpoint with
:func:`repro.storage.jsonl.tail`, which tolerates the torn final line a
``kill -9`` mid-append leaves behind; a torn record was by definition
never acknowledged, so dropping it cannot lose an acked event.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.api.events import Delete, Event, Flush, Insert, InsertBatch
from repro.errors import StorageError
from repro.graph.delta import EdgeUpdate
from repro.storage.jsonl import JsonlWriter, tail

__all__ = ["WriteAheadLog", "encode_op", "decode_record", "read_ops"]

#: File name of the log inside ``wal_dir``.
WAL_FILENAME = "wal.jsonl"

PathLike = Union[str, Path]


def _encode_update(update: EdgeUpdate) -> List[object]:
    row: List[object] = [update.src, update.dst, update.weight]
    if update.src_weight is not None or update.dst_weight is not None:
        row.extend([update.src_weight, update.dst_weight])
    return row


def encode_op(op: Event) -> Dict[str, object]:
    """Encode an engine operation as a WAL record payload (no seq)."""
    if isinstance(op, InsertBatch):
        return {"kind": "batch", "edges": [_encode_update(u) for u in op.updates]}
    if isinstance(op, Insert):
        return {"kind": "batch", "edges": [_encode_update(op.as_update())]}
    if isinstance(op, Delete):
        return {"kind": "delete", "edges": [[src, dst] for src, dst in op.edges]}
    if isinstance(op, Flush):
        return {"kind": "flush"}
    raise StorageError(f"cannot encode WAL operation {op!r}")


def decode_record(record: Dict[str, object]) -> Event:
    """Decode one WAL record back into the engine operation it logged."""
    kind = record.get("kind")
    if kind == "batch":
        updates = []
        for row in record["edges"]:  # type: ignore[index]
            if len(row) == 5:
                src, dst, weight, sp, dp = row
                updates.append(
                    EdgeUpdate(src, dst, float(weight), src_weight=sp, dst_weight=dp)
                )
            else:
                src, dst, weight = row
                updates.append(EdgeUpdate(src, dst, float(weight)))
        return InsertBatch(tuple(updates))
    if kind == "delete":
        return Delete(tuple((src, dst) for src, dst in record["edges"]))  # type: ignore[misc]
    if kind == "flush":
        return Flush()
    raise StorageError(f"unknown WAL record kind {kind!r}")


def read_ops(path: PathLike, offset: int = 0) -> Tuple[List[Tuple[int, Event]], int]:
    """Read ``(seq, op)`` pairs from byte ``offset``; return the resume offset.

    Sequence numbers must be strictly increasing across the read records —
    anything else means the log was tampered with or mis-assembled, and is
    reported as :class:`~repro.errors.StorageError` rather than replayed.
    """
    records, next_offset = tail(path, offset)
    ops: List[Tuple[int, Event]] = []
    last_seq = -1
    for record in records:
        seq = int(record["seq"])  # type: ignore[index]
        if seq <= last_seq:
            raise StorageError(
                f"{path}: WAL sequence regressed ({seq} after {last_seq})"
            )
        last_seq = seq
        ops.append((seq, decode_record(record)))
    return ops, next_offset


class WriteAheadLog:
    """Appender for the serving layer's durability log.

    ``next_seq`` starts where the on-disk log ends (recovery hands the
    last replayed sequence in), so sequence numbers stay unique across
    restarts.  ``truncate_at`` is recovery's resume offset: any torn
    bytes past it (a ``kill -9`` mid-append) are discarded before the
    first new record, so appends never fuse with a crash fragment.
    """

    def __init__(
        self,
        wal_dir: PathLike,
        fsync: bool = True,
        next_seq: int = 1,
        truncate_at: Optional[int] = None,
    ) -> None:
        self._dir = Path(wal_dir)
        self._writer = JsonlWriter(
            self._dir / WAL_FILENAME, fsync=fsync, truncate_at=truncate_at
        )
        self._next_seq = int(next_seq)

    @classmethod
    def path_in(cls, wal_dir: PathLike) -> Path:
        """The log path a given ``wal_dir`` implies."""
        return Path(wal_dir) / WAL_FILENAME

    @property
    def path(self) -> Path:
        return self._writer.path

    @property
    def offset(self) -> int:
        """Byte offset just past the last appended record."""
        return self._writer.offset

    @property
    def next_seq(self) -> int:
        """Sequence number the next append will use."""
        return self._next_seq

    def append_op(self, op: Event) -> Tuple[int, int]:
        """Durably append one operation; return ``(seq, offset_after)``."""
        record = encode_op(op)
        seq = self._next_seq
        record_with_seq: Dict[str, object] = {"seq": seq}
        record_with_seq.update(record)
        offset = self._writer.append(record_with_seq)
        self._next_seq = seq + 1
        return seq, offset

    def sync(self) -> None:
        """Force the log to stable storage (used at graceful shutdown)."""
        self._writer.sync()

    def close(self) -> None:
        self._writer.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
