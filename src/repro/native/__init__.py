"""``repro.native``: compiled C kernels for the peel and reorder hot loops.

The two loops every profile since PR 2 blames — the lazy-deletion greedy
loop of :func:`repro.peeling.static.peel_csr` and the reorder inner loop
of :mod:`repro.core.reorder` — have hand-written C twins in
``_kernels.c``, compiled on demand with the system ``cc`` into a cached
shared object and called over ctypes.  They are *bit-identical* to the
python/numpy paths (same IEEE-754 association order, same heap pop order,
numpy's exact pairwise summation), which the load-time self-check and the
differential test-suite both enforce.

Selection is explicit via the ``kernel`` knob on
:class:`repro.api.EngineConfig` (and every layer below it):

``"python"``
    Always the interpreted paths.
``"native"``
    Fail loud: :class:`repro.errors.KernelUnavailableError` when no
    compiler / failed build / failed self-check.
``"auto"`` (default)
    Use native when available, otherwise fall back to python with a
    single :class:`RuntimeWarning` per process.

The process default (used when a call site is not threaded through a
config, e.g. bare ``peel_csr`` calls) is ``auto``, overridable with the
``REPRO_KERNEL`` environment variable.
"""

from __future__ import annotations

import os
import warnings
from typing import Dict, Optional, Tuple

from repro.errors import ConfigError, KernelUnavailableError

__all__ = [
    "VALID_KERNELS",
    "available",
    "default_kernel",
    "resolve_kernel",
    "status",
]

#: Valid values of the ``kernel`` knob.
VALID_KERNELS: Tuple[str, ...] = ("python", "native", "auto")

_warned_fallback = False


def default_kernel() -> str:
    """The process-default kernel choice (``REPRO_KERNEL`` or ``auto``)."""
    value = os.environ.get("REPRO_KERNEL", "auto")
    if value not in VALID_KERNELS:
        raise ConfigError(
            f"unknown kernel {value!r} in REPRO_KERNEL; "
            f"valid choices: {', '.join(VALID_KERNELS)}"
        )
    return value


def get_kernels():
    """The loaded :class:`~repro.native.kernels.NativeKernels`, or ``None``.

    Indirection point (module attribute) so tests can monkeypatch
    unavailability without touching the filesystem or PATH.
    """
    from repro.native import kernels

    return kernels.get_kernels()


def available() -> bool:
    """Whether the native peel kernel is usable in this process."""
    loaded = get_kernels()
    return loaded is not None and loaded.peel_ok


def resolve_kernel(requested: Optional[str] = None) -> str:
    """Resolve a requested kernel to the concrete one to run.

    ``None`` means the process default.  ``"native"`` raises
    :class:`~repro.errors.KernelUnavailableError` when the kernels cannot
    be used; ``"auto"`` falls back to ``"python"`` with one
    ``RuntimeWarning`` per process.
    """
    global _warned_fallback
    if requested is None:
        requested = default_kernel()
    if requested not in VALID_KERNELS:
        raise ConfigError(
            f"unknown kernel {requested!r}; valid choices: {', '.join(VALID_KERNELS)}"
        )
    if requested == "python":
        return "python"
    loaded = get_kernels()
    usable = loaded is not None and loaded.peel_ok
    if usable:
        return "native"
    reason = _unavailable_reason(loaded)
    if requested == "native":
        raise KernelUnavailableError(reason)
    if not _warned_fallback:
        _warned_fallback = True
        warnings.warn(
            f"native kernels unavailable ({reason}); falling back to the "
            "python hot paths (kernel='auto')",
            RuntimeWarning,
            stacklevel=2,
        )
    return "python"


def _unavailable_reason(loaded) -> str:
    if loaded is not None:
        return loaded.check_error or "peel kernel failed its self-check"
    from repro.native import kernels

    return kernels.load_failure() or "unknown load failure"


def status() -> Dict[str, object]:
    """Operational report on the native kernels (for /healthz, benches, tests)."""
    from repro.native import build, kernels

    loaded = get_kernels()
    report: Dict[str, object] = {
        "default_kernel": default_kernel(),
        "available": loaded is not None and loaded.peel_ok,
        "cc": build.find_compiler(),
        "cache_dir": str(build.cache_dir()),
    }
    if loaded is None:
        report.update(
            {
                "peel": False,
                "reorder": False,
                "reason": kernels.load_failure(),
                "so_path": None,
            }
        )
    else:
        report.update(
            {
                "peel": loaded.peel_ok,
                "reorder": loaded.reorder_ok,
                "reason": loaded.check_error,
                "so_path": loaded.so_path,
                "cc": loaded.cc,
                "build_cached": loaded.cached,
                "build_ms": round(loaded.build_ms, 1),
            }
        )
    return report


def _reset_for_tests() -> None:
    """Forget cached load state + the one-shot fallback warning."""
    global _warned_fallback
    from repro.native import kernels

    _warned_fallback = False
    kernels._reset_for_tests()
