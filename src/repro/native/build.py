"""On-demand compilation of the native kernels into a cached ``.so``.

No packaging changes, no ``Python.h``: ``_kernels.c`` is plain C operating
on raw pointers, compiled with whatever system C compiler is on ``PATH``
(``cc`` / ``gcc`` / ``clang``) into a shared object keyed by the source
hash, so the compiler runs at most once per source revision per machine.

Environment knobs
-----------------
``REPRO_NATIVE_CC``
    Explicit compiler path.  Overrides ``PATH`` discovery; pointing it at
    a non-existent file disables the native kernels (used by the
    no-compiler CI leg and the fallback tests).
``REPRO_NATIVE_CACHE``
    Cache directory for compiled objects (default
    ``~/.cache/repro-native``).  Tests point this at temp dirs to exercise
    cold builds and cache reuse hermetically.

Flags deliberately exclude every form of ``-ffast-math``: the kernels'
contract is bit-identical IEEE-754 float64 arithmetic, and fast-math
licenses the reassociation that would break it.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import tempfile
import time
from pathlib import Path
from typing import Dict, Optional

__all__ = ["BuildResult", "cache_dir", "find_compiler", "ensure_built", "SOURCE_PATH"]

SOURCE_PATH = Path(__file__).with_name("_kernels.c")

#: Compilers probed on PATH, in order, when REPRO_NATIVE_CC is unset.
_COMPILERS = ("cc", "gcc", "clang")

_CFLAGS = ["-O2", "-fPIC", "-shared", "-fvisibility=hidden"]


class BuildResult:
    """Outcome of :func:`ensure_built` — success or a diagnosable failure."""

    __slots__ = ("so_path", "cc", "cached", "error", "build_ms")

    def __init__(
        self,
        so_path: Optional[Path] = None,
        cc: Optional[str] = None,
        cached: bool = False,
        error: Optional[str] = None,
        build_ms: float = 0.0,
    ) -> None:
        self.so_path = so_path
        self.cc = cc
        self.cached = cached
        self.error = error
        self.build_ms = build_ms

    @property
    def ok(self) -> bool:
        return self.so_path is not None

    def to_dict(self) -> Dict[str, object]:
        return {
            "so_path": str(self.so_path) if self.so_path else None,
            "cc": self.cc,
            "cached": self.cached,
            "error": self.error,
            "build_ms": round(self.build_ms, 1),
        }


def cache_dir() -> Path:
    """The directory compiled kernels are cached in (env-overridable)."""
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-native"


def find_compiler() -> Optional[str]:
    """Locate a C compiler: ``REPRO_NATIVE_CC`` first, then PATH probing."""
    override = os.environ.get("REPRO_NATIVE_CC")
    if override is not None:
        path = shutil.which(override) or (override if os.access(override, os.X_OK) else None)
        return path
    for name in _COMPILERS:
        path = shutil.which(name)
        if path:
            return path
    return None


def _source_key(cc: str) -> str:
    digest = hashlib.sha256()
    digest.update(SOURCE_PATH.read_bytes())
    digest.update(("\0" + cc + "\0" + " ".join(_CFLAGS)).encode())
    return digest.hexdigest()[:16]


def ensure_built() -> BuildResult:
    """Compile (or reuse) the kernel ``.so``; never raises, reports errors.

    The object name embeds a hash of the C source + compiler + flags, so a
    source change compiles into a fresh object while older processes keep
    their loaded one, and a second process (or a second call) finds the
    object already built — the compile-cache reuse the tests pin.
    """
    if not SOURCE_PATH.exists():  # pragma: no cover - packaging error
        return BuildResult(error=f"kernel source missing: {SOURCE_PATH}")
    cc = find_compiler()
    if cc is None:
        return BuildResult(
            error="no C compiler found (searched REPRO_NATIVE_CC, then "
            + "/".join(_COMPILERS)
            + " on PATH)"
        )
    directory = cache_dir()
    so_path = directory / f"repro_kernels_{_source_key(cc)}.so"
    if so_path.exists():
        return BuildResult(so_path=so_path, cc=cc, cached=True)
    try:
        directory.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        return BuildResult(error=f"cannot create cache dir {directory}: {exc}", cc=cc)

    began = time.perf_counter()
    # Compile into a private temp name and rename into place, so a crashed
    # or concurrent build can never publish a torn .so.
    fd, tmp_name = tempfile.mkstemp(suffix=".so", dir=str(directory))
    os.close(fd)
    command = [cc, *_CFLAGS, "-o", tmp_name, str(SOURCE_PATH), "-lm"]
    try:
        proc = subprocess.run(
            command, capture_output=True, text=True, timeout=120, check=False
        )
    except (OSError, subprocess.TimeoutExpired) as exc:
        os.unlink(tmp_name)
        return BuildResult(error=f"compiler failed to run: {exc}", cc=cc)
    if proc.returncode != 0:
        os.unlink(tmp_name)
        detail = (proc.stderr or proc.stdout or "").strip()[:2000]
        return BuildResult(error=f"compile failed (rc={proc.returncode}): {detail}", cc=cc)
    os.replace(tmp_name, so_path)
    return BuildResult(
        so_path=so_path,
        cc=cc,
        cached=False,
        build_ms=(time.perf_counter() - began) * 1e3,
    )
