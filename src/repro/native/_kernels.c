/* Native kernels for the two hottest loops of the repro engine.
 *
 * Compiled on demand by repro/native/build.py with the system C compiler
 * into a plain shared object loaded over ctypes — no Python.h, no
 * packaging changes.  Everything here operates on raw pointers into numpy
 * arrays owned by the Python side; nothing is allocated across calls.
 *
 * Bit-identity contract
 * ---------------------
 * Both kernels must produce *bit-identical* IEEE-754 float64 results to
 * the pure-python/numpy reference paths, because peeling tie-breaks
 * compare floats for exact equality and the differential test-suite pins
 * byte-for-byte equal peel sequences across engines:
 *
 * - every scalar accumulation follows the same left-to-right association
 *   order as the python loops;
 * - `pw_sum` reproduces numpy's pairwise summation exactly (the scalar
 *   8-accumulator algorithm from numpy's umath loops, which np.sum uses
 *   for float64 reductions) — verified at load time against np.sum by the
 *   self-check in repro/native/kernels.py;
 * - the heaps pop in exactly the order python's heapq pops: all live
 *   (weight, id) keys in a peel heap are distinct (a vertex's value
 *   strictly decreases with every push, ids break weight ties), so any
 *   correct binary min-heap pops the identical sequence.
 *
 * Build: cc -O2 -fPIC -shared  (never -ffast-math: it would reassociate).
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#define EXPORT __attribute__((visibility("default")))

/* ------------------------------------------------------------------ */
/* Pairwise summation: exact replica of numpy's float64 pairwise_sum.  */
/* ------------------------------------------------------------------ */

static double pw_sum(const double *a, int64_t n)
{
    if (n < 8) {
        double s = 0.0;
        for (int64_t i = 0; i < n; i++)
            s += a[i];
        return s;
    }
    if (n <= 128) {
        double r0 = a[0], r1 = a[1], r2 = a[2], r3 = a[3];
        double r4 = a[4], r5 = a[5], r6 = a[6], r7 = a[7];
        int64_t i;
        for (i = 8; i + 8 <= n; i += 8) {
            r0 += a[i + 0];
            r1 += a[i + 1];
            r2 += a[i + 2];
            r3 += a[i + 3];
            r4 += a[i + 4];
            r5 += a[i + 5];
            r6 += a[i + 6];
            r7 += a[i + 7];
        }
        double res = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7));
        for (; i < n; i++)
            res += a[i];
        return res;
    }
    int64_t n2 = n / 2;
    n2 -= n2 % 8;
    return pw_sum(a, n2) + pw_sum(a + n2, n - n2);
}

EXPORT double repro_pw_sum(const double *a, int64_t n)
{
    return pw_sum(a, n);
}

/* ------------------------------------------------------------------ */
/* (weight, id) binary min-heap with lexicographic order — the exact    */
/* comparison heapq performs on (float, int) tuples.                    */
/* ------------------------------------------------------------------ */

typedef struct {
    double w;
    int32_t v;
} HeapEntry;

typedef struct {
    HeapEntry *data;
    int64_t len;
    int64_t cap;
} Heap;

static inline int entry_lt(HeapEntry a, HeapEntry b)
{
    return a.w < b.w || (a.w == b.w && a.v < b.v);
}

static inline void sift_down(HeapEntry *h, int64_t start, int64_t pos)
{
    /* heapq._siftdown: move h[pos] toward the root while smaller. */
    HeapEntry item = h[pos];
    while (pos > start) {
        int64_t parent = (pos - 1) >> 1;
        if (entry_lt(item, h[parent])) {
            h[pos] = h[parent];
            pos = parent;
        } else {
            break;
        }
    }
    h[pos] = item;
}

static inline void sift_up(HeapEntry *h, int64_t n, int64_t pos)
{
    /* heapq._siftup: bubble the hole down to a leaf, then sift back. */
    int64_t start = pos;
    HeapEntry item = h[pos];
    int64_t child = 2 * pos + 1;
    while (child < n) {
        if (child + 1 < n && !entry_lt(h[child], h[child + 1]))
            child += 1;
        h[pos] = h[child];
        pos = child;
        child = 2 * pos + 1;
    }
    h[pos] = item;
    sift_down(h, start, pos);
}

static int heap_reserve(Heap *h, int64_t need)
{
    if (need <= h->cap)
        return 0;
    int64_t cap = h->cap ? h->cap : 64;
    while (cap < need)
        cap *= 2;
    HeapEntry *grown = (HeapEntry *)realloc(h->data, (size_t)cap * sizeof(HeapEntry));
    if (!grown)
        return -1;
    h->data = grown;
    h->cap = cap;
    return 0;
}

static inline int heap_push(Heap *h, double w, int32_t v)
{
    if (h->len == h->cap && heap_reserve(h, h->len + 1))
        return -1;
    h->data[h->len].w = w;
    h->data[h->len].v = v;
    h->len++;
    sift_down(h->data, 0, h->len - 1);
    return 0;
}

static inline HeapEntry heap_pop(Heap *h)
{
    HeapEntry last = h->data[--h->len];
    if (h->len) {
        HeapEntry top = h->data[0];
        h->data[0] = last;
        sift_up(h->data, h->len, 0);
        return top;
    }
    return last;
}

static void heapify(Heap *h)
{
    for (int64_t i = h->len / 2 - 1; i >= 0; i--)
        sift_up(h->data, h->len, i);
}

/* ------------------------------------------------------------------ */
/* Kernel (a): the flat greedy peel loop of _peel_csr_ids.             */
/* ------------------------------------------------------------------ */

/* The vectorised phase-1 initialisation (member-restricted incident
 * weights, total) stays in numpy on the Python side; this kernel is the
 * phase-2 greedy loop: lazy-deletion min-heap over the combined-incidence
 * CSR.  `init_cur[i]` is the initial peeling weight of `member_ids[i]`.
 * Writes the peel order / weights into `order_out` / `weights_out`
 * (length k each) and returns the number peeled (== k), or -1 on
 * allocation failure.
 *
 * The python loop periodically compacts its heap; compaction is
 * output-invariant (stale entries never produce output), so this kernel
 * skips it and instead sizes the heap once: total pushes are bounded by
 * k + total incidence entries (each directed incidence slot is walked at
 * most once, when its owning vertex is peeled).
 */
EXPORT int64_t repro_peel(
    const int64_t *inc_off,
    const int32_t *inc_nbr,
    const double *inc_w,
    int64_t num_ids,
    const int32_t *member_ids,
    const double *init_cur,
    int64_t k,
    int32_t *order_out,
    double *weights_out)
{
    if (k <= 0)
        return 0;
    double *cur = (double *)malloc((size_t)num_ids * sizeof(double));
    uint8_t *alive = (uint8_t *)calloc((size_t)num_ids, 1);
    Heap heap = {0, 0, 0};
    int64_t produced = -1;
    if (!cur || !alive)
        goto done;
    if (heap_reserve(&heap, k + inc_off[num_ids] + 1))
        goto done;

    for (int64_t i = 0; i < k; i++) {
        int32_t vid = member_ids[i];
        cur[vid] = init_cur[i];
        alive[vid] = 1;
        heap.data[i].w = init_cur[i];
        heap.data[i].v = vid;
    }
    heap.len = k;
    heapify(&heap);

    int64_t n_out = 0;
    while (heap.len) {
        HeapEntry top = heap_pop(&heap);
        int32_t vid = top.v;
        if (!alive[vid] || cur[vid] != top.w)
            continue; /* stale lazy-deletion entry */
        alive[vid] = 0;
        order_out[n_out] = vid;
        weights_out[n_out] = top.w;
        n_out++;
        int64_t end = inc_off[vid + 1];
        for (int64_t j = inc_off[vid]; j < end; j++) {
            int32_t nbr = inc_nbr[j];
            if (alive[nbr]) {
                double value = cur[nbr] - inc_w[j];
                cur[nbr] = value;
                /* capacity was reserved up front; push cannot fail */
                heap.data[heap.len].w = value;
                heap.data[heap.len].v = nbr;
                heap.len++;
                sift_down(heap.data, 0, heap.len - 1);
            }
        }
    }
    produced = n_out;

done:
    free(cur);
    free(alive);
    free(heap.data);
    return produced;
}

/* ------------------------------------------------------------------ */
/* Kernel (b): the reorder inner loop of reorder_after_insertions.     */
/* ------------------------------------------------------------------ */

/* Growable int32 / (int32, double) logs used by the reorder kernel. */
typedef struct {
    int32_t *ids;
    double *ws;
    int64_t len;
    int64_t cap;
} IslandBuf;

static int island_reserve(IslandBuf *b, int64_t need)
{
    if (need <= b->cap)
        return 0;
    int64_t cap = b->cap ? b->cap : 64;
    while (cap < need)
        cap *= 2;
    int32_t *ids = (int32_t *)realloc(b->ids, (size_t)cap * sizeof(int32_t));
    if (!ids)
        return -1;
    b->ids = ids;
    double *ws = (double *)realloc(b->ws, (size_t)cap * sizeof(double));
    if (!ws)
        return -1;
    b->ws = ws;
    b->cap = cap;
    return 0;
}

typedef struct {
    /* adjacency pointer tables (ArrayGraph edge pools), indexed by vid */
    const int32_t *const *out_nbr;
    const double *const *out_w;
    const int64_t *out_len;
    const int32_t *const *in_nbr;
    const double *const *in_w;
    const int64_t *in_len;
    int64_t pooled;
    const double *vw;       /* vertex priors */
    /* sequence state */
    int32_t *order_buf;
    double *weights_buf;
    int64_t head;
    int64_t n;
    int64_t *pos_buf;
    uint8_t *touched;
    uint8_t *in_queue_mask;
    double *inq_val;        /* queue priority per vid, valid iff mask set */
    int64_t small_degree;
    /* scratch */
    Heap heap;
    int64_t queue_count;    /* live queue entries (the dict size) */
    IslandBuf island;
    int32_t *queued_log;
    int64_t queued_len;
    int64_t queued_cap;
    double *wscratch;       /* degree-sized pw_sum scratch */
    int64_t wscratch_cap;
    /* stats */
    int64_t queued_vertices;
    int64_t moved_vertices;
    int64_t scanned_positions;
    int64_t edge_traversals;
    int64_t islands;
    /* loop coordinates */
    int64_t island_start;
} Reorder;

static inline int64_t degree_of(const Reorder *r, int32_t vid)
{
    if (vid >= r->pooled)
        return 0;
    return r->out_len[vid] + r->in_len[vid];
}

static int queued_log_push(Reorder *r, int32_t vid)
{
    if (r->queued_len == r->queued_cap) {
        int64_t cap = r->queued_cap ? r->queued_cap * 2 : 64;
        int32_t *grown = (int32_t *)realloc(r->queued_log, (size_t)cap * sizeof(int32_t));
        if (!grown)
            return -1;
        r->queued_log = grown;
        r->queued_cap = cap;
    }
    r->queued_log[r->queued_len++] = vid;
    return 0;
}

static int wscratch_reserve(Reorder *r, int64_t need)
{
    if (need <= r->wscratch_cap)
        return 0;
    int64_t cap = r->wscratch_cap ? r->wscratch_cap : 64;
    while (cap < need)
        cap *= 2;
    double *grown = (double *)realloc(r->wscratch, (size_t)cap * sizeof(double));
    if (!grown)
        return -1;
    r->wscratch = grown;
    r->wscratch_cap = cap;
    return 0;
}

/* Recompute the true peeling weight of `vid` w.r.t. the remaining set,
 * graying its neighbourhood — the exact float association order of the
 * python recover_weight: scalar left-to-right for degree <= SMALL_DEGREE,
 * numpy pairwise over the (out ++ in) concatenated weights otherwise. */
static int recover_weight(Reorder *r, int32_t vid, double *out)
{
    double total = r->vw[vid];
    int64_t n_out = vid < r->pooled ? r->out_len[vid] : 0;
    int64_t n_in = vid < r->pooled ? r->in_len[vid] : 0;
    int64_t degree = n_out + n_in;
    if (degree) {
        int64_t threshold = r->head + r->island_start;
        const int32_t *onbr = r->out_nbr[vid];
        const double *ow = r->out_w[vid];
        const int32_t *inbr = r->in_nbr[vid];
        const double *iw = r->in_w[vid];
        if (degree <= r->small_degree) {
            double incident = 0.0;
            for (int64_t i = 0; i < n_out; i++)
                if (r->pos_buf[onbr[i]] >= threshold)
                    incident += ow[i];
            for (int64_t i = 0; i < n_in; i++)
                if (r->pos_buf[inbr[i]] >= threshold)
                    incident += iw[i];
            total += incident;
        } else {
            /* numpy path: edge_weights.sum() over the concatenated
             * neighbourhood when nothing is placed, the compacted
             * unplaced weights otherwise, nothing when all placed. */
            if (wscratch_reserve(r, degree))
                return -1;
            int64_t m = 0;
            int64_t placed = 0;
            for (int64_t i = 0; i < n_out; i++) {
                if (r->pos_buf[onbr[i]] < threshold)
                    placed++;
                else
                    r->wscratch[m++] = ow[i];
            }
            for (int64_t i = 0; i < n_in; i++) {
                if (r->pos_buf[inbr[i]] < threshold)
                    placed++;
                else
                    r->wscratch[m++] = iw[i];
            }
            if (placed == 0) {
                /* no neighbour placed: numpy sums the *full* weights
                 * array — same elements, same order as the scratch. */
                total += pw_sum(r->wscratch, m);
            } else if (placed < degree) {
                total += pw_sum(r->wscratch, m);
            }
        }
        for (int64_t i = 0; i < n_out; i++)
            r->touched[onbr[i]] = 1;
        for (int64_t i = 0; i < n_in; i++)
            r->touched[inbr[i]] = 1;
    }
    r->edge_traversals += 2 * degree;
    *out = total;
    return 0;
}

static int push_to_queue(Reorder *r, int32_t vid)
{
    double weight;
    if (recover_weight(r, vid, &weight))
        return -1;
    if (queued_log_push(r, vid))
        return -1;
    r->inq_val[vid] = weight;
    r->in_queue_mask[vid] = 1;
    r->queue_count++;
    if (heap_push(&r->heap, weight, vid))
        return -1;
    r->queued_vertices++;
    return 0;
}

/* Live minimum of T; stale heap entries are popped on the way. Returns 0
 * with *found = 0 when the queue is empty. */
static void queue_head(Reorder *r, int *found, double *w, int32_t *v)
{
    while (r->heap.len) {
        HeapEntry top = r->heap.data[0];
        if (!r->in_queue_mask[top.v] || r->inq_val[top.v] != top.w) {
            heap_pop(&r->heap);
            continue;
        }
        *found = 1;
        *w = top.w;
        *v = top.v;
        return;
    }
    *found = 0;
}

static int place_from_queue(Reorder *r, double weight, int32_t vid)
{
    heap_pop(&r->heap);
    r->in_queue_mask[vid] = 0;
    r->queue_count--;
    if (island_reserve(&r->island, r->island.len + 1))
        return -1;
    r->island.ids[r->island.len] = vid;
    r->island.ws[r->island.len] = weight;
    r->island.len++;
    r->pos_buf[vid] = r->head - 1; /* emitted sentinel */
    if (r->queue_count == 0)
        return 0; /* nothing pending: skip the traversal */
    int64_t n_out = vid < r->pooled ? r->out_len[vid] : 0;
    int64_t n_in = vid < r->pooled ? r->in_len[vid] : 0;
    r->edge_traversals += n_out + n_in;
    /* Both python branches (scalar and masked-vector) reduce to one
     * scalar subtract + push per pending neighbour, in pool order. */
    for (int64_t i = 0; i < n_out; i++) {
        int32_t nbr = r->out_nbr[vid][i];
        if (r->in_queue_mask[nbr]) {
            double lowered = r->inq_val[nbr] - r->out_w[vid][i];
            r->inq_val[nbr] = lowered;
            if (heap_push(&r->heap, lowered, nbr))
                return -1;
        }
    }
    for (int64_t i = 0; i < n_in; i++) {
        int32_t nbr = r->in_nbr[vid][i];
        if (r->in_queue_mask[nbr]) {
            double lowered = r->inq_val[nbr] - r->in_w[vid][i];
            r->inq_val[nbr] = lowered;
            if (heap_push(&r->heap, lowered, nbr))
                return -1;
        }
    }
    return 0;
}

/* Case 2(b): re-emit the run of white vertices starting at k; returns the
 * stop position.  Scalar scan — the chunked numpy version on the python
 * side is a vectorisation of exactly this predicate. */
static int emit_white_run(Reorder *r, int64_t *k_io, double head_weight, int32_t head_vid)
{
    int64_t k = *k_io;
    while (k < r->n) {
        int32_t vid = r->order_buf[r->head + k];
        if (r->touched[vid])
            break;
        double w = r->weights_buf[r->head + k];
        if (head_weight < w || (head_weight == w && head_vid < vid))
            break;
        if (island_reserve(&r->island, r->island.len + 1))
            return -1;
        r->island.ids[r->island.len] = vid;
        r->island.ws[r->island.len] = w;
        r->island.len++;
        r->pos_buf[vid] = r->head - 1;
        r->scanned_positions++;
        k++;
    }
    *k_io = k;
    return 0;
}

/* Write the rebuilt island back into [island_start, end). Returns -2 on
 * span mismatch (internal invariant violation; the wrapper raises). */
static int flush_island(Reorder *r, int64_t end)
{
    if (r->island.len == 0)
        return 0;
    if (r->island.len != end - r->island_start)
        return -2;
    int64_t a = r->head + r->island_start;
    int64_t moved = 0;
    for (int64_t i = 0; i < r->island.len; i++) {
        if (r->order_buf[a + i] != r->island.ids[i] ||
            r->weights_buf[a + i] != r->island.ws[i])
            moved++;
        r->order_buf[a + i] = r->island.ids[i];
        r->weights_buf[a + i] = r->island.ws[i];
        r->pos_buf[r->island.ids[i]] = a + i;
    }
    r->moved_vertices += moved;
    r->island.len = 0;
    return 0;
}

/* The full reorder pass.  stats_out: [queued, moved, scanned,
 * edge_traversals, islands, err_detail_a, err_detail_b].  Returns 0 on
 * success, -1 on allocation failure, -2 on island-accounting violation.
 * The touched / in_queue masks are reset (exactly the entries this pass
 * set) on every exit path, mirroring the python finally block. */
EXPORT int64_t repro_reorder(
    const int32_t *const *out_nbr_ptrs,
    const double *const *out_w_ptrs,
    const int64_t *out_lens,
    const int32_t *const *in_nbr_ptrs,
    const double *const *in_w_ptrs,
    const int64_t *in_lens,
    int64_t pooled,
    const double *vw,
    int32_t *order_buf,
    double *weights_buf,
    int64_t head,
    int64_t n,
    int64_t *pos_buf,
    uint8_t *touched,
    uint8_t *in_queue_mask,
    double *inq_val,
    const int32_t *seed_ids,
    int64_t num_seeds,
    const int64_t *seed_positions,
    int64_t num_seed_positions,
    int64_t small_degree,
    int64_t *stats_out)
{
    Reorder r;
    memset(&r, 0, sizeof(r));
    r.out_nbr = out_nbr_ptrs;
    r.out_w = out_w_ptrs;
    r.out_len = out_lens;
    r.in_nbr = in_nbr_ptrs;
    r.in_w = in_w_ptrs;
    r.in_len = in_lens;
    r.pooled = pooled;
    r.vw = vw;
    r.order_buf = order_buf;
    r.weights_buf = weights_buf;
    r.head = head;
    r.n = n;
    r.pos_buf = pos_buf;
    r.touched = touched;
    r.in_queue_mask = in_queue_mask;
    r.inq_val = inq_val;
    r.small_degree = small_degree;

    for (int64_t i = 0; i < num_seeds; i++)
        touched[seed_ids[i]] = 1;

    int64_t rc = 0;
    int64_t seed_cursor = 0;
    r.island_start = seed_positions[0];
    int64_t k = r.island_start;

    for (;;) {
        int found;
        double head_weight;
        int32_t head_vid;
        queue_head(&r, &found, &head_weight, &head_vid);
        if (!found) {
            rc = flush_island(&r, k);
            if (rc)
                break;
            while (seed_cursor < num_seed_positions && seed_positions[seed_cursor] < k)
                seed_cursor++;
            if (seed_cursor >= num_seed_positions)
                break;
            r.island_start = k = seed_positions[seed_cursor];
            seed_cursor++;
            r.islands++;
            r.scanned_positions++;
            if ((rc = push_to_queue(&r, order_buf[head + k])))
                break;
            k++;
            continue;
        }
        if (k >= n) {
            if ((rc = place_from_queue(&r, head_weight, head_vid)))
                break;
            continue;
        }
        if ((rc = emit_white_run(&r, &k, head_weight, head_vid)))
            break;
        if (k >= n)
            continue;
        int32_t sequence_vid = order_buf[head + k];
        double sequence_weight = weights_buf[head + k];
        r.scanned_positions++;
        if (head_weight < sequence_weight ||
            (head_weight == sequence_weight && head_vid < sequence_vid)) {
            if ((rc = place_from_queue(&r, head_weight, head_vid)))
                break;
            continue;
        }
        if ((rc = push_to_queue(&r, sequence_vid)))
            break;
        k++;
    }

    /* finally: reset exactly the entries this pass set. */
    for (int64_t i = 0; i < num_seeds; i++)
        touched[seed_ids[i]] = 0;
    for (int64_t i = 0; i < r.queued_len; i++) {
        int32_t vid = r.queued_log[i];
        touched[vid] = 0;
        in_queue_mask[vid] = 0;
        if (vid < pooled) {
            int64_t n_out = r.out_len[vid];
            for (int64_t j = 0; j < n_out; j++)
                touched[r.out_nbr[vid][j]] = 0;
            int64_t n_in = r.in_len[vid];
            for (int64_t j = 0; j < n_in; j++)
                touched[r.in_nbr[vid][j]] = 0;
        }
    }

    stats_out[0] = r.queued_vertices;
    stats_out[1] = r.moved_vertices;
    stats_out[2] = r.scanned_positions;
    stats_out[3] = r.edge_traversals;
    stats_out[4] = r.islands;
    stats_out[5] = r.island.len;
    stats_out[6] = r.island_start;

    free(r.heap.data);
    free(r.island.ids);
    free(r.island.ws);
    free(r.queued_log);
    free(r.wscratch);
    return rc;
}
