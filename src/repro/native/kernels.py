"""ctypes bindings + load-time self-check for the compiled kernels.

:func:`get_kernels` is the one entry point: it compiles (or reuses) the
``.so`` via :mod:`repro.native.build`, loads it, runs the self-check, and
caches the result process-wide.  It returns ``None`` when anything along
that path fails — the caller (``repro.native.resolve_kernel``) decides
whether that is a hard error (``kernel="native"``) or a silent fallback
(``kernel="auto"``).

Self-check
----------
Bit-identity is the whole contract, so availability is *verified*, not
assumed, before a kernel is ever used on real data:

* ``pw_sum`` (the reorder kernel's weight-recovery reduction) is fuzzed
  against ``np.sum`` over a few hundred float64 arrays; a single non-equal
  bit disables the reorder kernel (numpy could change its reduction
  algorithm in a future release — degrade instead of diverging).
* the peel kernel runs a small randomized peel and is compared entry by
  entry against a pure-python replica of the lazy-deletion greedy loop.
"""

from __future__ import annotations

import ctypes
import heapq
import random
from typing import List, Optional, Tuple

import numpy as np

from repro.native.build import BuildResult, ensure_built

__all__ = ["NativeKernels", "get_kernels", "load_failure"]

_STATS_LEN = 8


def _ptr(array: np.ndarray) -> int:
    return array.ctypes.data


class NativeKernels:
    """A loaded, self-checked kernel library."""

    def __init__(self, lib: ctypes.CDLL, build: BuildResult) -> None:
        self.lib = lib
        self.so_path = str(build.so_path)
        self.cc = build.cc
        self.cached = build.cached
        self.build_ms = build.build_ms
        self.peel_ok = False
        self.reorder_ok = False
        self.check_error: Optional[str] = None

        lib.repro_pw_sum.argtypes = [ctypes.c_void_p, ctypes.c_longlong]
        lib.repro_pw_sum.restype = ctypes.c_double
        lib.repro_peel.argtypes = [ctypes.c_void_p] * 3 + [ctypes.c_longlong] + [
            ctypes.c_void_p
        ] * 2 + [ctypes.c_longlong] + [ctypes.c_void_p] * 2
        lib.repro_peel.restype = ctypes.c_longlong
        lib.repro_reorder.argtypes = (
            [ctypes.c_void_p] * 6
            + [ctypes.c_longlong, ctypes.c_void_p]
            + [ctypes.c_void_p, ctypes.c_void_p, ctypes.c_longlong, ctypes.c_longlong]
            + [ctypes.c_void_p] * 4
            + [ctypes.c_void_p, ctypes.c_longlong, ctypes.c_void_p, ctypes.c_longlong]
            + [ctypes.c_longlong, ctypes.c_void_p]
        )
        lib.repro_reorder.restype = ctypes.c_longlong

        self._self_check()

    # ------------------------------------------------------------------ #
    # Kernel calls
    # ------------------------------------------------------------------ #
    def pw_sum(self, array: np.ndarray) -> float:
        array = np.ascontiguousarray(array, dtype=np.float64)
        return float(self.lib.repro_pw_sum(_ptr(array), len(array)))

    def peel(
        self,
        inc_off: np.ndarray,
        inc_nbr: np.ndarray,
        inc_w: np.ndarray,
        num_ids: int,
        member_ids: np.ndarray,
        init_cur: np.ndarray,
    ) -> Tuple[np.ndarray, List[float]]:
        """Run the greedy peel loop; returns ``(order_ids, weights)``.

        All arrays must be C-contiguous with the canonical dtypes
        (``int64`` offsets, ``int32`` ids, ``float64`` weights) — which is
        what :meth:`CsrSnapshot.incidence` hands out.
        """
        k = len(member_ids)
        order_out = np.empty(k, dtype=np.int32)
        weights_out = np.empty(k, dtype=np.float64)
        produced = self.lib.repro_peel(
            _ptr(inc_off),
            _ptr(inc_nbr),
            _ptr(inc_w),
            num_ids,
            _ptr(member_ids),
            _ptr(init_cur),
            k,
            _ptr(order_out),
            _ptr(weights_out),
        )
        if produced != k:
            raise MemoryError(
                f"native peel produced {produced} of {k} vertices"
            )
        return order_out, weights_out.tolist()

    def reorder(
        self,
        tables: Tuple[np.ndarray, ...],
        vw: np.ndarray,
        order_buf: np.ndarray,
        weights_buf: np.ndarray,
        head: int,
        n: int,
        pos_buf: np.ndarray,
        touched: np.ndarray,
        in_queue_mask: np.ndarray,
        inq_val: np.ndarray,
        seed_ids: np.ndarray,
        seed_positions: np.ndarray,
        small_degree: int,
    ) -> np.ndarray:
        """Run the reorder pass in place; returns the raw stats array.

        ``tables`` is the 7-tuple from ``ArrayGraph.native_adjacency()``.
        Raises ``MemoryError`` on allocation failure and
        ``AssertionError`` on an island-accounting violation — the same
        invariant the python loop asserts.
        """
        onp, owp, olen, inp, iwp, ilen, pooled = tables
        stats = np.zeros(_STATS_LEN, dtype=np.int64)
        rc = self.lib.repro_reorder(
            _ptr(onp),
            _ptr(owp),
            _ptr(olen),
            _ptr(inp),
            _ptr(iwp),
            _ptr(ilen),
            pooled,
            _ptr(vw),
            _ptr(order_buf),
            _ptr(weights_buf),
            head,
            n,
            _ptr(pos_buf),
            _ptr(touched),
            _ptr(in_queue_mask),
            _ptr(inq_val),
            _ptr(seed_ids),
            len(seed_ids),
            _ptr(seed_positions),
            len(seed_positions),
            small_degree,
            _ptr(stats),
        )
        if rc == -1:
            raise MemoryError("native reorder ran out of memory")
        if rc == -2:
            raise AssertionError(
                "island accounting error: "
                f"{int(stats[5])} rebuilt vertices for span starting at "
                f"{int(stats[6])}"
            )
        if rc != 0:  # pragma: no cover - future error codes
            raise RuntimeError(f"native reorder failed with code {rc}")
        return stats

    # ------------------------------------------------------------------ #
    # Self-check
    # ------------------------------------------------------------------ #
    def _self_check(self) -> None:
        try:
            self.reorder_ok = self._check_pw_sum()
            self.peel_ok = self._check_peel()
        except Exception as exc:  # pragma: no cover - defensive
            self.check_error = f"self-check crashed: {exc!r}"
            self.peel_ok = False
            self.reorder_ok = False

    def _check_pw_sum(self) -> bool:
        rng = np.random.RandomState(20240807)
        sizes = list(range(0, 40)) + [127, 128, 129, 255, 256, 1000, 4096, 65536]
        for size in sizes:
            for scale in (1.0, 1e-9, 1e9):
                data = (rng.random_sample(size) * scale).astype(np.float64)
                if self.pw_sum(data) != float(np.sum(data)):
                    self.check_error = (
                        f"pw_sum diverged from np.sum at n={size}; "
                        "reorder kernel disabled"
                    )
                    return False
        return True

    def _check_peel(self) -> bool:
        order, weights, ref_order, ref_weights = self._peel_fixture()
        if order.tolist() != ref_order or weights != ref_weights:
            self.check_error = "peel kernel diverged from the reference loop"
            return False
        return True

    def _peel_fixture(self):
        """Random small peel: native vs a local replica of the flat loop.

        The replica intentionally lives here (not imported from
        ``repro.peeling``) so the native package stays import-cycle-free
        below the peeling layer.
        """
        rng = random.Random(7)
        num_ids = 48
        edges = {}
        while len(edges) < 180:
            a, b = rng.randrange(num_ids), rng.randrange(num_ids)
            if a != b and (a, b) not in edges:
                edges[(a, b)] = rng.randint(1, 64) / 16.0
        out_adj: List[List[Tuple[int, float]]] = [[] for _ in range(num_ids)]
        in_adj: List[List[Tuple[int, float]]] = [[] for _ in range(num_ids)]
        for (a, b), w in edges.items():
            out_adj[a].append((b, w))
            in_adj[b].append((a, w))
        inc_off = [0]
        inc_nbr: List[int] = []
        inc_w: List[float] = []
        for vid in range(num_ids):
            for nbr, w in out_adj[vid] + in_adj[vid]:
                inc_nbr.append(nbr)
                inc_w.append(w)
            inc_off.append(len(inc_nbr))
        member_ids = np.arange(num_ids, dtype=np.int32)
        init = np.array(
            [sum(w for _, w in out_adj[v] + in_adj[v]) for v in range(num_ids)],
            dtype=np.float64,
        )

        order, weights = self.peel(
            np.asarray(inc_off, dtype=np.int64),
            np.asarray(inc_nbr, dtype=np.int32),
            np.asarray(inc_w, dtype=np.float64),
            num_ids,
            member_ids,
            init,
        )

        # Reference: the flat lazy-deletion loop, verbatim.
        cur: List[Optional[float]] = list(init.tolist())
        heap = list(zip(init.tolist(), range(num_ids)))
        heapq.heapify(heap)
        ref_order: List[int] = []
        ref_weights: List[float] = []
        while heap:
            weight, vid = heapq.heappop(heap)
            if cur[vid] != weight:
                continue
            cur[vid] = None
            ref_order.append(vid)
            ref_weights.append(weight)
            for i in range(inc_off[vid], inc_off[vid + 1]):
                nbr = inc_nbr[i]
                value = cur[nbr]
                if value is not None:
                    value -= inc_w[i]
                    cur[nbr] = value
                    heapq.heappush(heap, (value, nbr))
        return order, weights, ref_order, ref_weights


_cached: Optional[NativeKernels] = None
_failure: Optional[str] = None
_attempted = False


def get_kernels() -> Optional[NativeKernels]:
    """Build + load + self-check the kernels once per process.

    Returns ``None`` when no compiler is available, the build fails, or
    the loaded library flunks its self-check entirely;
    :func:`load_failure` carries the reason.  Partial capability (e.g.
    ``reorder_ok`` False with ``peel_ok`` True) returns the object — the
    dispatch sites check the per-kernel flags.
    """
    global _cached, _failure, _attempted
    if _attempted:
        return _cached
    _attempted = True
    build = ensure_built()
    if not build.ok:
        _failure = build.error
        return None
    try:
        lib = ctypes.CDLL(str(build.so_path))
    except OSError as exc:
        _failure = f"failed to load {build.so_path}: {exc}"
        return None
    kernels = NativeKernels(lib, build)
    if not kernels.peel_ok and not kernels.reorder_ok:
        _failure = kernels.check_error or "self-check failed"
        return None
    _cached = kernels
    return _cached


def load_failure() -> Optional[str]:
    """Why :func:`get_kernels` returned ``None`` (``None`` if it did not)."""
    return _failure


def _reset_for_tests() -> None:
    """Forget the cached load so tests can exercise cold paths."""
    global _cached, _failure, _attempted
    _cached = None
    _failure = None
    _attempted = False
