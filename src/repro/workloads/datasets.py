"""Named datasets: the Table 3 registry and the Dataset container.

Table 3 of the paper lists seven datasets.  The registry below mirrors the
table at a reduced scale (the scaling factor is recorded per entry and in
``EXPERIMENTS.md``) and adds ``*-small`` variants used by the test-suite and
the pytest-benchmark targets, where run time matters more than size.

==============  ================  ================  ===========  ==========
Registry name    Paper dataset     Paper |V| / |E|    Repro |V|    Repro |E|
==============  ================  ================  ===========  ==========
``grab1``        Grab1              3.99 M / 10 M      ~20 K        50 K
``grab2``        Grab2              4.81 M / 15 M      ~24 K        75 K
``grab3``        Grab3              5.43 M / 20 M      ~27 K       100 K
``grab4``        Grab4              6.02 M / 25 M      ~30 K       125 K
``amazon``       Amazon             28 K / 28 K         2.8 K       2.8 K
``wiki-vote``    Wiki-Vote          16 K / 103 K        1.6 K      10.3 K
``epinion``      Epinion           264 K / 841 K        13 K        42 K
==============  ================  ================  ===========  ==========

Average degrees match the paper (≈5 → ≈8.3 for Grab1→Grab4), which is what
drives the affected-area behaviour the evaluation measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import WorkloadError
from repro.graph.graph import DynamicGraph, Vertex
from repro.graph.stats import compute_stats
from repro.peeling.semantics import PeelingSemantics
from repro.streaming.stream import UpdateStream
from repro.workloads.fraud import FraudCommunity

__all__ = [
    "Dataset",
    "DatasetSpec",
    "DATASET_REGISTRY",
    "dataset_names",
    "generate_dataset",
    "table3_rows",
]


@dataclass
class Dataset:
    """A generated workload: initial graph material plus an update stream."""

    name: str
    kind: str
    #: Every vertex id (the paper initialises the graph with the full ``V``).
    vertices: Sequence[Vertex]
    #: Raw initial transactions ``(src, dst, raw_weight)`` (90 % of edges).
    initial_edges: Sequence[Tuple[Vertex, Vertex, float]]
    #: The timestamped increments (10 % of edges, plus injected fraud).
    increments: UpdateStream
    #: Ground-truth fraud communities injected into the increments.
    fraud_communities: Sequence[FraudCommunity]
    #: The generator configuration that produced the dataset.
    config: object = None

    # ------------------------------------------------------------------ #
    # Materialisation helpers
    # ------------------------------------------------------------------ #
    def initial_graph(self, semantics: PeelingSemantics) -> DynamicGraph:
        """Materialise the weighted initial graph under ``semantics``.

        All vertices are added (isolated ones included), matching the
        paper's initialisation of ``V`` plus 90 % of ``E``.
        """
        graph = semantics.materialize(self.initial_edges)
        for vertex in self.vertices:
            if not graph.has_vertex(vertex):
                graph.add_vertex(vertex, semantics.vertex_weight(vertex, graph))
        return graph

    def fraud_community_map(self) -> Dict[str, frozenset]:
        """Return ``label -> members`` for the replay driver."""
        return {c.label: c.members for c in self.fraud_communities}

    def num_initial_edges(self) -> int:
        """Return the number of initial transactions."""
        return len(self.initial_edges)

    def num_increments(self) -> int:
        """Return the number of streamed increments."""
        return len(self.increments)

    def stats_row(self, semantics: PeelingSemantics) -> Dict[str, object]:
        """Return a Table 3 style row for this dataset."""
        graph = self.initial_graph(semantics)
        stats = compute_stats(graph)
        return {
            "dataset": self.name,
            "|V|": stats.num_vertices,
            "|E|": stats.num_edges,
            "avg. degree": round(stats.avg_degree, 3),
            "increments": self.num_increments(),
            "type": self.kind,
        }


@dataclass(frozen=True)
class DatasetSpec:
    """Registry entry: how to build one named dataset."""

    name: str
    description: str
    builder: Callable[[int], Dataset]
    paper_vertices: str
    paper_edges: str
    scale_note: str

    def build(self, seed: Optional[int] = None) -> Dataset:
        """Generate the dataset (``seed`` overrides the registered default)."""
        return self.builder(seed if seed is not None else 0)


def _grab_spec(
    name: str,
    customers: int,
    merchants: int,
    edges: int,
    paper_v: str,
    paper_e: str,
    fraud_instances: int = 0,
    default_seed: int = 7,
) -> DatasetSpec:
    """Build a Grab-family registry entry."""

    def builder(seed: int) -> Dataset:
        from repro.workloads.grab import GrabConfig, generate_grab_dataset

        config = GrabConfig(
            name=name,
            num_customers=customers,
            num_merchants=merchants,
            num_edges=edges,
            fraud_instances_per_pattern=fraud_instances,
            seed=default_seed + seed,
        )
        return generate_grab_dataset(config)

    return DatasetSpec(
        name=name,
        description=f"Grab-like transaction graph ({customers + merchants} vertices, {edges} edges)",
        builder=builder,
        paper_vertices=paper_v,
        paper_edges=paper_e,
        scale_note="~200x smaller than the proprietary original, same average degree",
    )


def _public_spec(
    name: str,
    vertices: int,
    edges: int,
    paper_v: str,
    paper_e: str,
    skew: float,
    weighted: bool,
    default_seed: int = 17,
) -> DatasetSpec:
    """Build a public-family registry entry."""

    def builder(seed: int) -> Dataset:
        from repro.workloads.public import PublicConfig, generate_public_dataset

        config = PublicConfig(
            name=name,
            num_vertices=vertices,
            num_edges=edges,
            skew=skew,
            weighted=weighted,
            seed=default_seed + seed,
        )
        return generate_public_dataset(config)

    return DatasetSpec(
        name=name,
        description=f"public-style power-law graph ({vertices} vertices, {edges} edges)",
        builder=builder,
        paper_vertices=paper_v,
        paper_edges=paper_e,
        scale_note="~10-20x smaller than the public snapshot, same average degree",
    )


#: The named datasets available to benchmarks, examples and tests.
DATASET_REGISTRY: Dict[str, DatasetSpec] = {
    # Benchmark-scale datasets (used by the experiment harness).
    "grab1": _grab_spec("grab1", 18_000, 2_000, 50_000, "3.99M", "10M", fraud_instances=1),
    "grab2": _grab_spec("grab2", 21_500, 2_500, 75_000, "4.81M", "15M", fraud_instances=1),
    "grab3": _grab_spec("grab3", 24_000, 3_000, 100_000, "5.43M", "20M", fraud_instances=1),
    "grab4": _grab_spec("grab4", 26_500, 3_500, 125_000, "6.02M", "25M", fraud_instances=1),
    "amazon": _public_spec("amazon", 2_800, 2_800, "28K", "28K", skew=0.9, weighted=False),
    "wiki-vote": _public_spec("wiki-vote", 1_600, 10_300, "16K", "103K", skew=1.0, weighted=False),
    "epinion": _public_spec("epinion", 13_000, 42_000, "264K", "841K", skew=1.05, weighted=True),
    # Small variants for the test-suite, the examples and pytest-benchmark.
    "grab1-small": _grab_spec("grab1-small", 1_800, 200, 6_000, "3.99M", "10M", fraud_instances=1),
    "grab2-small": _grab_spec("grab2-small", 2_100, 250, 9_000, "4.81M", "15M", fraud_instances=1),
    "grab3-small": _grab_spec("grab3-small", 2_400, 300, 12_000, "5.43M", "20M", fraud_instances=1),
    "grab4-small": _grab_spec("grab4-small", 2_700, 350, 15_000, "6.02M", "25M", fraud_instances=1),
    "amazon-small": _public_spec("amazon-small", 700, 700, "28K", "28K", skew=0.9, weighted=False),
    "wiki-vote-small": _public_spec("wiki-vote-small", 400, 2_600, "16K", "103K", skew=1.0, weighted=False),
    "epinion-small": _public_spec("epinion-small", 1_600, 5_200, "264K", "841K", skew=1.05, weighted=True),
}


def dataset_names(include_small: bool = True) -> List[str]:
    """Return the registered dataset names (optionally without ``*-small``)."""
    names = list(DATASET_REGISTRY)
    if not include_small:
        names = [n for n in names if not n.endswith("-small")]
    return names


def generate_dataset(name: str, seed: int = 0) -> Dataset:
    """Generate the named dataset (raises for unknown names).

    Generation is a pure function of ``(name, seed)``: the seed is folded
    into the spec's default and handed to a fresh numpy generator inside
    the builder, so repeated calls — including the single-engine and the
    sharded leg of a differential run — replay bit-identical initial
    edges, increments and injected fraud bursts.
    """
    try:
        spec = DATASET_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(DATASET_REGISTRY))
        raise WorkloadError(f"unknown dataset {name!r}; known datasets: {known}") from None
    return spec.build(seed)


def table3_rows(
    names: Optional[Sequence[str]] = None,
    semantics: Optional[PeelingSemantics] = None,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Generate the Table 3 statistics rows for the named datasets."""
    from repro.peeling.semantics import dw_semantics

    semantics = semantics or dw_semantics()
    names = list(names) if names is not None else dataset_names(include_small=False)
    rows = []
    for name in names:
        dataset = generate_dataset(name, seed=seed)
        row = dataset.stats_row(semantics)
        spec = DATASET_REGISTRY[name]
        row["paper |V|"] = spec.paper_vertices
        row["paper |E|"] = spec.paper_edges
        rows.append(row)
    return rows
