"""Fraud-pattern injection with ground-truth labels.

The paper's case studies (Section 5.2, Figures 12/13) describe three fraud
patterns observed at Grab, all of which "form a dense subgraph in a short
period of time":

* **customer–merchant collusion** — a small clique of colluding customers
  and merchants trading back and forth to farm promotions;
* **deal-hunter** — a group of users hammering a handful of merchants to
  exploit promotions or pricing bugs;
* **click-farming** — one merchant recruiting many fake accounts to create
  false prosperity.

Because the proprietary labels cannot be shipped, this module *injects*
such patterns into a background stream: each pattern is a burst of
transactions among dedicated fraud vertices within a short time span,
labelled with a community id so that detection delay and prevention ratio
can be computed exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.errors import WorkloadError
from repro.graph.graph import Vertex
from repro.streaming.stream import TimestampedEdge

__all__ = [
    "RngLike",
    "as_generator",
    "FraudCommunity",
    "FraudScenario",
    "inject_collusion",
    "inject_deal_hunter",
    "inject_click_farming",
    "inject_standard_patterns",
]

#: Anything the generators accept as a randomness source: a ready-made
#: ``numpy`` generator or a plain integer seed.
RngLike = Union[np.random.Generator, int]


def as_generator(rng: RngLike) -> np.random.Generator:
    """Normalise an explicit seed or generator into a ``Generator``.

    Every workload generator routes its randomness through this helper so
    that replays are reproducible by construction: the caller always
    supplies either a seeded generator or the integer seed itself —
    differential runs (e.g. sharded vs single-engine) that pass the same
    seed replay bit-identical streams.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise WorkloadError(f"expected a numpy Generator or an int seed, got {rng!r}")

#: Canonical pattern names used by labels, case studies and reports.
PATTERN_COLLUSION = "customer-merchant-collusion"
PATTERN_DEAL_HUNTER = "deal-hunter"
PATTERN_CLICK_FARMING = "click-farming"


@dataclass(frozen=True)
class FraudCommunity:
    """Ground truth for one injected fraud instance."""

    label: str
    pattern: str
    members: FrozenSet[Vertex]
    start_time: float
    end_time: float
    num_transactions: int

    def duration(self) -> float:
        """Return the injection burst duration in stream seconds."""
        return self.end_time - self.start_time


@dataclass
class FraudScenario:
    """A set of injected communities plus their transactions."""

    edges: List[TimestampedEdge] = field(default_factory=list)
    communities: List[FraudCommunity] = field(default_factory=list)

    def community_map(self) -> Dict[str, FrozenSet[Vertex]]:
        """Return ``label -> member vertices`` for the replay driver."""
        return {c.label: c.members for c in self.communities}

    def merge(self, other: "FraudScenario") -> "FraudScenario":
        """Combine two scenarios (labels must not collide)."""
        mine = {c.label for c in self.communities}
        if mine & {c.label for c in other.communities}:
            raise WorkloadError("fraud scenario labels collide")
        return FraudScenario(
            edges=self.edges + other.edges,
            communities=self.communities + other.communities,
        )


def _burst_timestamps(rng: np.random.Generator, start: float, duration: float, count: int) -> np.ndarray:
    """Return sorted timestamps of a burst of ``count`` transactions."""
    if count <= 0:
        raise WorkloadError("a fraud burst needs at least one transaction")
    offsets = np.sort(rng.uniform(0.0, duration, size=count))
    return start + offsets


def _emit(
    rng: np.random.Generator,
    pairs: Sequence[Tuple[Vertex, Vertex]],
    label: str,
    start: float,
    duration: float,
    num_transactions: int,
    weight_low: float,
    weight_high: float,
) -> List[TimestampedEdge]:
    """Sample ``num_transactions`` labelled transactions over ``pairs``."""
    timestamps = _burst_timestamps(rng, start, duration, num_transactions)
    indices = rng.integers(0, len(pairs), size=num_transactions)
    edges = []
    for ts, idx in zip(timestamps, indices):
        src, dst = pairs[int(idx)]
        edges.append(
            TimestampedEdge(
                src=src,
                dst=dst,
                timestamp=float(ts),
                weight=float(rng.uniform(weight_low, weight_high)),
                fraud_label=label,
            )
        )
    return edges


def inject_collusion(
    rng: RngLike,
    label: str,
    start: float,
    duration: float = 60.0,
    num_customers: int = 10,
    num_merchants: int = 6,
    num_transactions: int = 480,
    vertex_prefix: str = "fraud",
) -> FraudScenario:
    """Inject a customer–merchant collusion ring (Figure 12a).

    A small set of fake customers and colluding merchants performs
    fictitious transactions among *all* customer/merchant pairs, producing
    a dense bipartite block.  ``rng`` may be a seeded generator or an
    integer seed (see :func:`as_generator`).
    """
    rng = as_generator(rng)
    customers = [f"{vertex_prefix}:{label}:c{i}" for i in range(num_customers)]
    merchants = [f"{vertex_prefix}:{label}:m{j}" for j in range(num_merchants)]
    pairs = [(c, m) for c in customers for m in merchants]
    edges = _emit(rng, pairs, label, start, duration, num_transactions, 3.0, 8.0)
    community = FraudCommunity(
        label=label,
        pattern=PATTERN_COLLUSION,
        members=frozenset(customers + merchants),
        start_time=start,
        end_time=start + duration,
        num_transactions=num_transactions,
    )
    return FraudScenario(edges=edges, communities=[community])


def inject_deal_hunter(
    rng: RngLike,
    label: str,
    start: float,
    duration: float = 90.0,
    num_hunters: int = 20,
    num_merchants: int = 8,
    num_transactions: int = 640,
    vertex_prefix: str = "fraud",
) -> FraudScenario:
    """Inject a deal-hunter group (Figure 12b): many users, few merchants."""
    rng = as_generator(rng)
    hunters = [f"{vertex_prefix}:{label}:h{i}" for i in range(num_hunters)]
    merchants = [f"{vertex_prefix}:{label}:m{j}" for j in range(num_merchants)]
    pairs = [(h, m) for h in hunters for m in merchants]
    edges = _emit(rng, pairs, label, start, duration, num_transactions, 1.0, 4.0)
    community = FraudCommunity(
        label=label,
        pattern=PATTERN_DEAL_HUNTER,
        members=frozenset(hunters + merchants),
        start_time=start,
        end_time=start + duration,
        num_transactions=num_transactions,
    )
    return FraudScenario(edges=edges, communities=[community])


def inject_click_farming(
    rng: RngLike,
    label: str,
    start: float,
    duration: float = 120.0,
    num_fake_users: int = 35,
    num_merchants: int = 4,
    num_transactions: int = 700,
    vertex_prefix: str = "fraud",
) -> FraudScenario:
    """Inject a click-farming ring (Figure 12c): merchants recruiting fakes.

    A few merchants recruit a pool of fake accounts that place fictitious
    orders; the resulting block is wide (many fakes) and shallow (few
    merchants), with a high transaction volume per pair.
    """
    rng = as_generator(rng)
    merchants = [f"{vertex_prefix}:{label}:shop{j}" for j in range(num_merchants)]
    fakes = [f"{vertex_prefix}:{label}:u{i}" for i in range(num_fake_users)]
    pairs = [(u, m) for u in fakes for m in merchants]
    edges = _emit(rng, pairs, label, start, duration, num_transactions, 1.0, 3.5)
    community = FraudCommunity(
        label=label,
        pattern=PATTERN_CLICK_FARMING,
        members=frozenset(fakes + merchants),
        start_time=start,
        end_time=start + duration,
        num_transactions=num_transactions,
    )
    return FraudScenario(edges=edges, communities=[community])


def inject_standard_patterns(
    rng: RngLike,
    stream_start: float,
    stream_end: float,
    instances_per_pattern: int = 1,
    vertex_prefix: str = "fraud",
    scale: float = 1.0,
) -> FraudScenario:
    """Inject one (or more) instance of each of the three paper patterns.

    Bursts are spread uniformly over the stream span so that the prevention
    ratio is meaningful (detection has room to happen before the burst
    ends).  ``scale`` multiplies the per-burst transaction counts for larger
    workloads.  ``rng`` may be a seeded generator or an integer seed.
    """
    rng = as_generator(rng)
    if stream_end <= stream_start:
        raise WorkloadError("stream span must be non-empty for fraud injection")
    scenario = FraudScenario()
    span = stream_end - stream_start
    patterns = (
        ("collusion", inject_collusion),
        ("dealhunter", inject_deal_hunter),
        ("clickfarm", inject_click_farming),
    )
    total = instances_per_pattern * len(patterns)
    slot = span / max(total, 1)
    index = 0
    for copy in range(instances_per_pattern):
        for short, injector in patterns:
            start = stream_start + slot * index + 0.05 * slot
            label = f"{short}-{copy}"
            kwargs = {}
            if scale != 1.0:
                kwargs["num_transactions"] = max(30, int(round(_default_tx(injector) * scale)))
            scenario = scenario.merge(
                injector(
                    rng,
                    label=label,
                    start=start,
                    duration=min(0.6 * slot, _default_duration(injector)),
                    vertex_prefix=vertex_prefix,
                    **kwargs,
                )
            )
            index += 1
    return scenario


def _default_tx(injector) -> int:
    """Default transaction count of an injector (for scaling)."""
    return {
        inject_collusion: 480,
        inject_deal_hunter: 640,
        inject_click_farming: 700,
    }[injector]


def _default_duration(injector) -> float:
    """Default burst duration of an injector."""
    return {
        inject_collusion: 60.0,
        inject_deal_hunter: 90.0,
        inject_click_farming: 120.0,
    }[injector]
