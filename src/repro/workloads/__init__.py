"""Synthetic workloads standing in for the paper's datasets.

The paper evaluates on four proprietary Grab transaction graphs and three
public snapshots (Table 3), none of which ship with this reproduction.  The
generators in this subpackage produce streams with the same *shape*:

* :mod:`repro.workloads.grab` — bipartite customer→merchant transaction
  graphs with heavy-tailed activity/popularity, timestamps, and the paper's
  90 % initial / 10 % increment split;
* :mod:`repro.workloads.public` — unipartite power-law graphs parameterised
  to the published |V| / |E| of Amazon, Wiki-Vote and Epinion;
* :mod:`repro.workloads.fraud` — injection of the three fraud patterns of
  the case studies (customer–merchant collusion, deal-hunter,
  click-farming) with ground-truth labels;
* :mod:`repro.workloads.datasets` — the named registry (``grab1`` ...
  ``epinion``, plus ``*-small`` variants for tests) and the Table 3
  statistics helper.
"""

from repro.workloads.datasets import (
    DATASET_REGISTRY,
    Dataset,
    DatasetSpec,
    dataset_names,
    generate_dataset,
    table3_rows,
)
from repro.workloads.fraud import (
    FraudCommunity,
    FraudScenario,
    inject_click_farming,
    inject_collusion,
    inject_deal_hunter,
    inject_standard_patterns,
)
from repro.workloads.grab import GrabConfig, generate_grab_dataset
from repro.workloads.public import PublicConfig, generate_public_dataset

__all__ = [
    "DATASET_REGISTRY",
    "Dataset",
    "DatasetSpec",
    "dataset_names",
    "generate_dataset",
    "table3_rows",
    "FraudCommunity",
    "FraudScenario",
    "inject_collusion",
    "inject_deal_hunter",
    "inject_click_farming",
    "inject_standard_patterns",
    "GrabConfig",
    "generate_grab_dataset",
    "PublicConfig",
    "generate_public_dataset",
]
