"""Synthetic equivalents of the public datasets (Amazon, Wiki-Vote, Epinion).

The paper uses three public snapshots purely as additional graph shapes —
they carry no fraud labels and no timestamps ("we randomly select 10 % of
edges as increments").  The generator below produces directed power-law
graphs parameterised to the published vertex/edge counts, then performs
exactly the same random 10 % increment split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.streaming.stream import TimestampedEdge, UpdateStream
from repro.workloads.datasets import Dataset
from repro.workloads.fraud import RngLike, as_generator

__all__ = ["PublicConfig", "generate_public_dataset"]


@dataclass(frozen=True)
class PublicConfig:
    """Parameters of a synthetic unipartite power-law graph."""

    name: str
    num_vertices: int
    num_edges: int
    #: Zipf-like exponent of the out- and in-degree distributions.
    skew: float = 1.0
    #: Fraction of edges used as increments (10 % in the paper).
    increment_fraction: float = 0.10
    #: Whether edges carry a unit weight (votes / reviews) or a random one.
    weighted: bool = False
    seed: int = 17

    def __post_init__(self) -> None:
        if self.num_vertices <= 1:
            raise WorkloadError("need at least two vertices")
        if self.num_edges <= 0:
            raise WorkloadError("edge count must be positive")
        if not 0.0 < self.increment_fraction < 1.0:
            raise WorkloadError("increment_fraction must be in (0, 1)")


def generate_public_dataset(config: PublicConfig, rng: Optional[RngLike] = None) -> Dataset:
    """Generate a public-style dataset according to ``config``.

    ``rng`` optionally overrides the randomness source (a seeded numpy
    generator or an integer seed); by default it is seeded from
    ``config.seed`` so equal configs replay bit-identical streams.
    """
    rng = as_generator(config.seed if rng is None else rng)
    ranks = np.arange(1, config.num_vertices + 1, dtype=np.float64)
    weights = ranks ** (-config.skew)
    out_p = weights / weights.sum()
    in_weights = weights.copy()
    rng.shuffle(in_weights)
    in_p = in_weights / in_weights.sum()

    srcs = rng.choice(config.num_vertices, size=config.num_edges, p=out_p)
    dsts = rng.choice(config.num_vertices, size=config.num_edges, p=in_p)
    # Remove self loops by re-drawing destinations where needed.
    loops = srcs == dsts
    while loops.any():
        dsts[loops] = rng.choice(config.num_vertices, size=int(loops.sum()), p=in_p)
        loops = srcs == dsts

    if config.weighted:
        amounts = rng.lognormal(1.0, 0.6, size=config.num_edges)
    else:
        amounts = np.ones(config.num_edges)

    vertices = [f"v{i}" for i in range(config.num_vertices)]
    edges: List[Tuple[str, str, float]] = [
        (vertices[int(s)], vertices[int(d)], float(a)) for s, d, a in zip(srcs, dsts, amounts)
    ]

    # The public snapshots have no timestamps: a random 10 % of edges become
    # increments, replayed in an arbitrary but fixed order with synthetic
    # equally-spaced timestamps.
    num_increments = int(round(config.num_edges * config.increment_fraction))
    increment_idx = set(
        int(i) for i in rng.choice(config.num_edges, size=num_increments, replace=False)
    )
    initial_edges = [e for i, e in enumerate(edges) if i not in increment_idx]
    increment_edges = [
        TimestampedEdge(src=e[0], dst=e[1], timestamp=float(k), weight=e[2])
        for k, (i, e) in enumerate((i, e) for i, e in enumerate(edges) if i in increment_idx)
    ]

    return Dataset(
        name=config.name,
        kind="public",
        vertices=vertices,
        initial_edges=initial_edges,
        increments=UpdateStream(increment_edges),
        fraud_communities=[],
        config=config,
    )
