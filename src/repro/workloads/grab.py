"""Grab-like transaction-graph generator.

The four proprietary datasets of Table 3 are customer→merchant transaction
graphs with millions of vertices, average degree 5–8.3 and a power-law
degree distribution (Figure 9b).  This generator reproduces that shape at a
configurable scale:

* customers and merchants are two disjoint vertex populations;
* merchant popularity and customer activity follow Zipf-like distributions,
  which yields the heavy-tailed degree histogram of Figure 9b;
* every transaction carries a log-normal amount (used by DW) and a
  timestamp drawn from a homogeneous arrival process over the configured
  stream duration;
* the oldest 90 % of transactions form the initial graph, the newest 10 %
  the increments (exactly the paper's split), and fraud bursts can be
  injected into the increment portion for effectiveness experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.streaming.stream import TimestampedEdge, UpdateStream
from repro.workloads.datasets import Dataset
from repro.workloads.fraud import FraudScenario, RngLike, as_generator, inject_standard_patterns

__all__ = ["GrabConfig", "generate_grab_dataset"]


@dataclass(frozen=True)
class GrabConfig:
    """Parameters of a synthetic Grab-like transaction graph."""

    name: str
    num_customers: int
    num_merchants: int
    num_edges: int
    #: Log-normal sigma of merchant popularity (larger = heavier tail).
    merchant_skew: float = 1.1
    #: Log-normal sigma of customer activity.
    customer_skew: float = 0.9
    #: Fraction of edges replayed as increments (the paper uses 10 %).
    increment_fraction: float = 0.10
    #: Stream duration in seconds covered by the transaction log.  ``None``
    #: picks a duration such that the overall arrival rate is ~100 edges/s,
    #: so the increment portion behaves like a live feed rather than an
    #: archive replay.
    duration: Optional[float] = None
    #: Log-normal parameters of the transaction amount.
    amount_mu: float = 1.2
    amount_sigma: float = 0.6
    #: Number of fraud instances per pattern injected into the increments.
    fraud_instances_per_pattern: int = 0
    #: Scaling factor applied to injected fraud burst sizes.
    fraud_scale: float = 1.0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_customers <= 0 or self.num_merchants <= 0:
            raise WorkloadError("customer and merchant counts must be positive")
        if self.num_edges <= 0:
            raise WorkloadError("edge count must be positive")
        if not 0.0 < self.increment_fraction < 1.0:
            raise WorkloadError("increment_fraction must be in (0, 1)")

    @property
    def num_vertices(self) -> int:
        """Total number of vertices."""
        return self.num_customers + self.num_merchants

    @property
    def effective_duration(self) -> float:
        """Stream duration in seconds (derived when ``duration`` is None)."""
        if self.duration is not None:
            return self.duration
        return self.num_edges / 100.0


def _heavy_tail_probabilities(count: int, sigma: float, rng: np.random.Generator) -> np.ndarray:
    """Return a heavy-tailed (log-normal) probability vector of length ``count``.

    Log-normal popularity produces the power-law-looking degree histogram of
    Figure 9(b) without concentrating a double-digit share of all edges on a
    single vertex, which a literal Zipf head would do at this reduced scale.
    """
    weights = rng.lognormal(mean=0.0, sigma=sigma, size=count)
    return weights / weights.sum()


def generate_grab_dataset(config: GrabConfig, rng: Optional[RngLike] = None) -> Dataset:
    """Generate a Grab-like dataset according to ``config``.

    The returned :class:`~repro.workloads.datasets.Dataset` contains the
    full vertex population (the paper initialises the graph with all of
    ``V``), the initial 90 % of edges, the timestamped increment stream and
    any injected fraud communities.

    ``rng`` optionally overrides the randomness source (a seeded numpy
    generator or an integer seed); by default the generator is seeded
    from ``config.seed``, so two calls with equal configs — e.g. the
    single-engine and the sharded leg of a differential run — replay
    bit-identical streams.
    """
    rng = as_generator(config.seed if rng is None else rng)
    customers = [f"c{i}" for i in range(config.num_customers)]
    merchants = [f"m{j}" for j in range(config.num_merchants)]

    customer_p = _heavy_tail_probabilities(config.num_customers, config.customer_skew, rng)
    merchant_p = _heavy_tail_probabilities(config.num_merchants, config.merchant_skew, rng)

    customer_idx = rng.choice(config.num_customers, size=config.num_edges, p=customer_p)
    merchant_idx = rng.choice(config.num_merchants, size=config.num_edges, p=merchant_p)
    amounts = rng.lognormal(config.amount_mu, config.amount_sigma, size=config.num_edges)
    timestamps = np.sort(rng.uniform(0.0, config.effective_duration, size=config.num_edges))

    num_increments = int(round(config.num_edges * config.increment_fraction))
    num_initial = config.num_edges - num_increments

    initial_edges: List[Tuple[str, str, float]] = []
    for i in range(num_initial):
        initial_edges.append(
            (customers[int(customer_idx[i])], merchants[int(merchant_idx[i])], float(amounts[i]))
        )

    increment_edges: List[TimestampedEdge] = []
    for i in range(num_initial, config.num_edges):
        increment_edges.append(
            TimestampedEdge(
                src=customers[int(customer_idx[i])],
                dst=merchants[int(merchant_idx[i])],
                timestamp=float(timestamps[i]),
                weight=float(amounts[i]),
            )
        )

    fraud = FraudScenario()
    if config.fraud_instances_per_pattern > 0 and increment_edges:
        span_start = increment_edges[0].timestamp
        span_end = increment_edges[-1].timestamp
        fraud = inject_standard_patterns(
            rng,
            stream_start=span_start,
            stream_end=span_end,
            instances_per_pattern=config.fraud_instances_per_pattern,
            vertex_prefix=f"{config.name}:fraud",
            scale=config.fraud_scale,
        )

    stream = UpdateStream(increment_edges + fraud.edges, sort=True)
    vertices = customers + merchants + sorted({v for c in fraud.communities for v in c.members})

    return Dataset(
        name=config.name,
        kind="transaction",
        vertices=vertices,
        initial_edges=initial_edges,
        increments=stream,
        fraud_communities=fraud.communities,
        config=config,
    )
