"""``ObsConfig``: the observability knobs, nested inside ``ServeConfig``.

Mirrors the :class:`~repro.serve.config.ServeConfig` contract — a frozen
dataclass that validates on construction and round-trips through plain
dicts — so one JSON document still describes the whole deployment
(engine, server, history, *and* tracing).

This module deliberately imports only :mod:`repro.errors`, keeping it
safe to nest under the config layer without dragging the serving stack
into every ``import repro.api``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.errors import ConfigError

__all__ = ["ObsConfig"]


@dataclass(frozen=True)
class ObsConfig:
    """Validated knobs for tracing, event logging, and the trace buffer.

    Attributes
    ----------
    trace_sample:
        Fraction of requests traced end-to-end, in ``[0, 1]``.  Sampling
        is deterministic in the trace id (``crc32(trace_id)``), so a
        given id always makes the same decision — reproducible in tests
        and stable across retries of the same id.  ``0`` disables span
        collection entirely (requests still get an ``X-Repro-Trace-Id``);
        ``1`` traces everything.
    slow_ms:
        Always-record threshold in milliseconds.  A request slower than
        this is recorded to the ring buffer and event log even when the
        sampler skipped it (without spans — the decision is retroactive),
        so tail latency is never invisible.  ``0`` disables the
        threshold.
    trace_log:
        Structured JSONL event-log destination: a file path, ``"auto"``
        (``<wal_dir>/events.jsonl``; disabled when the deployment has no
        ``wal_dir``), or ``None`` (default: no event log — recorded
        traces still land in the in-memory ring served at
        ``/debug/traces``).
    trace_buffer:
        Capacity of the in-memory :class:`~repro.obs.recorder.TraceRecorder`
        ring (recorded traces, not requests).
    """

    trace_sample: float = 0.1
    slow_ms: float = 250.0
    trace_log: Optional[str] = None
    trace_buffer: int = 512

    def __post_init__(self) -> None:
        try:
            rate = float(self.trace_sample)
        except (TypeError, ValueError):
            raise ConfigError(
                f"trace_sample must be a number in [0, 1], got {self.trace_sample!r}"
            ) from None
        if not 0.0 <= rate <= 1.0:
            raise ConfigError(
                f"trace_sample must be in [0, 1], got {self.trace_sample!r}"
            )
        try:
            slow = float(self.slow_ms)
        except (TypeError, ValueError):
            raise ConfigError(
                f"slow_ms must be a number >= 0, got {self.slow_ms!r}"
            ) from None
        if slow < 0:
            raise ConfigError(f"slow_ms must be >= 0, got {self.slow_ms!r}")
        if self.trace_log is not None and not isinstance(self.trace_log, str):
            raise ConfigError(
                f"trace_log must be a path, 'auto', or None, got {self.trace_log!r}"
            )
        if not isinstance(self.trace_buffer, int) or isinstance(self.trace_buffer, bool):
            raise ConfigError(
                f"trace_buffer must be an integer, got {self.trace_buffer!r}"
            )
        if not 16 <= self.trace_buffer <= 1_000_000:
            raise ConfigError(
                f"trace_buffer must be in [16, 1000000], got {self.trace_buffer}"
            )

    # ------------------------------------------------------------------ #
    # Round-tripping (mirrors ServeConfig's contract)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """Export as a plain JSON-serialisable dict (all knobs, always)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ObsConfig":
        """Build (and validate) a config from a dict; unknown keys fail."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(
                f"unknown ObsConfig keys: {', '.join(unknown)}; "
                f"valid keys: {', '.join(sorted(known))}"
            )
        return cls(**dict(data))

    def replace(self, **changes: object) -> "ObsConfig":
        """Return a copy with the given knobs changed (re-validated)."""
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]
