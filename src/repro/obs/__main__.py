"""``python -m repro.obs tail``: pretty-print or follow the event log.

Usage::

    python -m repro.obs tail --log wal/events.jsonl
    python -m repro.obs tail --log wal/events.jsonl --follow --min-ms 50
    python -m repro.obs tail --log wal/events.jsonl --json    # raw lines

One line per trace: wall time, trace id, request, status, total latency,
then a per-stage breakdown aggregated from the spans (count × summed
duration per span name) so a slow request's bottleneck reads off the
terminal without any tooling.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional

from repro.obs.events import follow_events, read_events

__all__ = ["main", "format_record"]


def format_record(record: Dict[str, object]) -> str:
    """Render one event-log record as a single human line."""
    ts = float(record.get("ts", 0.0))
    clock = time.strftime("%H:%M:%S", time.localtime(ts))
    millis = int((ts % 1.0) * 1000)
    trace_id = record.get("trace_id", "?")
    method = record.get("method", "?")
    path = record.get("path", "?")
    status = record.get("status", "?")
    duration = float(record.get("duration_ms", 0.0))
    reason = record.get("reason", "sampled")
    head = (
        f"{clock}.{millis:03d}  {trace_id}  {method} {path}  "
        f"{status}  {duration:8.2f}ms"
    )
    if reason != "sampled":
        head += f"  [{reason}]"
    stages: "OrderedDict[str, List[float]]" = OrderedDict()
    for span in record.get("spans", []):  # type: ignore[union-attr]
        if not isinstance(span, dict):
            continue
        name = str(span.get("name", "?"))
        cell = stages.setdefault(name, [0, 0.0])
        cell[0] += 1
        cell[1] += float(span.get("duration_ms", 0.0))
    if stages:
        parts = []
        for name, (count, total) in stages.items():
            label = name if count == 1 else f"{name}×{int(count)}"
            parts.append(f"{label}={total:.2f}ms")
        head += "  " + " ".join(parts)
    annotations = record.get("annotations")
    if isinstance(annotations, dict) and "wal_seq" in annotations:
        head += f"  seq={annotations['wal_seq']}"
    return head


def _emit(record: Dict[str, object], min_ms: float, raw: bool) -> None:
    if float(record.get("duration_ms", 0.0)) < min_ms:
        return
    if raw:
        print(json.dumps(record, separators=(",", ":")))
    else:
        print(format_record(record))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect the serving stack's trace event log.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    tail_parser = sub.add_parser("tail", help="print (or follow) the event log")
    tail_parser.add_argument(
        "--log", type=Path, required=True, help="events.jsonl path"
    )
    tail_parser.add_argument(
        "--follow",
        action="store_true",
        help="keep polling for new records (like tail -f)",
    )
    tail_parser.add_argument(
        "--min-ms",
        type=float,
        default=0.0,
        help="only show traces at least this slow",
    )
    tail_parser.add_argument(
        "--json",
        action="store_true",
        help="emit raw JSON lines instead of the pretty format",
    )
    args = parser.parse_args(argv)

    if not args.log.exists() and not args.follow:
        print(f"event log not found: {args.log}", file=sys.stderr)
        return 1
    try:
        if args.follow:
            for record in follow_events(args.log):
                _emit(record, args.min_ms, args.json)
        else:
            records, _ = read_events(args.log)
            for record in records:
                _emit(record, args.min_ms, args.json)
    except KeyboardInterrupt:  # pragma: no cover - interactive convenience
        pass
    except FileNotFoundError:
        print(f"event log not found: {args.log}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
