"""``repro.obs``: tracing, structured event logs, and profiling counters.

The serving stack's per-request lens.  One :class:`TraceContext` is
minted per HTTP request (``X-Repro-Trace-Id`` on every response) and
carried through the ingest gateway, the WAL append, the engine apply,
and — over the worker wire protocol — into resident shard workers, so
``GET /debug/traces`` answers "where did *this* request spend its time".
Recorded traces land in an in-memory :class:`TraceRecorder` ring and,
when configured, a JSONL :class:`EventLog` that
``python -m repro.obs tail`` pretty-prints or follows.

:mod:`repro.obs.profile` is the compute core's counterpart: per-phase
wall-time counters (CSR init, greedy peel loop, reorder window work,
python vs. native kernel) behind ``GET /debug/profile``.

Everything here is stdlib-only and import-light — safe to use from the
innermost hot paths.  The :mod:`repro.obs.events` re-exports are lazy
(PEP 562): the event log rides on :mod:`repro.storage.jsonl`, whose
import chain reaches back into the engine packages, and the hot paths
that import ``repro.obs`` for the profile counters must not drag that
cycle in at module-import time.
"""

from repro.obs.config import ObsConfig
from repro.obs.context import (
    Span,
    TraceContext,
    activate,
    current_trace,
    deactivate,
    sample_decision,
)
from repro.obs.recorder import TraceRecorder

_LAZY_EVENTS = ("EventLog", "follow_events", "read_events")


def __getattr__(name):
    if name in _LAZY_EVENTS:
        from repro.obs import events

        return getattr(events, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "EventLog",
    "ObsConfig",
    "Span",
    "TraceContext",
    "TraceRecorder",
    "activate",
    "current_trace",
    "deactivate",
    "follow_events",
    "read_events",
    "sample_decision",
]
