"""A fixed-capacity ring buffer of recorded traces, behind ``/debug/traces``.

The recorder is lock-free by construction rather than by atomics: the
only writer is the server's event-loop thread (traces are recorded at
request completion, inside the handler), and the only reader is the same
thread (the ``/debug/traces`` handler).  Slot assignment is a single
list-item store, so even a concurrent reader — a test poking at the ring
from another thread — sees either the old record or the new one, never a
torn value (CPython list stores are atomic under the GIL).

Records are the plain dicts :meth:`TraceContext.to_dict` exports; the
ring never holds live ``TraceContext`` objects, so recording detaches a
trace from the request lifecycle.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["TraceRecorder"]


class TraceRecorder:
    """Keep the most recent ``capacity`` trace records, queryable by latency."""

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._slots: List[Optional[Dict[str, object]]] = [None] * capacity
        self._next = 0
        self._total = 0

    @property
    def capacity(self) -> int:
        return len(self._slots)

    @property
    def total_recorded(self) -> int:
        """Traces ever recorded (recorded - capacity have been overwritten)."""
        return self._total

    def record(self, record: Dict[str, object]) -> None:
        """Store one exported trace, overwriting the oldest slot."""
        self._slots[self._next] = record
        self._next = (self._next + 1) % len(self._slots)
        self._total += 1

    def snapshot(self) -> List[Dict[str, object]]:
        """All held records, most recently recorded first."""
        n = len(self._slots)
        start = self._next
        out: List[Dict[str, object]] = []
        for step in range(1, n + 1):
            record = self._slots[(start - step) % n]
            if record is not None:
                out.append(record)
        return out

    def slowest(
        self, min_ms: float = 0.0, limit: int = 50
    ) -> List[Dict[str, object]]:
        """The slowest recent traces at or above ``min_ms``, slowest first.

        Ties break toward the more recently recorded trace, so the view
        is stable and fresh under a flood of equal-latency requests.
        """
        limit = max(1, int(limit))
        kept = [
            record
            for record in self.snapshot()
            if float(record.get("duration_ms", 0.0)) >= min_ms
        ]
        kept.sort(key=lambda record: -float(record.get("duration_ms", 0.0)))
        return kept[:limit]

    def find(self, trace_id: str) -> Optional[Dict[str, object]]:
        """The held record for ``trace_id``, or ``None`` if evicted/absent."""
        for record in self.snapshot():
            if record.get("trace_id") == trace_id:
                return record
        return None
