"""The structured JSONL event log: one line per recorded trace.

Reuses :mod:`repro.storage.jsonl` (the WAL's writer) so the log shares
its properties: append-only, crash-tolerant tailing (a torn final line
is ignored, not fatal), and offset-based resumption for followers.

Schema (one JSON object per line — exactly
:meth:`~repro.obs.context.TraceContext.to_dict`)::

    {"ts": 1722e6, "trace_id": "3f9a...", "method": "POST",
     "path": "/v1/edges", "status": 200, "duration_ms": 12.4,
     "reason": "sampled" | "slow",
     "spans": [{"id": 1, "name": "queue_wait", "parent": null,
                "start_ms": 0.1, "duration_ms": 0.8, "attrs": {...}}, ...],
     "annotations": {"wal_seq": 12, ...}}

``reason`` records *why* the line exists: ``"sampled"`` traces carry
spans; ``"slow"`` traces were recorded retroactively by the ``slow_ms``
threshold after the sampler skipped them, so they have the envelope
(status, duration) but an empty span list.

The log is written on the server's event-loop thread at request
completion with ``fsync=False`` — observability must never add an fsync
to the request path.  Write failures (disk full) disable nothing: the
caller counts them and keeps serving.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterator, List, Tuple, Union

from repro.storage.jsonl import JsonlWriter, tail

__all__ = ["EventLog", "read_events", "follow_events"]

PathLike = Union[str, Path]


class EventLog:
    """Appender for the trace event log (thin JsonlWriter wrapper)."""

    def __init__(self, path: PathLike, fsync: bool = False) -> None:
        self._writer = JsonlWriter(Path(path), fsync=fsync)

    @property
    def path(self) -> Path:
        return self._writer.path

    def write(self, record: Dict[str, object]) -> int:
        """Append one trace record; returns the offset after the line."""
        return self._writer.append(record)

    def sync(self) -> None:
        self._writer.sync()

    def close(self) -> None:
        self._writer.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def read_events(
    path: PathLike, offset: int = 0
) -> Tuple[List[Dict[str, object]], int]:
    """Read trace records from ``offset``; returns ``(records, next_offset)``.

    Tolerates a torn final line (a live writer mid-append): the fragment
    is not consumed, and the returned offset lets the caller resume once
    the line completes.
    """
    records, next_offset = tail(Path(path), offset)
    return [r for r in records if isinstance(r, dict)], next_offset


def follow_events(
    path: PathLike, offset: int = 0, poll_interval: float = 0.5
) -> Iterator[Dict[str, object]]:
    """Yield trace records forever, polling for growth (``tail -f``).

    Used by ``python -m repro.obs tail --follow``; terminate with
    ``KeyboardInterrupt``.
    """
    import time as _time

    position = offset
    while True:
        records, position = read_events(path, position)
        yielded = False
        for record in records:
            yielded = True
            yield record
        if not yielded:
            _time.sleep(poll_interval)
