"""Per-request trace contexts: span trees over ``perf_counter`` timings.

One :class:`TraceContext` is created per HTTP request.  It travels two
ways at once:

* **explicitly**, as a field on the ingest gateway's ``Submission`` —
  ``loop.run_in_executor`` does *not* propagate :mod:`contextvars`, so
  the asyncio handler cannot rely on ambient context to reach the commit
  thread;
* **ambiently**, via :func:`activate` / :func:`current_trace`, inside
  the synchronous commit path.  ``_commit_sync`` activates the request's
  trace at the top of the executor thread, and everything downstream of
  it — WAL append, engine apply, the worker scatter/gather — is
  synchronous in that one thread, so deep layers (``wal.py``,
  ``workers.py``) can attach spans without threading a trace argument
  through every signature.

Span timings are absolute ``time.perf_counter()`` readings; they are
made relative to the trace start only at export (:meth:`Span.to_dict`),
so externally-timed intervals (a queue wait that began before the trace
reached the gateway is still after the trace *started*) slot in without
clock gymnastics.  Worker processes have incomparable ``perf_counter``
clocks — the coordinator anchors their reported *durations* inside its
own round-trip span instead of trusting their absolute readings.

Concurrency: a trace is only ever touched by one thread at a time — the
event-loop thread before submission and after the commit future
resolves, the single ingest executor thread in between (the handler is
parked on ``await`` for that whole window) — so spans append without a
lock.

Sampling is deterministic in the trace id (``crc32``), so tests can pick
ids on either side of the threshold and every retry of an id makes the
same decision.
"""

from __future__ import annotations

import contextvars
import itertools
import time
import uuid
import zlib
from typing import Dict, List, Optional

__all__ = [
    "Span",
    "TraceContext",
    "activate",
    "current_trace",
    "deactivate",
    "sample_decision",
]

#: Sampling resolution: rates are compared at 1-in-a-million granularity.
_SAMPLE_DOMAIN = 1_000_000


def sample_decision(trace_id: str, rate: float) -> bool:
    """Deterministic sampling: does ``trace_id`` fall inside ``rate``?

    ``crc32`` hashes the id into ``[0, 2**32)``; reducing modulo
    ``_SAMPLE_DOMAIN`` gives a uniform-enough coordinate to compare
    against the rate.  The same id always answers the same way.
    """
    if rate <= 0.0:
        return False
    if rate >= 1.0:
        return True
    coordinate = zlib.crc32(trace_id.encode("ascii")) % _SAMPLE_DOMAIN
    return coordinate < int(rate * _SAMPLE_DOMAIN)


class Span:
    """One timed interval inside a trace (absolute ``perf_counter`` ends)."""

    __slots__ = ("sid", "name", "start", "end", "parent", "attrs")

    def __init__(
        self,
        sid: int,
        name: str,
        start: float,
        end: Optional[float] = None,
        parent: Optional[int] = None,
        attrs: Optional[Dict[str, object]] = None,
    ) -> None:
        self.sid = sid
        self.name = name
        self.start = start
        self.end = end
        self.parent = parent
        self.attrs = attrs or {}

    def to_dict(self, origin: float) -> Dict[str, object]:
        """Export with timings relative to the trace start, in ms."""
        end = self.end if self.end is not None else self.start
        record: Dict[str, object] = {
            "id": self.sid,
            "name": self.name,
            "parent": self.parent,
            "start_ms": round((self.start - origin) * 1000.0, 3),
            "duration_ms": round((end - self.start) * 1000.0, 3),
        }
        if self.attrs:
            record["attrs"] = self.attrs
        return record


class TraceContext:
    """The span tree and identity of one request.

    The request itself is the implicit root: spans opened with no
    enclosing span have ``parent=None``.  Unsampled traces stay
    lightweight — the id exists (the response header always carries
    one), the duration is measured, but span methods are no-ops and the
    commit path never activates the trace.
    """

    __slots__ = (
        "trace_id",
        "method",
        "path",
        "sampled",
        "began",
        "wall_ts",
        "status",
        "duration",
        "spans",
        "annotations",
        "_stack",
        "_ids",
    )

    def __init__(
        self,
        trace_id: str,
        method: str = "",
        path: str = "",
        sampled: bool = True,
    ) -> None:
        self.trace_id = trace_id
        self.method = method
        self.path = path
        self.sampled = sampled
        self.began = time.perf_counter()
        self.wall_ts = time.time()
        self.status: Optional[int] = None
        self.duration: Optional[float] = None
        self.spans: List[Span] = []
        self.annotations: Dict[str, object] = {}
        self._stack: List[Span] = []
        self._ids = itertools.count(1)

    @classmethod
    def new(cls, method: str, path: str, sample_rate: float) -> "TraceContext":
        """Mint a fresh trace for one request, rolling the sampling dice."""
        trace_id = uuid.uuid4().hex[:16]
        return cls(
            trace_id,
            method=method,
            path=path,
            sampled=sample_decision(trace_id, sample_rate),
        )

    # ------------------------------------------------------------------ #
    # Span recording
    # ------------------------------------------------------------------ #
    def start_span(self, name: str, **attrs: object) -> Optional[Span]:
        """Open a span (child of the innermost open span); None if unsampled."""
        if not self.sampled:
            return None
        parent = self._stack[-1].sid if self._stack else None
        span = Span(
            next(self._ids), name, time.perf_counter(), parent=parent, attrs=attrs
        )
        self.spans.append(span)
        self._stack.append(span)
        return span

    def end_span(self, span: Optional[Span]) -> None:
        """Close a span opened with :meth:`start_span` (tolerates None)."""
        if span is None:
            return
        span.end = time.perf_counter()
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # out-of-order close: drop through it
            self._stack.remove(span)

    def add_span(
        self,
        name: str,
        start: float,
        end: float,
        parent: Optional[Span] = None,
        **attrs: object,
    ) -> Optional[Span]:
        """Record an externally-timed interval; parents under the open span.

        ``start``/``end`` are ``perf_counter`` readings taken by the
        caller (a queue wait measured before the trace reached this
        layer, a worker round-trip timed around a pipe).  An explicit
        ``parent`` span overrides the stack.
        """
        if not self.sampled:
            return None
        if parent is not None:
            parent_sid: Optional[int] = parent.sid
        else:
            parent_sid = self._stack[-1].sid if self._stack else None
        span = Span(next(self._ids), name, start, end, parent_sid, attrs or None)
        self.spans.append(span)
        return span

    def annotate(self, **attrs: object) -> None:
        """Attach request-level key/values (wal seq, coalesce count, ...)."""
        if self.sampled:
            self.annotations.update(attrs)

    # ------------------------------------------------------------------ #
    # Completion + export
    # ------------------------------------------------------------------ #
    def finish(self, status: int) -> float:
        """Stamp the terminal status; return the request duration (s)."""
        self.status = status
        self.duration = time.perf_counter() - self.began
        return self.duration

    def to_dict(self, reason: str = "sampled") -> Dict[str, object]:
        """Export the trace as one JSON-able record (the event-log schema)."""
        duration = (
            self.duration
            if self.duration is not None
            else time.perf_counter() - self.began
        )
        record: Dict[str, object] = {
            "ts": round(self.wall_ts, 6),
            "trace_id": self.trace_id,
            "method": self.method,
            "path": self.path,
            "status": self.status,
            "duration_ms": round(duration * 1000.0, 3),
            "reason": reason,
            "spans": [span.to_dict(self.began) for span in self.spans],
        }
        if self.annotations:
            record["annotations"] = self.annotations
        return record


# ---------------------------------------------------------------------- #
# Ambient propagation inside the synchronous commit path
# ---------------------------------------------------------------------- #
_current: contextvars.ContextVar[Optional[TraceContext]] = contextvars.ContextVar(
    "repro_obs_trace", default=None
)


def current_trace() -> Optional[TraceContext]:
    """The trace activated in this thread's context, if any."""
    return _current.get()


def activate(trace: TraceContext) -> "contextvars.Token[Optional[TraceContext]]":
    """Make ``trace`` ambient for the current thread; returns a reset token."""
    return _current.set(trace)


def deactivate(token: "contextvars.Token[Optional[TraceContext]]") -> None:
    """Undo a matching :func:`activate`."""
    _current.reset(token)
