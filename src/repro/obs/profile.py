"""Process-global phase counters for the compute core (``/debug/profile``).

The peel and reorder hot paths record how much wall time each *phase*
consumed and which *kernel* (python or native) ran it:

* ``peel_csr_init`` — building the peel working set from a CSR snapshot
  (always numpy/python: the vectorized lane transpose + degree seeding);
* ``peel_greedy`` — the greedy min-extraction loop (python heap-free
  flat loop, or the compiled C kernel);
* ``peel_heap`` — the legacy heap-based peel (dict backend / subset
  maintenance path);
* ``reorder`` — Algorithm-2 window maintenance after insertions.

Counters are cumulative since process start (or :func:`reset`).  Shard
worker processes accumulate their own tables and ship a snapshot with
every response; the coordinator keeps the latest per shard and merges
them for ``/debug/profile``.  A respawned worker restarts its table from
zero, so worker columns undercount across a respawn — acceptable for a
profiling surface, and the restart itself is visible in
``repro_worker_restarts_total``.

A lock guards the two-field update; the cost is one uncontended acquire
per peel/reorder *pass* (not per edge), far below noise.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Tuple

__all__ = ["record", "timed", "snapshot", "merge", "reset"]

_lock = threading.Lock()
#: (phase, kernel) -> [calls, seconds]
_counters: Dict[Tuple[str, str], List[float]] = {}


def record(phase: str, kernel: str, seconds: float) -> None:
    """Accumulate one timed pass of ``phase`` under ``kernel``."""
    key = (phase, kernel)
    with _lock:
        entry = _counters.get(key)
        if entry is None:
            _counters[key] = [1, seconds]
        else:
            entry[0] += 1
            entry[1] += seconds


@contextmanager
def timed(phase: str, kernel: str = "python") -> Iterator[None]:
    """Context manager form of :func:`record`."""
    began = time.perf_counter()
    try:
        yield
    finally:
        record(phase, kernel, time.perf_counter() - began)


def snapshot() -> Dict[str, Dict[str, float]]:
    """Export the table as ``{"phase[kernel]": {"calls", "seconds"}}``."""
    with _lock:
        items = list(_counters.items())
    return {
        f"{phase}[{kernel}]": {"calls": int(calls), "seconds": round(seconds, 6)}
        for (phase, kernel), (calls, seconds) in sorted(items)
    }


def merge(
    snapshots: Iterable[Dict[str, Dict[str, float]]]
) -> Dict[str, Dict[str, float]]:
    """Sum several :func:`snapshot`-shaped tables into one."""
    out: Dict[str, Dict[str, float]] = {}
    for table in snapshots:
        if not isinstance(table, dict):
            continue
        for key, cell in table.items():
            if not isinstance(cell, dict):
                continue
            slot = out.setdefault(key, {"calls": 0, "seconds": 0.0})
            slot["calls"] = int(slot["calls"]) + int(cell.get("calls", 0))
            slot["seconds"] = round(
                float(slot["seconds"]) + float(cell.get("seconds", 0.0)), 6
            )
    return dict(sorted(out.items()))


def split_key(key: str) -> Tuple[str, str]:
    """``"phase[kernel]"`` -> ``("phase", "kernel")`` (label export)."""
    if key.endswith("]") and "[" in key:
        phase, _, kernel = key[:-1].partition("[")
        return phase, kernel
    return key, "unknown"


def reset() -> None:
    """Zero the process-local table (tests, respawned workers)."""
    with _lock:
        _counters.clear()
