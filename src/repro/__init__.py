"""repro — reproduction of Spade, a real-time fraud detection framework.

Spade (Jiang et al., VLDB) incrementally maintains the result of greedy
*peeling* algorithms (DG, DW, Fraudar and user-defined variants) on evolving
transaction graphs, so that dense fraudulent communities can be re-identified
within microseconds of each edge insertion instead of re-running the static
algorithm from scratch.

The package is organised as follows:

``repro.api``
    The stable v1 public surface: :class:`~repro.api.EngineConfig` (one
    validated config object), :class:`~repro.api.SpadeClient` (the
    context-manager façade with the single ``apply`` ingestion method),
    the typed update events and the :class:`~repro.api.DetectionReport`
    structured result.  New consumers should program against this.
``repro.graph``
    Dynamic weighted directed graph and graph-update (delta) types.
``repro.peeling``
    Static peeling algorithms (Algorithm 1 of the paper) together with the
    DG / DW / FD density semantics and an exact max-flow reference solver.
``repro.core``
    The Spade framework itself: the public :class:`~repro.core.Spade` API,
    incremental single-edge reordering, batch reordering, edge grouping,
    edge deletion, dense-subgraph enumeration and time-window maintenance.
``repro.engine``
    The engine layer: the :class:`~repro.engine.DetectionEngine` protocol
    extracted from ``Spade``, the hash-partitioned
    :class:`~repro.engine.ShardedSpade`, and the ``create_engine`` factory.
``repro.streaming``
    Timestamped update streams, the simulated clock, batching policies and
    the latency / prevention-ratio metrics of Section 4.3.
``repro.workloads``
    Synthetic dataset generators standing in for the Grab and public
    datasets of Table 3, plus fraud-pattern injection for ground truth.
``repro.pipeline``
    A faithful simulation of Grab's fraud detection pipeline (Figure 1).
``repro.analysis``
    Effectiveness analysis: degree distributions, community precision and
    recall, case-study timelines and fraud-instance enumeration.
``repro.bench``
    The experiment harness that regenerates every table and figure of the
    paper's evaluation section.

Quickstart::

    from repro import Spade, fraudar_semantics
    from repro.workloads import generate_dataset

    dataset = generate_dataset("grab1-small", seed=7)
    semantics = fraudar_semantics()
    spade = Spade(semantics)
    spade.load_graph(dataset.initial_graph(semantics))
    community = spade.detect()
    for edge in dataset.increments:
        community = spade.insert_edge(edge.src, edge.dst, edge.weight)
"""

from repro._version import __version__
from repro.core.spade import Spade
from repro.engine import DetectionEngine, ShardedSpade, create_engine
from repro.api import (
    Delete,
    DetectionReport,
    EngineConfig,
    Flush,
    Insert,
    InsertBatch,
    SpadeClient,
    validate_config,
)
from repro.errors import ConfigError
from repro.graph.array_graph import ArrayGraph
from repro.graph.backend import create_graph, get_default_backend, set_default_backend
from repro.graph.graph import DynamicGraph
from repro.graph.interning import VertexInterner
from repro.graph.delta import EdgeUpdate, GraphDelta
from repro.peeling.result import PeelingResult
from repro.peeling.semantics import (
    PeelingSemantics,
    dg_semantics,
    dw_semantics,
    fraudar_semantics,
)
from repro.peeling.static import peel

__all__ = [
    "__version__",
    "Spade",
    "DetectionEngine",
    "ShardedSpade",
    "create_engine",
    "EngineConfig",
    "SpadeClient",
    "DetectionReport",
    "Insert",
    "InsertBatch",
    "Delete",
    "Flush",
    "ConfigError",
    "validate_config",
    "ArrayGraph",
    "DynamicGraph",
    "VertexInterner",
    "create_graph",
    "get_default_backend",
    "set_default_backend",
    "EdgeUpdate",
    "GraphDelta",
    "PeelingResult",
    "PeelingSemantics",
    "dg_semantics",
    "dw_semantics",
    "fraudar_semantics",
    "peel",
]
