"""Detectors: periodic static baseline vs real-time Spade (stage 3 of Fig. 1).

Both detectors expose the same two-method interface so the pipeline can use
them interchangeably:

* ``observe(record)`` — one transaction arrives;
* ``current_fraudsters()`` — the community the detector currently believes
  is fraudulent.

:class:`PeriodicStaticDetector` mirrors the pre-Spade deployment: it queues
transactions and re-runs the chosen static peeling algorithm from scratch
whenever a detection period has elapsed (the paper's pipeline ran roughly
every 30–60 s because that is how long one pass took).

:class:`RealTimeSpadeDetector` feeds every transaction straight into Spade's
incremental maintenance — optionally with edge grouping — so the community
is up to date after every arrival.
"""

from __future__ import annotations

import time
from typing import FrozenSet, List, Optional

from repro.core.spade import Spade
from repro.graph.graph import DynamicGraph, Vertex
from repro.peeling.semantics import PeelingSemantics
from repro.peeling.static import peel
from repro.pipeline.builder import GraphBuilder
from repro.pipeline.transaction_log import TransactionRecord

__all__ = ["PeriodicStaticDetector", "RealTimeSpadeDetector"]


class PeriodicStaticDetector:
    """Re-run a static peeling algorithm every ``period`` stream seconds."""

    def __init__(
        self,
        semantics: PeelingSemantics,
        initial_graph: DynamicGraph,
        period: float = 60.0,
    ) -> None:
        self._builder = GraphBuilder(semantics)
        self._graph = initial_graph
        self._period = period
        self._pending: List[TransactionRecord] = []
        self._next_run: Optional[float] = None
        self._community: FrozenSet[Vertex] = frozenset()
        self._last_result = peel(initial_graph, semantics_name=semantics.name)
        self._community = self._last_result.community
        #: Wall-clock seconds spent in detection runs (for reporting).
        self.compute_seconds = 0.0
        #: Number of from-scratch runs performed.
        self.runs = 1

    @property
    def name(self) -> str:
        """Detector name for reports."""
        return f"{self._last_result.semantics_name}-periodic-{self._period:g}s"

    def observe(self, record: TransactionRecord) -> FrozenSet[Vertex]:
        """Queue one transaction; re-detect when the period has elapsed."""
        if self._next_run is None:
            self._next_run = record.timestamp + self._period
        self._pending.append(record)
        if record.timestamp >= self._next_run:
            self._run_detection()
            self._next_run += self._period
        return self._community

    def _run_detection(self) -> None:
        began = time.perf_counter()
        self._builder.extend(self._graph, self._pending)
        self._pending.clear()
        self._last_result = peel(self._graph, semantics_name=self._last_result.semantics_name)
        self._community = self._last_result.community
        self.compute_seconds += time.perf_counter() - began
        self.runs += 1

    def current_fraudsters(self) -> FrozenSet[Vertex]:
        """Return the most recently detected community."""
        return self._community


class RealTimeSpadeDetector:
    """Detect after every transaction via Spade's incremental maintenance.

    ``backend`` selects the graph backend of the underlying engine
    (``"dict"`` / ``"array"``; ``None`` = process default) — the adopted
    initial graph is converted if it uses a different backend.
    """

    def __init__(
        self,
        semantics: PeelingSemantics,
        initial_graph: DynamicGraph,
        edge_grouping: bool = False,
        backend: Optional[str] = None,
    ) -> None:
        self._spade = Spade(semantics, edge_grouping=edge_grouping, backend=backend)
        self._spade.load_graph(initial_graph)
        self._grouping = edge_grouping
        self._community: FrozenSet[Vertex] = self._spade.detect().vertices
        self.compute_seconds = 0.0
        self.updates = 0

    @property
    def name(self) -> str:
        """Detector name for reports (``IncDW`` or ``IncDWG`` with grouping)."""
        return f"Inc{self._spade.semantics.name}" + ("G" if self._grouping else "")

    @property
    def spade(self) -> Spade:
        """The underlying Spade engine (for inspection)."""
        return self._spade

    def observe(self, record: TransactionRecord) -> FrozenSet[Vertex]:
        """Insert one transaction and return the refreshed community."""
        began = time.perf_counter()
        community = self._spade.insert_edge(
            record.customer,
            record.merchant,
            record.amount,
            timestamp=record.timestamp,
        )
        self.compute_seconds += time.perf_counter() - began
        self.updates += 1
        self._community = community.vertices
        return self._community

    def current_fraudsters(self) -> FrozenSet[Vertex]:
        """Return the current community."""
        return self._community
