"""Detectors: periodic static baseline vs real-time Spade (stage 3 of Fig. 1).

Both detectors expose the same two-method interface so the pipeline can use
them interchangeably:

* ``observe(record)`` — one transaction arrives;
* ``current_fraudsters()`` — the community the detector currently believes
  is fraudulent.

:class:`PeriodicStaticDetector` mirrors the pre-Spade deployment: it queues
transactions and re-runs the chosen static peeling algorithm from scratch
whenever a detection period has elapsed (the paper's pipeline ran roughly
every 30–60 s because that is how long one pass took).

:class:`RealTimeSpadeDetector` feeds every transaction straight into Spade's
incremental maintenance — optionally with edge grouping — so the community
is up to date after every arrival.
"""

from __future__ import annotations

import time
from typing import FrozenSet, List, Optional

from repro.api.client import SpadeClient
from repro.api.config import EngineConfig
from repro.api.events import Insert
from repro.engine import DetectionEngine
from repro.graph.graph import DynamicGraph, Vertex
from repro.peeling.semantics import PeelingSemantics
from repro.peeling.static import peel
from repro.pipeline.builder import GraphBuilder
from repro.pipeline.transaction_log import TransactionRecord

__all__ = ["PeriodicStaticDetector", "RealTimeSpadeDetector"]


def _fold_engine_config(
    config: Optional[EngineConfig],
    *,
    edge_grouping: bool,
    backend: Optional[str],
    shards: int,
) -> EngineConfig:
    """Fold the legacy keyword knobs into an :class:`EngineConfig`.

    Without ``config`` the knobs become one; with ``config`` any
    *non-default* legacy knob is rejected so a migration typo cannot
    silently configure a different engine than the caller asked for.
    """
    if config is None:
        return EngineConfig(edge_grouping=edge_grouping, backend=backend, shards=shards)
    conflicting = [
        name
        for name, value, default in (
            ("edge_grouping", edge_grouping, False),
            ("backend", backend, None),
            ("shards", shards, 1),
        )
        if value != default
    ]
    if conflicting:
        raise TypeError(
            "pass engine knobs either via config or via the legacy keywords, "
            f"not both (got config plus {', '.join(conflicting)})"
        )
    return config


class PeriodicStaticDetector:
    """Re-run a static peeling algorithm every ``period`` stream seconds."""

    def __init__(
        self,
        semantics: PeelingSemantics,
        initial_graph: DynamicGraph,
        period: float = 60.0,
    ) -> None:
        self._builder = GraphBuilder(semantics)
        self._graph = initial_graph
        self._period = period
        self._pending: List[TransactionRecord] = []
        self._next_run: Optional[float] = None
        self._community: FrozenSet[Vertex] = frozenset()
        self._last_result = peel(initial_graph, semantics_name=semantics.name)
        self._community = self._last_result.community
        #: Wall-clock seconds spent in detection runs (for reporting).
        self.compute_seconds = 0.0
        #: Number of from-scratch runs performed.
        self.runs = 1

    @property
    def name(self) -> str:
        """Detector name for reports."""
        return f"{self._last_result.semantics_name}-periodic-{self._period:g}s"

    def observe(self, record: TransactionRecord) -> FrozenSet[Vertex]:
        """Queue one transaction; re-detect when the period has elapsed."""
        if self._next_run is None:
            self._next_run = record.timestamp + self._period
        self._pending.append(record)
        if record.timestamp >= self._next_run:
            self._run_detection()
            self._next_run += self._period
        return self._community

    def _run_detection(self) -> None:
        began = time.perf_counter()
        self._builder.extend(self._graph, self._pending)
        self._pending.clear()
        self._last_result = peel(self._graph, semantics_name=self._last_result.semantics_name)
        self._community = self._last_result.community
        self.compute_seconds += time.perf_counter() - began
        self.runs += 1

    def current_fraudsters(self) -> FrozenSet[Vertex]:
        """Return the most recently detected community."""
        return self._community


class RealTimeSpadeDetector:
    """Detect after every transaction via Spade's incremental maintenance.

    The detector programs against the v1 public API: an
    :class:`~repro.api.EngineConfig` describes the engine (backend,
    shards, edge grouping) and a :class:`~repro.api.SpadeClient` hosts it.
    Pass ``config`` directly, or use the legacy keyword knobs
    (``edge_grouping`` / ``backend`` / ``shards``), which are folded into
    a config.

    With ``shards`` > 1 detection scales across hash-partitioned shard
    engines behind a coordinator; the per-transaction community is then
    the shard-local real-time view, reconciled with the exact merged
    detection every ``merge_every`` transactions — a fraud ring whose
    members hash onto different shards only surfaces in the merged pass.
    """

    def __init__(
        self,
        semantics: PeelingSemantics,
        initial_graph: DynamicGraph,
        edge_grouping: bool = False,
        backend: Optional[str] = None,
        shards: int = 1,
        merge_every: int = 200,
        config: Optional[EngineConfig] = None,
    ) -> None:
        config = _fold_engine_config(
            config, edge_grouping=edge_grouping, backend=backend, shards=shards
        )
        self._client = SpadeClient(config, semantics=semantics)
        self._client.load(initial_graph)
        self._grouping = config.edge_grouping
        self._shards = config.shards
        self._merge_every = merge_every if config.shards > 1 else 0
        self._community: FrozenSet[Vertex] = self._client.detect().vertices
        self.compute_seconds = 0.0
        self.updates = 0
        #: Number of exact merged detections performed (sharded engines).
        self.merged_detections = 0

    @property
    def name(self) -> str:
        """Detector name for reports (``IncDW``, ``IncDWG`` with grouping, ``IncDW-4s`` sharded)."""
        name = f"Inc{self._client.semantics.name}" + ("G" if self._grouping else "")
        if self._shards > 1:
            name += f"-{self._shards}s"
        return name

    @property
    def client(self) -> SpadeClient:
        """The public-API client the detector feeds."""
        return self._client

    @property
    def spade(self) -> DetectionEngine:
        """The underlying detection engine (for inspection)."""
        return self._client.engine

    def observe(self, record: TransactionRecord) -> FrozenSet[Vertex]:
        """Insert one transaction and return the refreshed community.

        For sharded engines the fast per-update view is shard-local;
        every ``merge_every`` updates the exact merged detection (a
        coordinator pass) replaces it so cross-shard rings surface.
        """
        began = time.perf_counter()
        report = self._client.apply(
            [
                Insert(
                    record.customer,
                    record.merchant,
                    record.amount,
                    timestamp=record.timestamp,
                )
            ]
        )
        self.updates += 1
        if self._merge_every and self.updates % self._merge_every == 0:
            report = self._client.detect()
            self.merged_detections += 1
        self.compute_seconds += time.perf_counter() - began
        self._community = report.vertices
        return self._community

    def current_fraudsters(self) -> FrozenSet[Vertex]:
        """Return the current community."""
        return self._community
