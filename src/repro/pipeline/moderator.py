"""Moderator actions (stage 4 of Figure 1): ban, analyse, supervise.

Once fraudsters are identified, Grab's moderators ban or freeze the
accounts to avoid further economic loss.  The :class:`Moderator` keeps the
ban list, blocks transactions from banned accounts and tallies the loss it
prevented — the quantity behind the paper's "up to 88.34 % potential fraud
transactions can be prevented" headline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import AbstractSet, Dict, List, Set

from repro.graph.graph import Vertex
from repro.pipeline.transaction_log import TransactionRecord

__all__ = ["ModerationAction", "Moderator"]


@dataclass(frozen=True)
class ModerationAction:
    """One ban decision taken by the moderator."""

    timestamp: float
    banned: frozenset
    reason: str


class Moderator:
    """Keeps the ban list and accounts for prevented transactions."""

    def __init__(self, auto_ban: bool = True) -> None:
        self.auto_ban = auto_ban
        self._banned: Set[Vertex] = set()
        self._actions: List[ModerationAction] = []
        self._prevented: List[TransactionRecord] = []
        self._prevented_amount: float = 0.0

    # ------------------------------------------------------------------ #
    # Ban management
    # ------------------------------------------------------------------ #
    @property
    def banned_accounts(self) -> AbstractSet[Vertex]:
        """The current ban list."""
        return self._banned

    @property
    def actions(self) -> List[ModerationAction]:
        """Every ban decision taken so far."""
        return list(self._actions)

    def review(self, fraudsters: AbstractSet[Vertex], timestamp: float, reason: str = "dense community") -> int:
        """Review a detected community and ban its unbanned members.

        Returns the number of newly banned accounts (0 when ``auto_ban`` is
        off — the moderator then only records the detection for analysis).
        """
        new = set(fraudsters) - self._banned
        if not new or not self.auto_ban:
            return 0
        self._banned.update(new)
        self._actions.append(
            ModerationAction(timestamp=timestamp, banned=frozenset(new), reason=reason)
        )
        return len(new)

    # ------------------------------------------------------------------ #
    # Transaction screening
    # ------------------------------------------------------------------ #
    def screen(self, record: TransactionRecord) -> bool:
        """Return True when the transaction is allowed, False when blocked.

        A transaction is blocked when either account is banned; blocked
        transactions are tallied as prevented loss.
        """
        if record.customer in self._banned or record.merchant in self._banned:
            self._prevented.append(record)
            self._prevented_amount += record.amount
            return False
        return True

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def prevented_transactions(self) -> int:
        """Return the number of blocked transactions."""
        return len(self._prevented)

    def prevented_amount(self) -> float:
        """Return the total blocked transaction amount."""
        return self._prevented_amount

    def prevention_ratio(self, labelled_total: int) -> float:
        """Return blocked / total for a known number of fraudulent transactions."""
        if labelled_total <= 0:
            return 0.0
        return min(1.0, len(self._prevented) / labelled_total)

    def summary(self) -> Dict[str, object]:
        """Return a report-friendly summary."""
        return {
            "banned accounts": len(self._banned),
            "ban actions": len(self._actions),
            "prevented transactions": len(self._prevented),
            "prevented amount": round(self._prevented_amount, 2),
        }
