"""Graph construction from transaction logs (stage 1 of Figure 1)."""

from __future__ import annotations

from typing import Iterable, Optional

from repro.api.config import EngineConfig
from repro.graph.graph import DynamicGraph
from repro.peeling.semantics import PeelingSemantics, dw_semantics
from repro.pipeline.transaction_log import TransactionLog, TransactionRecord

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Builds and incrementally extends the weighted transaction graph.

    The builder owns the mapping from business objects (customers,
    merchants, amounts) to graph objects (vertices, weighted edges) under a
    chosen suspiciousness semantics, so the rest of the pipeline never has
    to think about weighting rules.
    """

    def __init__(self, semantics: Optional[PeelingSemantics] = None) -> None:
        self._semantics = semantics or dw_semantics()

    @classmethod
    def from_config(cls, config: EngineConfig) -> "GraphBuilder":
        """Build a builder whose semantics comes from an engine config."""
        return cls(config.semantics_instance())

    @property
    def semantics(self) -> PeelingSemantics:
        """The semantics used to weight vertices and edges."""
        return self._semantics

    def build(self, log: TransactionLog) -> DynamicGraph:
        """Materialise the weighted graph for a whole transaction log."""
        edges = [(r.customer, r.merchant, r.amount) for r in log]
        return self._semantics.materialize(edges)

    def extend(self, graph: DynamicGraph, records: Iterable[TransactionRecord]) -> int:
        """Apply new transactions to an existing graph; returns the count.

        This is the plain structural update ``G ⊕ ΔG`` used by the periodic
        static detector; the real-time detector goes through Spade instead
        so that the peeling sequence is maintained as well.
        """
        count = 0
        for record in records:
            for vertex in (record.customer, record.merchant):
                if not graph.has_vertex(vertex):
                    graph.add_vertex(vertex, self._semantics.vertex_weight(vertex, graph))
            weight = self._semantics.edge_weight(record.customer, record.merchant, record.amount, graph)
            graph.add_edge(record.customer, record.merchant, weight)
            count += 1
        return count
