"""Transaction logs: the raw input of the fraud-detection pipeline.

Stage 1 of Figure 1 consumes transaction logs and forms the transaction
graph.  A :class:`TransactionRecord` carries the fields the pipeline needs
(payer, payee, amount, timestamp) plus optional metadata; a
:class:`TransactionLog` is an ordered collection with conversion helpers to
and from the streaming layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

from repro.errors import StreamError
from repro.streaming.stream import TimestampedEdge, UpdateStream

__all__ = ["TransactionRecord", "TransactionLog"]


@dataclass(frozen=True)
class TransactionRecord:
    """One row of the transaction log."""

    transaction_id: str
    customer: str
    merchant: str
    amount: float
    timestamp: float
    #: Optional free-form metadata (payment method, promo code, ...).
    metadata: Dict[str, str] = field(default_factory=dict)
    #: Ground-truth fraud label when the record comes from an injected burst.
    fraud_label: Optional[str] = None

    def as_edge(self) -> TimestampedEdge:
        """Convert the record into a streamed edge (customer → merchant)."""
        return TimestampedEdge(
            src=self.customer,
            dst=self.merchant,
            timestamp=self.timestamp,
            weight=self.amount,
            fraud_label=self.fraud_label,
        )


class TransactionLog:
    """An append-only, timestamp-ordered collection of transaction records."""

    def __init__(self, records: Optional[Iterable[TransactionRecord]] = None) -> None:
        self._records: List[TransactionRecord] = sorted(records or [], key=lambda r: r.timestamp)

    def append(self, record: TransactionRecord) -> None:
        """Append a record; timestamps must not go backwards."""
        if self._records and record.timestamp < self._records[-1].timestamp:
            raise StreamError(
                f"transaction {record.transaction_id} arrives out of order "
                f"({record.timestamp} < {self._records[-1].timestamp})"
            )
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TransactionRecord]:
        return iter(self._records)

    def window(self, start: float, end: float) -> "TransactionLog":
        """Return the records with ``start <= timestamp < end``."""
        return TransactionLog(r for r in self._records if start <= r.timestamp < end)

    def as_stream(self) -> UpdateStream:
        """Convert the log into an update stream."""
        return UpdateStream([r.as_edge() for r in self._records])

    @classmethod
    def from_stream(cls, stream: UpdateStream, id_prefix: str = "tx") -> "TransactionLog":
        """Build a log from a stream (inverse of :meth:`as_stream`)."""
        records = [
            TransactionRecord(
                transaction_id=f"{id_prefix}-{index}",
                customer=str(edge.src),
                merchant=str(edge.dst),
                amount=edge.weight,
                timestamp=edge.timestamp,
                fraud_label=edge.fraud_label,
            )
            for index, edge in enumerate(stream)
        ]
        return cls(records)
