"""The end-to-end pipeline: logs → graph → detection → moderation (Figure 1).

:class:`FraudDetectionPipeline` wires the pieces of this subpackage
together and runs a transaction log through them:

1. the initial log builds the transaction graph (``GraphBuilder``);
2. subsequent transactions are screened by the :class:`Moderator` (banned
   accounts are blocked outright);
3. allowed transactions reach the detector — either the periodic static
   baseline or the real-time Spade detector;
4. whenever the detector's community changes, the moderator reviews it and
   bans the new members.

The resulting :class:`PipelineReport` is what the ``grab_pipeline`` example
prints and what the integration tests assert on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.api.config import EngineConfig
from repro.graph.graph import DynamicGraph
from repro.peeling.semantics import PeelingSemantics, dw_semantics
from repro.pipeline.builder import GraphBuilder
from repro.pipeline.detector import PeriodicStaticDetector, RealTimeSpadeDetector
from repro.pipeline.moderator import Moderator
from repro.pipeline.transaction_log import TransactionLog, TransactionRecord

__all__ = ["FraudDetectionPipeline", "PipelineReport"]


@dataclass
class PipelineReport:
    """Outcome of running a transaction log through the pipeline."""

    detector_name: str
    processed_transactions: int
    blocked_transactions: int
    blocked_amount: float
    banned_accounts: int
    detector_compute_seconds: float
    fraud_transactions_total: int = 0
    fraud_transactions_blocked: int = 0

    @property
    def fraud_prevention_ratio(self) -> float:
        """Share of labelled fraudulent transactions that were blocked."""
        if self.fraud_transactions_total == 0:
            return 0.0
        return self.fraud_transactions_blocked / self.fraud_transactions_total

    def as_row(self) -> Dict[str, object]:
        """Flatten for table rendering."""
        return {
            "detector": self.detector_name,
            "processed": self.processed_transactions,
            "blocked": self.blocked_transactions,
            "blocked amount": round(self.blocked_amount, 2),
            "banned accounts": self.banned_accounts,
            "compute (s)": round(self.detector_compute_seconds, 4),
            "fraud prevention": round(self.fraud_prevention_ratio, 4),
        }


class FraudDetectionPipeline:
    """Grab's pipeline with a pluggable detector.

    The real-time detector is described by an
    :class:`~repro.api.EngineConfig`; pass one via ``config``, or use the
    legacy keyword knobs (``edge_grouping`` / ``backend`` / ``shards``),
    which are folded into a config.
    """

    def __init__(
        self,
        semantics: Optional[PeelingSemantics] = None,
        detector: str = "spade",
        static_period: float = 60.0,
        edge_grouping: bool = False,
        auto_ban: bool = True,
        backend: Optional[str] = None,
        shards: int = 1,
        config: Optional[EngineConfig] = None,
    ) -> None:
        from repro.pipeline.detector import _fold_engine_config

        if detector not in ("spade", "periodic"):
            raise ValueError(f"unknown detector {detector!r}; expected 'spade' or 'periodic'")
        config = _fold_engine_config(
            config, edge_grouping=edge_grouping, backend=backend, shards=shards
        )
        if config.shards > 1 and detector != "spade":
            raise ValueError("sharded detection requires the 'spade' detector")
        self._semantics = semantics or dw_semantics()
        self._detector_kind = detector
        self._static_period = static_period
        self._config = config
        self._builder = GraphBuilder(self._semantics)
        self.moderator = Moderator(auto_ban=auto_ban)
        self._detector = None

    # ------------------------------------------------------------------ #
    # Pipeline stages
    # ------------------------------------------------------------------ #
    def initialise(self, initial_log: TransactionLog) -> DynamicGraph:
        """Stage 1: build the initial transaction graph and prime the detector."""
        graph = self._builder.build(initial_log)
        if self._detector_kind == "periodic":
            self._detector = PeriodicStaticDetector(
                self._semantics, graph, period=self._static_period
            )
        else:
            self._detector = RealTimeSpadeDetector(
                self._semantics, graph, config=self._config
            )
        return graph

    def run(self, live_log: TransactionLog) -> PipelineReport:
        """Stages 2–4: stream the live log through screening, detection, action."""
        if self._detector is None:
            raise RuntimeError("initialise must be called before run")

        processed = 0
        fraud_total = 0
        fraud_blocked = 0
        for record in live_log:
            if record.fraud_label is not None:
                fraud_total += 1
            if not self.moderator.screen(record):
                if record.fraud_label is not None:
                    fraud_blocked += 1
                continue
            processed += 1
            community = self._detector.observe(record)
            if community:
                self.moderator.review(community, record.timestamp)

        compute = getattr(self._detector, "compute_seconds", 0.0)
        return PipelineReport(
            detector_name=self._detector.name,
            processed_transactions=processed,
            blocked_transactions=self.moderator.prevented_transactions(),
            blocked_amount=self.moderator.prevented_amount(),
            banned_accounts=len(self.moderator.banned_accounts),
            detector_compute_seconds=compute,
            fraud_transactions_total=fraud_total,
            fraud_transactions_blocked=fraud_blocked,
        )
