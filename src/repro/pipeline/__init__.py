"""Grab's fraud-detection data pipeline (Figure 1 of the paper).

The pipeline has four stages: 1) graph construction from transaction logs,
2) graph updates, 3) dense-subgraph detection and 4) moderator action.
This subpackage provides a faithful, runnable simulation of that pipeline
with two interchangeable detectors — the pre-Spade periodic static detector
and the real-time Spade detector — so the examples and the case-study
experiments can compare them end to end.
"""

from repro.pipeline.transaction_log import TransactionLog, TransactionRecord
from repro.pipeline.builder import GraphBuilder
from repro.pipeline.detector import PeriodicStaticDetector, RealTimeSpadeDetector
from repro.pipeline.moderator import Moderator, ModerationAction
from repro.pipeline.pipeline import FraudDetectionPipeline, PipelineReport

__all__ = [
    "TransactionLog",
    "TransactionRecord",
    "GraphBuilder",
    "PeriodicStaticDetector",
    "RealTimeSpadeDetector",
    "Moderator",
    "ModerationAction",
    "FraudDetectionPipeline",
    "PipelineReport",
]
