"""The engine layer: one protocol, two interchangeable implementations.

* :class:`~repro.engine.protocol.DetectionEngine` — the structural
  protocol (load / detect / insert / insert_batch / delete / flush /
  enumerate) extracted from the historical ``Spade`` surface;
* :class:`~repro.core.spade.Spade` — the paper's single engine (re-exported
  here as the single-shard implementation);
* :class:`~repro.engine.sharded.ShardedSpade` — hash-partitioned shard
  engines behind a coordinator queue, for multi-core scaling;
* :func:`create_engine` — the factory consumers (streaming replay, the
  Grab pipeline, the bench harness) construct engines through.
"""

from __future__ import annotations

from typing import Optional

from repro.config import validate_config
from repro.core.spade import Spade
from repro.engine.protocol import DetectionEngine
from repro.engine.router import ShardRouter
from repro.engine.sharded import ShardedSpade
from repro.peeling.semantics import PeelingSemantics

__all__ = [
    "DetectionEngine",
    "Spade",
    "ShardedSpade",
    "ShardRouter",
    "create_engine",
]


def create_engine(
    semantics: Optional[PeelingSemantics] = None,
    shards: int = 1,
    edge_grouping: bool = False,
    backend: Optional[str] = None,
    kernel: Optional[str] = None,
    **sharded_options,
) -> DetectionEngine:
    """Build a detection engine: single-shard ``Spade`` or ``ShardedSpade``.

    ``shards <= 1`` returns the plain single engine; anything larger
    returns a :class:`ShardedSpade` partitioned over that many shard
    engines.  ``kernel`` selects the hot-loop implementation
    (``"python"`` / ``"native"`` / ``"auto"``; ``None`` = process
    default).  ``sharded_options`` (``coordinator_interval``,
    ``executor``) are forwarded to :class:`ShardedSpade` and rejected for
    the single engine.

    Prefer constructing through :class:`repro.api.EngineConfig` /
    :class:`repro.api.SpadeClient`; this factory is the layer they build
    on.
    """
    validate_config(backend=backend, kernel=kernel)
    if shards <= 1:
        if sharded_options:
            unknown = ", ".join(sorted(sharded_options))
            raise TypeError(f"single-engine Spade accepts no sharded options ({unknown})")
        return Spade(semantics, edge_grouping=edge_grouping, backend=backend, kernel=kernel)
    return ShardedSpade(
        semantics,
        num_shards=shards,
        edge_grouping=edge_grouping,
        backend=backend,
        kernel=kernel,
        **sharded_options,
    )
