"""The shard-worker wire protocol and the resident worker apply loop.

One shard of a process-resident deployment (:mod:`repro.serve.workers`)
is a child **process** running :func:`shard_worker_main`: a single
:class:`~repro.core.spade.Spade` engine behind a duplex
``multiprocessing`` pipe, applying pre-weighted updates in arrival order.
The coordinator keeps the global mirror and evaluates all suspiciousness
semantics against it (exactly as the in-process
:class:`~repro.engine.sharded.ShardedSpade` coordinator does), so a
worker never sees a raw weight: its engine runs the identity
*pre-weighted* semantics and only needs the display name.

Boot is zero-copy on the read side: the coordinator freezes the shard's
subgraph into a :class:`~repro.graph.csr.CsrSnapshot` ``.npz`` and the
worker loads it with ``mmap_mode="r"`` (the PR 2 path), rebuilding its
mutable pools with the pool-faithful
:func:`~repro.serve.recovery.graph_from_snapshot` merge so the shard's
maintained answers match an in-process shard bit for bit.

Wire protocol (pickled tuples over the pipe, strictly request/response)::

    ("load",   {"snapshot": path, "semantics": name,
                "edge_grouping": bool, "backend": str,
                "kernel": str | None})
    ("single", ((src, dst, w, src_prior, dst_prior), timestamp))
    ("batch",  [(src, dst, w, src_prior, dst_prior), ...])
    ("delete", [(src, dst), ...])
    ("runs",   [(is_delete, rows), ...])      # a drained parked-queue slice
    ("flush",  None)
    ("detect", None)
    ("ping",   None)
    ("stop",   None)

Any request may carry an optional third element, a metadata dict —
today ``{"trace": trace_id}`` when the coordinator's request is being
traced (:mod:`repro.obs`).  Workers that receive a 2-tuple behave
exactly as before, so mixed coordinator/worker versions interoperate
across the extension.

Every state-touching request answers ``("ok", state)`` where ``state``
carries the shard's current community (the coordinator's shard-local
view), the maintenance-pass counters and the benign-buffer depth —
so the coordinator never needs a second round trip to read back what a
dispatch did.  State payloads also carry ``"elapsed"`` (the worker-side
apply wall time — worker clocks are not comparable to the
coordinator's, so the *duration* is the portable quantity), a
cumulative ``"profile"`` table (:mod:`repro.obs.profile` snapshot), and
echo the request's ``"trace"`` id when one was attached.  Failures
answer ``("error", message)``; the coordinator's policy for those (and
for a dead pipe) is respawn-from-mirror, because worker state is
derived state.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.reorder import ReorderStats
from repro.core.spade import Spade
from repro.core.state import Community
from repro.graph.delta import EdgeUpdate
from repro.peeling.semantics import PeelingSemantics, custom_semantics

__all__ = [
    "WorkerState",
    "decode_state",
    "encode_update",
    "decode_update",
    "preweighted_semantics",
    "shard_worker_main",
]

#: Row shape shipped for one pre-weighted insert update.
Row = Tuple[object, object, float, Optional[float], Optional[float]]


def preweighted_semantics(name: str) -> PeelingSemantics:
    """Shard-side identity semantics: weights arrive final from the mirror.

    The same construction as the in-process coordinator's shard semantics
    (:class:`~repro.engine.sharded.ShardedSpade`): edge weight = carried
    weight, vertex priors always explicit, original display name kept so
    results stay labelled.
    """
    return custom_semantics(name=name, edge_susp=lambda _src, _dst, raw, _graph: raw)


def encode_update(update: EdgeUpdate) -> Row:
    """Flatten a pre-weighted insert update into a picklable row."""
    return (update.src, update.dst, update.weight, update.src_weight, update.dst_weight)


def decode_update(row: Row) -> EdgeUpdate:
    """Rebuild the :class:`EdgeUpdate` an :func:`encode_update` row carries."""
    src, dst, weight, src_weight, dst_weight = row
    return EdgeUpdate(src, dst, weight, src_weight=src_weight, dst_weight=dst_weight)


class WorkerState:
    """The coordinator-side decode of one worker response payload."""

    __slots__ = ("community", "stats", "pending", "elapsed", "profile", "trace")

    def __init__(
        self,
        community: Community,
        stats: ReorderStats,
        pending: int,
        elapsed: float = 0.0,
        profile: Optional[Dict[str, Dict[str, float]]] = None,
        trace: Optional[str] = None,
    ) -> None:
        self.community = community
        self.stats = stats
        self.pending = pending
        self.elapsed = elapsed
        self.profile = profile or {}
        self.trace = trace


def _encode_stats(stats: ReorderStats) -> Tuple[int, int, int, int, int, int]:
    return (
        stats.queued_vertices,
        stats.moved_vertices,
        stats.scanned_positions,
        stats.edge_traversals,
        stats.islands,
        stats.repeeled_positions,
    )


def decode_state(payload: Dict[str, object]) -> WorkerState:
    """Decode an ``("ok", state)`` payload into a :class:`WorkerState`."""
    stats = ReorderStats()
    (
        stats.queued_vertices,
        stats.moved_vertices,
        stats.scanned_positions,
        stats.edge_traversals,
        stats.islands,
        stats.repeeled_positions,
    ) = payload["stats"]  # type: ignore[misc]
    community = Community(
        frozenset(payload["community"]),  # type: ignore[arg-type]
        payload["density"],  # type: ignore[arg-type]
        payload["peel_index"],  # type: ignore[arg-type]
    )
    return WorkerState(
        community,
        stats,
        int(payload["pending"]),  # type: ignore[arg-type]
        elapsed=float(payload.get("elapsed", 0.0)),  # type: ignore[arg-type]
        profile=payload.get("profile"),  # type: ignore[arg-type]
        trace=payload.get("trace"),  # type: ignore[arg-type]
    )


def _state_payload(
    spade: Spade,
    stats: ReorderStats,
    elapsed: float = 0.0,
    trace: Optional[str] = None,
) -> Dict[str, object]:
    from repro.obs import profile as _profile

    community = spade.detect()  # cached between mutations: no re-peel
    payload: Dict[str, object] = {
        "community": list(community.vertices),
        "density": community.density,
        "peel_index": community.peel_index,
        "stats": _encode_stats(stats),
        "pending": spade.pending_edges(),
        "elapsed": elapsed,
        "profile": _profile.snapshot(),
    }
    if trace is not None:
        payload["trace"] = trace
    return payload


def _load_engine(payload: Dict[str, object]) -> Spade:
    # Imported lazily: the serve-layer recovery module is only needed in
    # the child, and only for its pool-faithful snapshot->graph rebuild.
    from repro.graph.csr import CsrSnapshot
    from repro.serve.recovery import graph_from_snapshot

    snapshot = CsrSnapshot.load(str(payload["snapshot"]), mmap_mode="r")
    graph = graph_from_snapshot(snapshot, backend=str(payload["backend"]))
    kernel = payload.get("kernel")
    spade = Spade(
        preweighted_semantics(str(payload["semantics"])),
        edge_grouping=bool(payload["edge_grouping"]),
        kernel=str(kernel) if kernel is not None else None,
    )
    spade.load_graph(graph)
    return spade


def _apply(spade: Spade, kind: str, payload: object) -> ReorderStats:
    """Dispatch one mutating request; return the pass's merged counters."""
    if kind == "single":
        row, timestamp = payload  # type: ignore[misc]
        src, dst, weight, src_prior, dst_prior = row
        spade.insert_edge(
            src, dst, weight, timestamp=timestamp, src_prior=src_prior, dst_prior=dst_prior
        )
        return spade.last_stats
    if kind == "batch":
        spade.insert_batch_edges([decode_update(row) for row in payload])  # type: ignore[union-attr]
        return spade.last_stats
    if kind == "delete":
        spade.delete_edges([(src, dst) for src, dst in payload])  # type: ignore[union-attr]
        return spade.last_stats
    if kind == "runs":
        merged = ReorderStats()
        for is_delete, rows in payload:  # type: ignore[union-attr]
            if is_delete:
                spade.delete_edges([(src, dst) for src, dst in rows])
            else:
                spade.insert_batch_edges([decode_update(row) for row in rows])
            merged.merge(spade.last_stats)
        return merged
    if kind == "flush":
        spade.flush_pending()
        return spade.last_stats
    if kind == "detect":
        return ReorderStats()
    raise ValueError(f"unknown worker request kind {kind!r}")


def shard_worker_main(conn, index: int) -> None:
    """The resident apply loop of one shard worker process.

    Runs until a ``("stop", ...)`` request or the pipe closes (the
    coordinator died — exit quietly rather than orphan).  Every request
    is answered exactly once, so the coordinator can run a strict
    send-then-recv discipline per worker while still overlapping work
    *across* workers.
    """
    spade: Optional[Spade] = None
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        kind, payload, *rest = message
        meta: Optional[Dict[str, object]] = rest[0] if rest else None
        trace_id = meta.get("trace") if isinstance(meta, dict) else None  # type: ignore[union-attr]
        if kind == "stop":
            try:
                conn.send(("ok", None))
            except (BrokenPipeError, OSError):
                pass
            break
        try:
            if kind == "ping":
                response: object = {"index": index, "loaded": spade is not None}
            elif kind == "load":
                began = time.perf_counter()
                spade = _load_engine(payload)  # type: ignore[arg-type]
                response = _state_payload(
                    spade,
                    ReorderStats(),
                    elapsed=time.perf_counter() - began,
                    trace=trace_id,  # type: ignore[arg-type]
                )
            else:
                if spade is None:
                    raise RuntimeError("worker received updates before a load")
                began = time.perf_counter()
                stats = _apply(spade, kind, payload)
                response = _state_payload(
                    spade,
                    stats,
                    elapsed=time.perf_counter() - began,
                    trace=trace_id,  # type: ignore[arg-type]
                )
            conn.send(("ok", response))
        except (BrokenPipeError, OSError):
            break
        except BaseException as exc:  # noqa: BLE001 - forwarded to coordinator
            try:
                conn.send(("error", f"{type(exc).__name__}: {exc}"))
            except (BrokenPipeError, OSError):
                break
    conn.close()
