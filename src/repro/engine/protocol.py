"""The ``DetectionEngine`` protocol: the surface consumers program against.

Historically every consumer of the framework — the streaming replay
driver, the Grab pipeline, the experiment harness — imported the concrete
:class:`~repro.core.spade.Spade` class.  This module extracts the surface
those consumers actually use into a :class:`typing.Protocol`, so that the
single-engine :class:`~repro.core.spade.Spade` and the hash-partitioned
:class:`~repro.engine.sharded.ShardedSpade` are interchangeable behind one
type:

* **load** — :meth:`DetectionEngine.load_graph` /
  :meth:`DetectionEngine.load_edges`;
* **detect** — :meth:`DetectionEngine.detect` (plus the richer
  :meth:`DetectionEngine.result` export);
* **insert** — :meth:`DetectionEngine.insert_edge`;
* **insert_batch** — :meth:`DetectionEngine.insert_batch_edges`;
* **delete** — :meth:`DetectionEngine.delete_edges`;
* **flush** — :meth:`DetectionEngine.flush_pending` /
  :meth:`DetectionEngine.pending_edges`;
* **enumerate** — :meth:`DetectionEngine.enumerate_frauds`.

The protocol is ``runtime_checkable`` so tests can assert that both
implementations structurally satisfy it; consumers should accept
``DetectionEngine`` in type hints and construct engines through
:func:`repro.engine.create_engine` rather than naming a concrete class.
"""

from __future__ import annotations

from typing import (
    Iterable,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.core.batch import BatchInput
from repro.core.enumeration import CommunityInstance
from repro.core.reorder import ReorderStats
from repro.core.state import Community
from repro.graph.graph import Vertex
from repro.peeling.result import PeelingResult
from repro.peeling.semantics import PeelingSemantics

__all__ = ["DetectionEngine"]


@runtime_checkable
class DetectionEngine(Protocol):
    """Everything a consumer may ask of a fraud-detection engine.

    Implementations: :class:`~repro.core.spade.Spade` (single engine, the
    paper's Listing 1/2 API) and
    :class:`~repro.engine.sharded.ShardedSpade` (hash-partitioned shards
    behind a coordinator).
    """

    #: Cost accounting of the most recent maintenance pass.
    last_stats: ReorderStats

    # --- configuration ------------------------------------------------ #
    @property
    def semantics(self) -> PeelingSemantics: ...
    @property
    def backend(self) -> str: ...

    # --- load --------------------------------------------------------- #
    def load_graph(self, graph) -> PeelingResult: ...
    def load_edges(
        self,
        edges: Iterable[tuple],
        vertex_priors: Optional[Mapping[Vertex, float]] = None,
    ) -> PeelingResult: ...

    # --- detect ------------------------------------------------------- #
    @property
    def graph(self): ...
    def detect(self) -> Community: ...
    def result(self) -> PeelingResult: ...
    def enumerate_frauds(
        self,
        max_instances: int = 10,
        min_density: float = 0.0,
        min_size: int = 2,
    ) -> Sequence[CommunityInstance]: ...

    # --- updates ------------------------------------------------------ #
    def insert_edge(
        self,
        src: Vertex,
        dst: Vertex,
        weight: float = 1.0,
        timestamp: Optional[float] = None,
        src_prior: Optional[float] = None,
        dst_prior: Optional[float] = None,
    ) -> Community: ...
    def insert_batch_edges(self, batch: BatchInput) -> Community: ...
    def delete_edge(self, src: Vertex, dst: Vertex) -> Community: ...
    def delete_edges(self, edges: Iterable[Tuple[Vertex, Vertex]]) -> Community: ...

    # --- flush -------------------------------------------------------- #
    def flush_pending(self) -> Community: ...
    def pending_edges(self) -> int: ...
    def is_benign(self, src: Vertex, dst: Vertex, weight: float = 1.0) -> bool: ...
