"""Hash partitioning of interned vertex ids across shard engines.

The :class:`~repro.graph.interning.VertexInterner` (PR 1) gives every
vertex a dense ``int32`` id in first-seen order; the router maps those ids
onto ``num_shards`` buckets with a deterministic multiplicative hash.  The
partition therefore depends only on the order in which vertices enter the
stream — never on Python's per-process string hashing — so a sharded run
is reproducible across processes and machines (which the differential
suite and the CI smoke job rely on).

Routing rules
-------------
* a vertex lives on ``shard_of_id(id)`` (its *home shard*);
* an edge ``(src, dst)`` is owned by the home shard of ``src``;
* an edge whose endpoints live on different shards is *cross-shard*: the
  coordinator parks it in a queue and applies it to the owning shard in a
  periodic batch pass, creating a replica of the foreign endpoint there.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.graph.graph import Vertex
from repro.graph.interning import VertexInterner

__all__ = ["ShardRouter"]

#: Knuth's multiplicative constant — decorrelates the shard index from the
#: low bits of the dense id, so vertex cohorts that arrive together (e.g.
#: a fraud burst's members, interned consecutively) still spread out.
_MIX = 2654435761
_MASK = 0xFFFFFFFF


class ShardRouter:
    """Deterministic ``dense id -> shard`` partition map.

    The router borrows (not owns) the global interner — the coordinator's
    mirror graph interns every label exactly once, in stream order, and
    the router derives the shard from the resulting id.
    """

    __slots__ = ("_interner", "num_shards")

    def __init__(self, interner: VertexInterner, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self._interner = interner
        self.num_shards = num_shards

    # ------------------------------------------------------------------ #
    # Partitioning
    # ------------------------------------------------------------------ #
    def shard_of_id(self, vid: int) -> int:
        """Return the home shard of the vertex with dense id ``vid``."""
        return ((vid * _MIX) & _MASK) % self.num_shards

    def shard_of(self, label: Vertex) -> int:
        """Return the home shard of ``label`` (must already be interned)."""
        return self.shard_of_id(self._interner.id_of(label))

    def route_edge(self, src: Vertex, dst: Vertex) -> Tuple[int, bool]:
        """Return ``(owning_shard, is_cross_shard)`` for edge ``(src, dst)``.

        The owning shard is always the home shard of ``src``, so every
        update to the same directed edge — inserts accumulating weight,
        later deletes — lands on the same engine in stream order.
        """
        home = self.shard_of(src)
        return home, self.shard_of(dst) != home

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def partition_counts(self) -> List[int]:
        """Return how many interned vertices each shard currently homes."""
        counts = [0] * self.num_shards
        for vid in range(len(self._interner)):
            counts[self.shard_of_id(vid)] += 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ShardRouter(num_shards={self.num_shards}, |V|={len(self._interner)})"
