"""Process-parallel per-shard peeling over mmap-shared CSR snapshots.

The optional ``multiprocessing`` executor of
:class:`~repro.engine.sharded.ShardedSpade`: each shard's graph is frozen
into an immutable :class:`~repro.graph.csr.CsrSnapshot` (PR 2), persisted
as an *uncompressed* ``.npz`` and loaded in the worker with
``mmap_mode="r"`` — the numeric arrays are memory-mapped straight out of
the archive, so the per-worker load is zero-copy and the page cache is
shared across workers.  The workers then run the vectorised
:func:`~repro.peeling.static.peel_csr`, which is bit-identical to the
shards' incrementally maintained answers.

Two costs are amortised across calls (they dominated repeated
``shard_communities(parallel=True)`` polling):

* **The worker pool is persistent.**  One module-level
  ``ProcessPoolExecutor`` (spawn context — safe next to asyncio threads)
  is created on first use, grown if a later call asks for more workers,
  and shut down at interpreter exit via ``atexit``.
* **Unchanged snapshots are not re-saved.**  The array backend's
  ``freeze()`` is version-guarded: freezing an unmutated graph returns
  the *identical* snapshot object, which this module uses as the change
  detector — a shard whose graph version has not moved since the last
  call reuses its staged ``.npz`` byte for byte.

Only the built-in, name-addressable semantics matter here: snapshots carry
final weights, so workers never evaluate ``vsusp`` / ``esusp`` and only
need the display name for labelling the result.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import os
import shutil
import tempfile
import weakref
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Tuple

from repro.graph.csr import CsrSnapshot, freeze_graph
from repro.peeling.result import PeelingResult
from repro.peeling.static import peel_csr

__all__ = ["parallel_shard_results", "peel_snapshot_file", "shutdown_pool"]

_POOL: Optional[ProcessPoolExecutor] = None
_POOL_WORKERS = 0
_STAGING: Optional[str] = None
#: ``id(graph)`` → ``(weakref(graph) | None, snapshot, staged path)``.
#: The snapshot's *identity* is the freshness test (see the module
#: docstring): the cache holds a strong reference to the staged snapshot,
#: so a different graph — even one reusing the id — can never freeze to
#: the same object.  The weakref, where the backend supports one, is just
#: eager cleanup: its callback evicts the entry and unlinks the file.
_SNAPSHOT_CACHE: Dict[int, Tuple[Optional[weakref.ref], CsrSnapshot, str]] = {}
_SAVE_COUNTER = itertools.count()


def peel_snapshot_file(path: str, semantics_name: str) -> PeelingResult:
    """Worker entry point: mmap-load a snapshot and peel it."""
    snapshot = CsrSnapshot.load(path, mmap_mode="r")
    return peel_csr(snapshot, semantics_name)


def _pool(workers: int) -> ProcessPoolExecutor:
    """The persistent worker pool, grown to at least ``workers`` slots."""
    global _POOL, _POOL_WORKERS
    if _POOL is None or _POOL_WORKERS < workers:
        if _POOL is not None:
            _POOL.shutdown(wait=False, cancel_futures=True)
        _POOL = ProcessPoolExecutor(
            max_workers=workers, mp_context=multiprocessing.get_context("spawn")
        )
        _POOL_WORKERS = workers
    return _POOL


def _reset_pool() -> None:
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        _POOL.shutdown(wait=False, cancel_futures=True)
    _POOL = None
    _POOL_WORKERS = 0


def shutdown_pool() -> None:
    """Tear down the persistent pool and the staged snapshot files."""
    global _STAGING
    _reset_pool()
    if _STAGING is not None:
        shutil.rmtree(_STAGING, ignore_errors=True)
        _STAGING = None
    _SNAPSHOT_CACHE.clear()


atexit.register(shutdown_pool)


def _evict(key: int, path: str) -> None:
    _SNAPSHOT_CACHE.pop(key, None)
    try:
        os.unlink(path)
    except OSError:
        pass


def _staged_path(graph, snapshot: CsrSnapshot) -> str:
    """Return the ``.npz`` for ``snapshot``, re-saving only on change."""
    global _STAGING
    if _STAGING is None:
        _STAGING = tempfile.mkdtemp(prefix="repro-shards-")
    key = id(graph)
    entry = _SNAPSHOT_CACHE.get(key)
    if entry is not None:
        ref, cached, path = entry
        if (
            (ref is None or ref() is graph)
            and cached is snapshot
            and os.path.exists(path)
        ):
            return path
        _evict(key, path)
    path = os.path.join(_STAGING, f"shard-{key:x}-{next(_SAVE_COUNTER)}.npz")
    snapshot.save(path)
    try:
        ref = weakref.ref(graph, lambda _ref, key=key, path=path: _evict(key, path))
    except TypeError:  # slotted backends without __weakref__
        ref = None
    _SNAPSHOT_CACHE[key] = (ref, snapshot, path)
    return path


def parallel_shard_results(
    graphs,
    semantics_name: str,
    max_workers: Optional[int] = None,
) -> List[PeelingResult]:
    """Peel every shard graph in parallel worker processes.

    Each graph is frozen and staged as an ``.npz`` (cached while the
    graph is unchanged); the persistent worker pool maps the files
    read-only and peels them concurrently.  Falls back to in-process
    peeling for a single shard (dispatching to a pool for one graph costs
    more than it saves).
    """
    snapshots = [freeze_graph(graph) for graph in graphs]
    if len(snapshots) <= 1:
        return [peel_csr(snapshot, semantics_name) for snapshot in snapshots]
    paths = [
        _staged_path(graph, snapshot) for graph, snapshot in zip(graphs, snapshots)
    ]
    workers = max_workers or min(len(paths), os.cpu_count() or 1)
    names = [semantics_name] * len(paths)
    try:
        return list(_pool(workers).map(peel_snapshot_file, paths, names))
    except BrokenProcessPool:
        # A worker died (OOM-killed, SIGKILLed by a test harness...).  The
        # pool is unusable after that; rebuild it once and retry — the
        # staged snapshots are still valid.
        _reset_pool()
        return list(_pool(workers).map(peel_snapshot_file, paths, names))
