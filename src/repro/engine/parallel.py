"""Process-parallel per-shard peeling over mmap-shared CSR snapshots.

The optional ``multiprocessing`` executor of
:class:`~repro.engine.sharded.ShardedSpade`: each shard's graph is frozen
into an immutable :class:`~repro.graph.csr.CsrSnapshot` (PR 2), persisted
as an *uncompressed* ``.npz`` and loaded in the worker with
``mmap_mode="r"`` — the numeric arrays are memory-mapped straight out of
the archive, so the per-worker load is zero-copy and the page cache is
shared across workers.  The workers then run the vectorised
:func:`~repro.peeling.static.peel_csr`, which is bit-identical to the
shards' incrementally maintained answers.

Only the built-in, name-addressable semantics matter here: snapshots carry
final weights, so workers never evaluate ``vsusp`` / ``esusp`` and only
need the display name for labelling the result.
"""

from __future__ import annotations

import os
import tempfile
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional

from repro.graph.csr import CsrSnapshot, freeze_graph
from repro.peeling.result import PeelingResult
from repro.peeling.static import peel_csr

__all__ = ["parallel_shard_results", "peel_snapshot_file"]


def peel_snapshot_file(path: str, semantics_name: str) -> PeelingResult:
    """Worker entry point: mmap-load a snapshot and peel it."""
    snapshot = CsrSnapshot.load(path, mmap_mode="r")
    return peel_csr(snapshot, semantics_name)


def parallel_shard_results(
    graphs,
    semantics_name: str,
    max_workers: Optional[int] = None,
) -> List[PeelingResult]:
    """Peel every shard graph in parallel worker processes.

    Each graph is frozen and written to a temporary ``.npz``; the worker
    pool maps the files read-only and peels them concurrently.  Falls
    back to in-process peeling for a single shard (spawning a pool for
    one graph costs more than it saves).
    """
    snapshots = [freeze_graph(graph) for graph in graphs]
    if len(snapshots) <= 1:
        return [peel_csr(snapshot, semantics_name) for snapshot in snapshots]
    with tempfile.TemporaryDirectory(prefix="repro-shards-") as tmp:
        paths = []
        for index, snapshot in enumerate(snapshots):
            path = os.path.join(tmp, f"shard{index}.npz")
            snapshot.save(path)
            paths.append(path)
        workers = max_workers or min(len(paths), os.cpu_count() or 1)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(peel_snapshot_file, paths, [semantics_name] * len(paths)))
