"""``ShardedSpade``: hash-partitioned shard engines behind a coordinator.

The ROADMAP's "sharded engines" item: the interner gives every vertex a
dense id; a :class:`~repro.engine.router.ShardRouter` hash-partitions ids
across ``num_shards`` single-engine :class:`~repro.core.spade.Spade`
instances so the per-update reordering work runs on graphs a fraction of
the global size (in the spirit of K-Join's vertex-cover-driven partitioned
parallel joins).

Architecture
------------
* **Coordinator mirror.**  The coordinator maintains the *global* weighted
  graph exactly as a single engine would — same vertex interning order,
  same suspiciousness evaluations against the same graph state, same
  accumulation order — but without any peeling state attached.  All
  ``vsusp`` / ``esusp`` evaluations happen here, against the global view,
  so degree-dependent semantics (Fraudar) see global degrees and the
  per-shard engines receive *pre-weighted* updates they never re-weigh.
* **Shards.**  Each shard owns the subgraph of edges whose source vertex
  it homes.  Intra-shard edges (both endpoints homed locally) are applied
  immediately through the shard's incremental maintenance; the foreign
  endpoint of a cross-shard edge is replicated into the owning shard with
  its global prior.
* **Cross-shard queue.**  Cross-shard updates are parked in a coordinator
  queue and applied as a periodic batch pass (``coordinator_interval``,
  or at the latest when a detection is requested) through the shards'
  existing ``insert_batch_edges`` / ``delete_edges`` paths — batching is
  exactly where Algorithm 2 recoups the deferral.
* **Merged detection.**  :meth:`detect` / :meth:`result` first run the
  coordinator pass (drain the queue, tick every shard's
  ``flush_pending``) and then peel the mirror — through the frozen CSR
  snapshot when the backend supports it.  Because the mirror is
  bit-identical to a single engine's graph, the merged community is
  *exact*: identical to single-engine ``Spade.detect()`` without edge
  grouping (a grouping single engine excludes its deferred benign edges;
  the merged detection is flush-consistent).  The per-update
  return value (:meth:`insert_edge` and friends) is instead the cheap
  **local** approximation — the densest community any one shard currently
  maintains, a lower bound on the global density that never pays for
  cross-shard reconciliation.

Exactness caveats (see README "Sharded engines"): the per-shard grouping
and :meth:`is_benign` use shard-local (lower-bound) densities, which only
makes flushes *more* eager; custom semantics whose ``vsusp`` inspects the
graph see the coordinator's mirror, which during a batch is consulted in
per-update order rather than ``insert_batch``'s create-all-vertices-first
order (DG / DW / FD are insensitive to this).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.batch import BatchInput, normalize_updates
from repro.core.enumeration import CommunityInstance, enumerate_communities
from repro.core.grouping import is_benign_on_graph
from repro.core.reorder import ReorderStats
from repro.core.spade import Spade
from repro.core.state import Community, PeelingState
from repro.config import validate_config
from repro.engine.router import ShardRouter
from repro.errors import StateError
from repro.graph.backend import backend_of, convert_graph, create_graph, get_default_backend
from repro.graph.delta import EdgeUpdate
from repro.graph.graph import DynamicGraph, Vertex
from repro.peeling.result import PeelingResult
from repro.peeling.semantics import (
    PeelingSemantics,
    custom_semantics,
    dg_semantics,
)
from repro.peeling.static import peel, peel_csr

__all__ = ["ShardedSpade"]


def _preweighted(semantics: PeelingSemantics) -> PeelingSemantics:
    """Shard-side semantics: weights arrive final from the coordinator.

    The coordinator evaluates ``vsusp`` / ``esusp`` against the global
    mirror and ships the results inside each update, so the shards run an
    identity semantics (edge weight = carried weight, vertex prior always
    explicit) under the original display name.
    """
    return custom_semantics(
        name=semantics.name,
        edge_susp=lambda _src, _dst, raw, _graph: raw,
    )


class ShardedSpade:
    """Hash-partitioned Spade shards behind a coordinator queue.

    Parameters
    ----------
    semantics:
        The peeling semantics (evaluated exclusively by the coordinator).
    num_shards:
        Number of shard engines the dense-id space is partitioned into.
    edge_grouping:
        Enable per-shard benign-edge grouping (Algorithm 3).  Deferral is
        shard-local; the coordinator pass flushes every shard, so merged
        detections always reflect all accepted updates.
    backend:
        Graph backend for the mirror and every shard (``"dict"`` /
        ``"array"``; ``None`` = process default).
    coordinator_interval:
        Cross-shard queue length that triggers an eager batch pass; the
        queue is always drained before a merged detection regardless.
    executor:
        ``"serial"`` (default) or ``"process"`` — how
        :meth:`shard_communities` computes per-shard communities.  The
        process executor ships each shard's frozen CSR snapshot to worker
        processes via the zero-copy ``.npz`` mmap load.
    """

    def __init__(
        self,
        semantics: Optional[PeelingSemantics] = None,
        num_shards: int = 4,
        edge_grouping: bool = False,
        backend: Optional[str] = None,
        coordinator_interval: int = 1024,
        executor: str = "serial",
        kernel: Optional[str] = None,
    ) -> None:
        validate_config(
            backend=backend,
            shards=num_shards,
            executor=executor,
            coordinator_interval=coordinator_interval,
            kernel=kernel,
        )
        self._semantics = semantics or dg_semantics()
        self._shard_semantics = _preweighted(self._semantics)
        self._num_shards = num_shards
        self._edge_grouping = edge_grouping
        self._backend = backend
        self._kernel = kernel
        self._coordinator_interval = coordinator_interval
        self._executor = executor
        self._mirror = None
        self._router: Optional[ShardRouter] = None
        self._shards: List[Spade] = []
        self._pending: List[EdgeUpdate] = []
        self._pending_has_delete = False
        self._version = 0
        self._merged_result: Optional[PeelingResult] = None
        self._merged_version = -1
        self.last_stats: ReorderStats = ReorderStats()
        #: Operational counters for benchmarks and reports.
        self.coordinator_flushes = 0
        self.cross_shard_updates = 0
        self.intra_shard_updates = 0

    # ------------------------------------------------------------------ #
    # Configuration
    # ------------------------------------------------------------------ #
    @property
    def semantics(self) -> PeelingSemantics:
        """The active peeling semantics."""
        return self._semantics

    @property
    def num_shards(self) -> int:
        """Number of shard engines."""
        return self._num_shards

    @property
    def shards(self) -> Sequence[Spade]:
        """The shard engines (read-only by convention)."""
        return tuple(self._shards)

    @property
    def router(self) -> ShardRouter:
        """The dense-id partition map (raises before a graph is loaded)."""
        if self._router is None:
            raise StateError("no graph loaded; call load_graph or load_edges first")
        return self._router

    @property
    def backend(self) -> str:
        """The graph backend of the mirror and the shards (resolved)."""
        if self._mirror is not None:
            return backend_of(self._mirror)
        return self._backend or get_default_backend()

    @property
    def kernel(self) -> Optional[str]:
        """The requested hot-loop kernel (``None`` = process default)."""
        return self._kernel

    @property
    def graph(self) -> DynamicGraph:
        """The coordinator's global mirror of the evolving graph.

        Read it freely; mutate only through the engine's update methods,
        or the shards fall out of sync with the mirror.
        """
        return self._require_loaded()

    def _require_loaded(self):
        if self._mirror is None:
            raise StateError("no graph loaded; call load_graph or load_edges first")
        return self._mirror

    # ------------------------------------------------------------------ #
    # Load
    # ------------------------------------------------------------------ #
    def load_graph(self, graph: DynamicGraph) -> PeelingResult:
        """Adopt a weighted graph as the global mirror and partition it.

        The graph becomes the coordinator's mirror (owned, mutated in
        place as updates arrive); its edges are dealt to per-shard
        subgraphs by the router, with foreign endpoints of cross-shard
        edges replicated into the owning shard.
        """
        if self._backend is not None and backend_of(graph) != self._backend:
            graph = convert_graph(graph, self._backend)
        self._mirror = graph
        self._router = ShardRouter(graph.interner, self._num_shards)
        self._boot_shards(self._partition_graphs())
        self._pending = []
        self._pending_has_delete = False
        self._version += 1
        return self._merged()

    def load_edges(
        self,
        edges: Iterable[tuple],
        vertex_priors: Optional[Mapping[Vertex, float]] = None,
    ) -> PeelingResult:
        """Build the weighted global graph from raw transactions and load it."""
        graph = self._semantics.materialize(
            edges, vertex_priors=vertex_priors, backend=self.backend
        )
        return self.load_graph(graph)

    # ------------------------------------------------------------------ #
    # Shard dispatch hooks
    #
    # Everything that touches a shard engine funnels through the methods
    # in this section, so that alternative shard placements — notably the
    # process-resident workers of :mod:`repro.serve.workers` — can
    # override *where* shard maintenance runs without re-implementing the
    # mirror/routing/parking discipline above them.
    # ------------------------------------------------------------------ #
    def _partition_graphs(self) -> List[DynamicGraph]:
        """Deal the mirror into per-shard subgraphs (router-homed edges).

        Vertices first, in global interner order, so shard-local dense
        ids follow the global tie-break order restricted to each shard;
        foreign endpoints of cross-shard edges are replicated with their
        global priors.
        """
        graph = self._require_loaded()
        backend = backend_of(graph)
        shard_graphs = [create_graph(backend) for _ in range(self._num_shards)]
        for label in graph.interner:
            if graph.has_vertex(label):
                shard_graphs[self._router.shard_of(label)].add_vertex(
                    label, graph.vertex_weight(label)
                )
        for src, dst, weight in graph.edges():
            home, cross = self._router.route_edge(src, dst)
            shard_graph = shard_graphs[home]
            if cross and not shard_graph.has_vertex(dst):
                shard_graph.add_vertex(dst, graph.vertex_weight(dst))
            shard_graph.add_edge(src, dst, weight)
        return shard_graphs

    def _build_shard_graph(self, home: int) -> DynamicGraph:
        """Rebuild one shard's subgraph from the mirror (respawn path).

        The shard state is *derived*: given the mirror and the router it
        is reconstructible at any time, which is what makes a crashed
        worker process recoverable without replaying the WAL twice.
        """
        graph = self._require_loaded()
        router = self.router
        shard_graph = create_graph(backend_of(graph))
        for label in graph.interner:
            if graph.has_vertex(label) and router.shard_of(label) == home:
                shard_graph.add_vertex(label, graph.vertex_weight(label))
        for src, dst, weight in graph.edges():
            edge_home, cross = router.route_edge(src, dst)
            if edge_home != home:
                continue
            if cross and not shard_graph.has_vertex(dst):
                shard_graph.add_vertex(dst, graph.vertex_weight(dst))
            shard_graph.add_edge(src, dst, weight)
        return shard_graph

    def _boot_shards(self, shard_graphs: List[DynamicGraph]) -> None:
        """Construct the shard engines from their partitioned subgraphs."""
        self._shards = []
        for shard_graph in shard_graphs:
            shard = Spade(
                self._shard_semantics,
                edge_grouping=self._edge_grouping,
                kernel=self._kernel,
            )
            shard.load_graph(shard_graph)
            self._shards.append(shard)

    def _park(self, update: EdgeUpdate, home: int) -> None:
        """Park one pre-weighted cross-shard update for the next drain."""
        self._pending.append(update)
        if update.delete:
            self._pending_has_delete = True

    def _dispatch_immediate(
        self,
        immediate: Dict[int, List[EdgeUpdate]],
        batch: bool,
        timestamp: Optional[float],
        stats: ReorderStats,
    ) -> None:
        """Apply intra-shard insert updates to their owning shards."""
        for home, routed in immediate.items():
            shard = self._shards[home]
            if not batch and len(routed) == 1:
                update = routed[0]
                shard.insert_edge(
                    update.src,
                    update.dst,
                    update.weight,
                    timestamp=timestamp,
                    src_prior=update.src_weight,
                    dst_prior=update.dst_weight,
                )
            else:
                shard.insert_batch_edges(routed)
            stats.merge(shard.last_stats)

    def _dispatch_deletes(
        self, immediate: Dict[int, List[Tuple[Vertex, Vertex]]], stats: ReorderStats
    ) -> None:
        """Apply intra-shard deletions to their owning shards."""
        for home, doomed in immediate.items():
            shard = self._shards[home]
            shard.delete_edges(doomed)
            stats.merge(shard.last_stats)

    def _dispatch_parked(
        self, per_home: Dict[int, List[EdgeUpdate]], stats: Optional[ReorderStats]
    ) -> None:
        """Apply each shard's drained queue slice as insert/delete runs."""
        for home, ops in per_home.items():
            shard = self._shards[home]
            i = 0
            while i < len(ops):
                j = i
                if ops[i].delete:
                    while j < len(ops) and ops[j].delete:
                        j += 1
                    shard.delete_edges([(u.src, u.dst) for u in ops[i:j]])
                else:
                    while j < len(ops) and not ops[j].delete:
                        j += 1
                    shard.insert_batch_edges(ops[i:j])
                if stats is not None:
                    stats.merge(shard.last_stats)
                i = j

    def _flush_shards(self) -> None:
        """Tick every shard's ``flush_pending`` (fast no-op when empty)."""
        for shard in self._shards:
            shard.flush_pending()

    def _shard_communities(self) -> List[Community]:
        """Every shard's currently maintained community, in shard order."""
        return [shard.detect() for shard in self._shards]

    def _shard_pending(self) -> int:
        """Deferred (benign-buffered) edges across all shard engines."""
        return sum(shard.pending_edges() for shard in self._shards)

    # ------------------------------------------------------------------ #
    # Detection
    # ------------------------------------------------------------------ #
    def detect(self) -> Community:
        """Run the coordinator pass and return the **exact** global community.

        Drains the cross-shard queue, ticks every shard's
        ``flush_pending`` and peels the mirror (via its cached CSR
        snapshot on the array backend).  The result is identical to
        single-engine :meth:`repro.core.spade.Spade.detect` *without edge
        grouping* on the same update stream, and is cached until the next
        mutation.  (A grouping single engine excludes its buffered benign
        edges from detection; the merged detection is flush-consistent —
        it always reflects every accepted update.)
        """
        self._coordinator_pass()
        result = self._merged()
        return Community(result.community, result.best_density, result.best_index)

    def detect_local(self) -> Community:
        """Return the cheap shard-local approximation of the community.

        The densest community maintained by any single shard.  Its density
        is a lower bound on the exact global density (cross-shard edges
        only ever add suspiciousness); no coordinator pass is performed.
        """
        return self._local_community()

    def result(self) -> PeelingResult:
        """Export the merged global peeling result (coordinator pass included)."""
        self._coordinator_pass()
        return self._merged()

    def shard_communities(self, parallel: Optional[bool] = None) -> List[Community]:
        """Return every shard's current community (coordinator pass included).

        With ``parallel=True`` (or ``executor="process"``) the per-shard
        communities are recomputed from frozen CSR snapshots in worker
        processes — bit-identical to the shards' maintained answers, per
        the PR 1/2 static-vs-incremental guarantee.
        """
        self._coordinator_pass()
        if parallel is None:
            parallel = self._executor == "process"
        if parallel:
            from repro.engine.parallel import parallel_shard_results

            results = parallel_shard_results(
                [shard.graph for shard in self._shards], self._semantics.name
            )
            return [Community(r.community, r.best_density, r.best_index) for r in results]
        return self._shard_communities()

    def enumerate_frauds(
        self,
        max_instances: int = 10,
        min_density: float = 0.0,
        min_size: int = 2,
    ) -> Sequence[CommunityInstance]:
        """Enumerate dense fraud instances over the merged global result."""
        self._coordinator_pass()
        result = self._merged()
        state = PeelingState(self._require_loaded(), self._semantics, result=result)
        return enumerate_communities(
            state,
            max_instances=max_instances,
            min_density=min_density,
            min_size=min_size,
        )

    def _merged(self) -> PeelingResult:
        """Peel the mirror (cached per version) — the exact global result."""
        if self._merged_result is not None and self._merged_version == self._version:
            return self._merged_result
        mirror = self._require_loaded()
        if hasattr(mirror, "freeze"):
            result = peel_csr(mirror.freeze(), self._semantics.name, kernel=self._kernel)
        else:
            result = peel(mirror, self._semantics.name)
        self._merged_result = result
        self._merged_version = self._version
        return result

    def _local_community(self) -> Community:
        # Parked cross-shard *deletes* would leave removed weight visible
        # in shard states, letting the local density exceed the global one
        # and flipping the lower-bound guarantee that is_benign relies on
        # (an urgent edge must never look benign).  Parked inserts only
        # withhold weight, so they keep the bound; drain eagerly only when
        # a delete is in the queue.
        if self._pending_has_delete:
            self._apply_pending()
        best: Optional[Community] = None
        for community in self._shard_communities():
            if best is None or community.density > best.density:
                best = community
        if best is None:
            raise StateError("no graph loaded; call load_graph or load_edges first")
        return best

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #
    def insert_edge(
        self,
        src: Vertex,
        dst: Vertex,
        weight: float = 1.0,
        timestamp: Optional[float] = None,
        src_prior: Optional[float] = None,
        dst_prior: Optional[float] = None,
    ) -> Community:
        """Insert one transaction; returns the shard-local community view."""
        update = EdgeUpdate(src, dst, weight, src_weight=src_prior, dst_weight=dst_prior)
        self.last_stats = self._ingest([update], batch=False, timestamp=timestamp)
        return self._local_community()

    def insert_batch_edges(self, batch: BatchInput) -> Community:
        """Insert a batch of transactions; returns the shard-local view."""
        updates = normalize_updates(batch)
        if any(update.delete for update in updates):
            raise ValueError(
                "insert_batch_edges only handles insertions; use delete_edges for deletions"
            )
        self.last_stats = self._ingest(updates, batch=True)
        return self._local_community()

    def delete_edge(self, src: Vertex, dst: Vertex) -> Community:
        """Delete one outdated transaction; returns the shard-local view.

        Singular convenience symmetric with :meth:`insert_edge`.
        """
        return self.delete_edges([(src, dst)])

    def delete_edges(self, edges: Iterable[Tuple[Vertex, Vertex]]) -> Community:
        """Delete outdated transactions; returns the shard-local view."""
        mirror = self._require_loaded()
        stats = ReorderStats()
        immediate: Dict[int, List[Tuple[Vertex, Vertex]]] = {}
        removed = False
        for src, dst in edges:
            if not mirror.has_edge(src, dst):
                continue
            mirror.remove_edge(src, dst)
            removed = True
            home, cross = self._router.route_edge(src, dst)
            if cross and self._num_shards > 1:
                self._park(EdgeUpdate(src, dst, delete=True), home)
                self.cross_shard_updates += 1
            else:
                immediate.setdefault(home, []).append((src, dst))
                self.intra_shard_updates += 1
        self._dispatch_deletes(immediate, stats)
        if removed:
            self._version += 1
        if len(self._pending) >= self._coordinator_interval:
            self._apply_pending(stats)
        self.last_stats = stats
        return self._local_community()

    def _ingest(
        self,
        updates: List[EdgeUpdate],
        batch: bool,
        timestamp: Optional[float] = None,
    ) -> ReorderStats:
        """Mirror the updates globally, pre-weigh them, and route to shards.

        Mirror maintenance reproduces the single engine's evaluation
        order: ``insert_batch`` creates every new vertex before applying
        any edge; the single-edge path interleaves per update.
        """
        mirror = self._require_loaded()
        semantics = self._semantics
        router = self._router
        stats = ReorderStats()
        immediate: Dict[int, List[EdgeUpdate]] = {}

        def ensure_vertex(label: Vertex, prior: Optional[float]) -> None:
            if mirror.has_vertex(label):
                return
            weight = float(prior) if prior is not None else semantics.vertex_weight(label, mirror)
            mirror.add_vertex(label, weight)

        if batch:
            for update in updates:
                ensure_vertex(update.src, update.src_weight)
                ensure_vertex(update.dst, update.dst_weight)
        for update in updates:
            if not batch:
                ensure_vertex(update.src, update.src_weight)
                ensure_vertex(update.dst, update.dst_weight)
            edge_weight = semantics.edge_weight(update.src, update.dst, update.weight, mirror)
            mirror.add_edge(update.src, update.dst, edge_weight)
            home, cross = router.route_edge(update.src, update.dst)
            pre = EdgeUpdate(
                update.src,
                update.dst,
                weight=edge_weight,
                src_weight=mirror.vertex_weight(update.src),
                dst_weight=mirror.vertex_weight(update.dst),
            )
            if cross and self._num_shards > 1:
                self._park(pre, home)
                self.cross_shard_updates += 1
            else:
                immediate.setdefault(home, []).append(pre)
                self.intra_shard_updates += 1

        self._dispatch_immediate(immediate, batch, timestamp, stats)

        self._version += 1
        if len(self._pending) >= self._coordinator_interval:
            self._apply_pending(stats)
        return stats

    # ------------------------------------------------------------------ #
    # Coordinator pass
    # ------------------------------------------------------------------ #
    def _apply_pending(self, stats: Optional[ReorderStats] = None) -> None:
        """Drain the cross-shard queue into the owning shards, in order.

        The queue is FIFO per edge (all updates to one directed edge share
        an owning shard), so applying each shard's slice in order — with
        consecutive runs of inserts batched through ``insert_batch_edges``
        and runs of deletes through ``delete_edges`` — reproduces the
        global per-edge update order.
        """
        if not self._pending:
            return
        queue, self._pending = self._pending, []
        self._pending_has_delete = False
        self.coordinator_flushes += 1
        per_home: Dict[int, List[EdgeUpdate]] = {}
        for update in queue:
            per_home.setdefault(self._router.shard_of(update.src), []).append(update)
        self._dispatch_parked(per_home, stats)

    def _coordinator_pass(self) -> None:
        """One coordinator tick: drain the queue, flush every shard."""
        self._apply_pending()
        self._flush_shards()

    def flush_pending(self) -> Community:
        """Force a coordinator pass; returns the shard-local view."""
        self._coordinator_pass()
        return self._local_community()

    def pending_edges(self) -> int:
        """Cross-shard queue length plus per-shard grouper buffers."""
        return len(self._pending) + self._shard_pending()

    # ------------------------------------------------------------------ #
    # Built-ins exposed for inspection
    # ------------------------------------------------------------------ #
    def is_benign(self, src: Vertex, dst: Vertex, weight: float = 1.0) -> bool:
        """Definition 4.1 against the global mirror and the local density.

        Uses the shard-local community density, which — with any parked
        deletes drained first (see ``_local_community``) — is a lower
        bound on the exact global density, so the test can only classify
        *more* edges as urgent: deferral never becomes less safe than
        single-engine.
        """
        mirror = self._require_loaded()
        edge_weight = self._semantics.edge_weight(src, dst, weight, mirror)
        return is_benign_on_graph(
            mirror, src, dst, edge_weight, self._local_community().density
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self._mirror is None:
            loaded = "unloaded"
        else:
            loaded = (
                f"|V|={self._mirror.num_vertices()}, "
                f"|E|={self._mirror.num_edges()}, pending={len(self._pending)}"
            )
        return (
            f"ShardedSpade(semantics={self._semantics.name}, "
            f"backend={self.backend}, shards={self._num_shards}, {loaded})"
        )
