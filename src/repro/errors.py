"""Exception hierarchy shared across the repro package.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can catch a single exception type at the
boundary of their own systems while still being able to distinguish the
individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GraphError(ReproError):
    """A graph operation was invalid (unknown vertex, negative weight, ...)."""


class UnknownVertexError(GraphError):
    """An operation referenced a vertex that is not part of the graph."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"vertex {vertex!r} is not part of the graph")
        self.vertex = vertex


class UnknownEdgeError(GraphError):
    """An operation referenced a directed edge that is not part of the graph.

    Carries the endpoints separately (``src`` / ``dst``) so callers can log
    or retry with structured information instead of parsing a tuple out of a
    vertex error.
    """

    def __init__(self, src: object, dst: object) -> None:
        super().__init__(f"edge ({src!r} -> {dst!r}) is not part of the graph")
        self.src = src
        self.dst = dst


class DuplicateVertexError(GraphError):
    """A vertex was added twice with conflicting attributes."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"vertex {vertex!r} already exists with a different weight")
        self.vertex = vertex


class InvalidWeightError(GraphError):
    """A vertex or edge weight violated the density-metric preconditions.

    Property 3.1 of the paper requires vertex weights ``a_i >= 0`` and edge
    weights ``c_ij > 0`` for Spade's incremental maintenance to be correct,
    so the graph layer rejects anything else up front.
    """


class ConfigError(ReproError, ValueError):
    """An engine was configured with an invalid knob value.

    Raised by :func:`repro.config.validate_config` — the single
    validation choke point for backend / static-peel / shard / executor /
    semantics choices — with a message that lists the valid choices.
    Subclasses :class:`ValueError` so callers that historically caught
    ``ValueError`` around engine construction keep working.
    """


class KernelUnavailableError(ConfigError):
    """``kernel="native"`` was requested but the compiled kernels are unusable.

    Raised by :func:`repro.native.resolve_kernel` when no C compiler is
    found, the on-demand build fails, or the loaded library flunks its
    bit-identity self-check.  Carries the human-readable ``reason``.
    Under ``kernel="auto"`` the same conditions fall back to the python
    hot paths with a single ``RuntimeWarning`` instead.
    """

    def __init__(self, reason: str) -> None:
        super().__init__(f"native kernels unavailable: {reason}")
        self.reason = reason


class SemanticsError(ReproError):
    """A user-supplied suspiciousness function returned an invalid value."""


class StateError(ReproError):
    """The Spade engine was used before it was initialised, or misused."""


class StreamError(ReproError):
    """An update stream violated its contract (e.g. timestamps not sorted)."""


class StorageError(ReproError):
    """A dataset or snapshot could not be read or written."""


class DegradedError(ReproError):
    """The serving layer is in read-only degraded mode.

    Raised by the ingest gateway while the write-ahead log cannot accept
    appends (disk full, I/O errors): writes are refused — the HTTP layer
    answers ``503`` with ``Retry-After`` — while snapshot reads keep
    serving at the last durable version.  Carries the ``reason`` the
    degradation began; an auto-probe re-enters read-write once the WAL
    directory accepts writes again.
    """

    def __init__(self, reason: str) -> None:
        super().__init__(f"serving degraded to read-only: {reason}")
        self.reason = reason


class WorkerFallbackError(ReproError):
    """A shard worker could not be (re)spawned into a usable state.

    Raised by the worker engine's boot/respawn path when a worker dies
    or times out before acknowledging its state load.  The respawn loop
    retries within its budget; exhausting the budget triggers fallback
    to the in-process engine rather than crashing the coordinator.
    """


class HistoryError(ReproError):
    """The time-travel / historical-analytics subsystem was misused.

    Raised by :mod:`repro.history` when the cold store cannot be opened,
    an epoch record fails its checksum, or a query is malformed (e.g. an
    undecodable pagination cursor).
    """


class AsofRangeError(HistoryError):
    """An ``asof`` sequence is outside the addressable WAL range.

    Raised by :class:`repro.history.asof.AsofService` for a negative
    sequence or one beyond the durable head — the HTTP layer answers
    ``400``, because no amount of retrying makes an unwritten future
    readable.  Carries the offending ``seq`` and the current ``head``.
    """

    def __init__(self, seq: int, head: int) -> None:
        super().__init__(
            f"asof sequence {seq} is outside the WAL range [0, {head}]"
        )
        self.seq = seq
        self.head = head


class WorkloadError(ReproError):
    """A workload generator was configured with impossible parameters."""


class ExperimentError(ReproError):
    """An experiment harness was configured incorrectly."""
