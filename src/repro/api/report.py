"""The structured result every :class:`repro.api.SpadeClient` call returns.

Three PRs of growth left detection results scattered across three shapes:
``Community`` (a tuple subclass returned per update),
:class:`~repro.peeling.result.PeelingResult` (the full sequence export)
and the sharded engine's shard-local lower-bound view (a ``Community``
again, but with different exactness semantics).  :class:`DetectionReport`
unifies them: one frozen dataclass carrying the community, the optional
full peeling result, per-event outcomes, merged reorder stats, timing and
provenance (semantics / backend / shards / exactness).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

from repro.core.reorder import ReorderStats
from repro.core.state import Community
from repro.graph.graph import Vertex
from repro.peeling.result import PeelingResult

__all__ = ["DetectionReport", "EventOutcome"]


@dataclass(frozen=True)
class EventOutcome:
    """What one applied event did to the engine.

    ``density`` / ``community_size`` describe the community returned right
    after the event — the exact view for a single engine, the shard-local
    lower bound for a sharded one (see ``DetectionReport.exact``).
    """

    #: Event kind: ``"insert"`` / ``"insert_batch"`` / ``"delete"`` / ``"flush"``.
    kind: str
    #: Number of edges the event carried (0 for a flush).
    edges: int
    #: Density of the community after the event.
    density: float
    #: Size of the community after the event.
    community_size: int
    #: Reorder cost accounting of this event's maintenance pass.
    stats: ReorderStats = field(default_factory=ReorderStats)


@dataclass(frozen=True)
class DetectionReport:
    """Unified detection result: community + outcomes + stats + provenance."""

    #: The detected community (vertices, density, peel index).
    community: Community
    #: Per-event outcomes of the ``apply`` call that produced this report
    #: (empty for plain ``detect()`` / ``load()`` reports).
    outcomes: Tuple[EventOutcome, ...] = ()
    #: Reorder cost accounting merged over every event of the call.
    stats: ReorderStats = field(default_factory=ReorderStats)
    #: The full peeling result (sequence + weights), when the call
    #: computed one (``load`` / ``detect``); ``None`` for cheap updates.
    result: Optional[PeelingResult] = None
    #: Display name of the active semantics.
    semantics: str = "custom"
    #: Graph backend of the engine.
    backend: str = "dict"
    #: Number of shard engines (1 = single engine).
    shards: int = 1
    #: Whether ``community`` is the exact global detection (True) or a
    #: sharded engine's shard-local lower-bound view (False).
    exact: bool = True
    #: Wall-clock seconds spent inside the engine for this call.
    elapsed_seconds: float = 0.0

    # ------------------------------------------------------------------ #
    # Community views
    # ------------------------------------------------------------------ #
    @property
    def vertices(self) -> FrozenSet[Vertex]:
        """The detected fraudulent community ``S_P``."""
        return self.community.vertices

    @property
    def density(self) -> float:
        """Its density ``g(S_P)``."""
        return self.community.density

    @property
    def peel_index(self) -> int:
        """Number of vertices peeled before the community."""
        return self.community.peel_index

    def __contains__(self, vertex: object) -> bool:
        return vertex in self.community.vertices

    # ------------------------------------------------------------------ #
    # Outcome aggregates
    # ------------------------------------------------------------------ #
    @property
    def events(self) -> int:
        """Number of events applied by the call."""
        return len(self.outcomes)

    @property
    def edges_applied(self) -> int:
        """Total number of edges carried by the applied events."""
        return sum(outcome.edges for outcome in self.outcomes)

    @property
    def affected_area(self) -> int:
        """Scalar reorder-work summary merged over the call's events."""
        return self.stats.affected_area

    def summary(self) -> str:
        """Return a one-line human-readable summary."""
        view = "exact" if self.exact else f"shard-local ({self.shards} shards)"
        return (
            f"{self.semantics}/{self.backend}: community of "
            f"{len(self.community.vertices)} vertices at density "
            f"{self.community.density:.4f} ({view}; {self.events} events, "
            f"{self.edges_applied} edges)"
        )

    def to_dict(self) -> Dict[str, object]:
        """Flatten for JSON logging (vertices sorted for determinism)."""
        return {
            "community": sorted(map(str, self.community.vertices)),
            "density": self.community.density,
            "peel_index": self.community.peel_index,
            "events": self.events,
            "edges_applied": self.edges_applied,
            "affected_area": self.affected_area,
            "semantics": self.semantics,
            "backend": self.backend,
            "shards": self.shards,
            "exact": self.exact,
            "elapsed_seconds": self.elapsed_seconds,
        }
