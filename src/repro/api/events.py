"""The typed update stream consumed by :meth:`repro.api.SpadeClient.apply`.

Historically ingestion was four differently-shaped mutators
(``insert_edge`` / ``insert_batch_edges`` / ``delete_edges`` /
``flush_pending``), each with its own argument convention.  The façade
replaces them with **one** method taking a stream of tagged-union events:

* :class:`Insert` — one transaction (``InsertEdge`` of Listing 1);
* :class:`InsertBatch` — a batch applied through Algorithm 2;
* :class:`Delete` — outdated transactions removed (Appendix C.1);
* :class:`Flush` — force-flush deferred benign edges / the cross-shard
  queue.

Events interoperate with the structural layer: :func:`as_events` also
accepts plain :class:`~repro.graph.delta.EdgeUpdate` objects (``delete``
flag honoured), ``(src, dst[, weight])`` sequences and whole
:class:`~repro.graph.delta.GraphDelta` batches, so existing producers —
JSONL replay, the stream layer's ``as_update()`` — feed the new API
without conversion shims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Tuple, Union

from repro.core.batch import BatchInput, normalize_updates
from repro.graph.delta import EdgeUpdate, GraphDelta
from repro.graph.graph import Vertex

__all__ = [
    "Insert",
    "InsertBatch",
    "Delete",
    "Flush",
    "Event",
    "as_events",
]


@dataclass(frozen=True)
class Insert:
    """Insert one transaction (single-edge incremental maintenance).

    ``src_prior`` / ``dst_prior`` are optional vertex suspiciousness
    priors honoured only when the endpoint is new, exactly as in the
    legacy ``insert_edge``.
    """

    src: Vertex
    dst: Vertex
    weight: float = 1.0
    timestamp: Optional[float] = None
    src_prior: Optional[float] = None
    dst_prior: Optional[float] = None

    def as_update(self) -> EdgeUpdate:
        """Convert to the structural :class:`EdgeUpdate`."""
        return EdgeUpdate(
            self.src,
            self.dst,
            self.weight,
            src_weight=self.src_prior,
            dst_weight=self.dst_prior,
        )

    @classmethod
    def from_update(cls, update: EdgeUpdate, timestamp: Optional[float] = None) -> "Insert":
        """Build an insert event from an :class:`EdgeUpdate` insertion."""
        if update.delete:
            raise ValueError("cannot build an Insert event from a deletion update")
        return cls(
            update.src,
            update.dst,
            update.weight,
            timestamp=timestamp,
            src_prior=update.src_weight,
            dst_prior=update.dst_weight,
        )


@dataclass(frozen=True)
class InsertBatch:
    """Insert a batch of transactions in one Algorithm-2 pass."""

    updates: Tuple[EdgeUpdate, ...]

    @classmethod
    def of(cls, batch: BatchInput) -> "InsertBatch":
        """Build a batch event from any legacy batch shape.

        Accepts whatever ``insert_batch_edges`` accepted: a
        :class:`GraphDelta`, an iterable of :class:`EdgeUpdate`, or an
        iterable of ``(src, dst[, weight])`` sequences.
        """
        return cls(tuple(normalize_updates(batch)))

    def __len__(self) -> int:
        return len(self.updates)


@dataclass(frozen=True)
class Delete:
    """Delete outdated transactions (suffix re-peel maintenance)."""

    edges: Tuple[Tuple[Vertex, Vertex], ...]

    @classmethod
    def of(cls, edges: Iterable[Tuple[Vertex, Vertex]]) -> "Delete":
        """Build a delete event from ``(src, dst)`` pairs."""
        return cls(tuple((src, dst) for src, dst in edges))

    def __len__(self) -> int:
        return len(self.edges)


@dataclass(frozen=True)
class Flush:
    """Force-flush deferred work (benign buffers, cross-shard queue)."""


#: The tagged union of every event the client accepts.
Event = Union[Insert, InsertBatch, Delete, Flush]

_EVENT_TYPES = (Insert, InsertBatch, Delete, Flush)


def _coerce(item: object) -> Event:
    if isinstance(item, _EVENT_TYPES):
        return item
    if isinstance(item, EdgeUpdate):
        if item.delete:
            return Delete(((item.src, item.dst),))
        return Insert.from_update(item)
    if isinstance(item, (str, bytes)):
        raise TypeError(f"unsupported update event {item!r}")
    try:
        length = len(item)  # type: ignore[arg-type]
    except TypeError:
        raise TypeError(f"unsupported update event {item!r}") from None
    if length == 2:
        return Insert(item[0], item[1])  # type: ignore[index]
    if length == 3:
        return Insert(item[0], item[1], float(item[2]))  # type: ignore[index]
    raise TypeError(f"unsupported update event {item!r}")


def as_events(updates: object) -> Iterator[Event]:
    """Coerce any accepted update stream into an iterator of events.

    Accepted shapes:

    * a single event (or one :class:`EdgeUpdate` / ``(src, dst[, w])``
      sequence);
    * an iterable mixing events, :class:`EdgeUpdate` objects and
      ``(src, dst[, w])`` sequences;
    * a :class:`GraphDelta` (its updates are replayed in order).
    """
    if isinstance(updates, _EVENT_TYPES) or isinstance(updates, EdgeUpdate):
        yield _coerce(updates)
        return
    if isinstance(updates, GraphDelta):
        for update in updates.updates:
            yield _coerce(update)
        return
    if isinstance(updates, (str, bytes)):
        raise TypeError(f"unsupported update stream {updates!r}")
    if isinstance(updates, tuple) and updates and not isinstance(
        updates[0], _EVENT_TYPES + (EdgeUpdate, tuple, list)
    ):
        # A bare (src, dst[, weight]) tuple rather than a stream of them.
        yield _coerce(updates)
        return
    for item in updates:  # type: ignore[union-attr]
        yield _coerce(item)
