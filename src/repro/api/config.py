"""``EngineConfig``: every construction knob in one validated, frozen place.

Construction knobs used to live in three places — ``Spade(backend=...)``,
``create_engine(shards=..., coordinator_interval=...)`` and the bench-only
``--static heap|csr`` axis.  :class:`EngineConfig` captures all of them in
one frozen dataclass that validates on construction (through the central
:func:`repro.config.validate_config`) and round-trips through plain dicts
(:meth:`EngineConfig.to_dict` / :meth:`EngineConfig.from_dict`) so the
same configuration can travel through JSON files, CLI flags and process
boundaries unchanged.  ``EngineConfig.build()`` is the one construction
path every in-repo consumer uses; the future native backend and
process-resident shard workers plug in behind the same knobs.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.config import semantics_instance, validate_config
from repro.errors import ConfigError
from repro.peeling.semantics import PeelingSemantics
from repro.serve.config import ServeConfig

__all__ = ["EngineConfig"]


@dataclass(frozen=True)
class EngineConfig:
    """A complete, validated engine configuration.

    Attributes
    ----------
    semantics:
        Built-in semantics name (``"DG"`` / ``"DW"`` / ``"FD"``).  A
        custom :class:`~repro.peeling.semantics.PeelingSemantics` instance
        is supplied at build time (``build(semantics=...)``) instead, so
        the config itself stays JSON-serialisable.
    backend:
        Graph backend (``"dict"`` / ``"array"``; ``None`` = process
        default).
    static:
        Static-peel method for from-scratch baselines (``"heap"`` /
        ``"csr"``).  Consulted by the bench harness and the snapshot
        path; the incremental engine is unaffected.
    shards:
        Number of shard engines (1 = single ``Spade``; > 1 builds a
        hash-partitioned :class:`~repro.engine.ShardedSpade`).
    edge_grouping:
        Defer benign edges and reorder only on urgent ones (Section 4.3).
    coordinator_interval:
        Cross-shard queue length that triggers an eager batch pass
        (sharded engines only).
    executor:
        ``"serial"`` / ``"process"`` — how a sharded engine computes
        per-shard communities (sharded engines only).
    kernel:
        Hot-loop implementation for the peel and reorder inner loops
        (``"python"`` / ``"native"`` / ``"auto"``).  ``"native"`` runs the
        compiled C kernels of :mod:`repro.native` and fails loud
        (:class:`~repro.errors.KernelUnavailableError`) when they cannot
        be built or loaded; ``"auto"`` (default) uses them when available
        and otherwise falls back to the python paths with a single
        ``RuntimeWarning``.  All three produce bit-identical sequences.
    serve:
        Optional nested :class:`~repro.serve.config.ServeConfig` for the
        HTTP serving layer (``python -m repro.serve``).  ``None`` for
        in-process use; a plain mapping is coerced (and validated), so a
        single JSON document configures engine *and* server.  Its
        ``workers`` knob (``>= 2``) moves the shards into resident worker
        *processes* for true multi-core ingest, superseding ``shards``
        for that deployment.
    """

    semantics: str = "DG"
    backend: Optional[str] = None
    static: str = "heap"
    shards: int = 1
    edge_grouping: bool = False
    coordinator_interval: int = 1024
    executor: str = "serial"
    kernel: str = "auto"
    serve: Optional[ServeConfig] = None

    def __post_init__(self) -> None:
        validate_config(
            semantics=self.semantics,
            backend=self.backend,
            static=self.static,
            shards=self.shards,
            executor=self.executor,
            coordinator_interval=self.coordinator_interval,
            kernel=self.kernel,
        )
        if self.serve is not None and not isinstance(self.serve, ServeConfig):
            if isinstance(self.serve, Mapping):
                object.__setattr__(self, "serve", ServeConfig.from_dict(self.serve))
            else:
                raise ConfigError(
                    f"serve must be a ServeConfig, a mapping or None, got {self.serve!r}"
                )

    # ------------------------------------------------------------------ #
    # Round-tripping
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """Export as a plain JSON-serialisable dict (all knobs, always)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "EngineConfig":
        """Build (and validate) a config from a dict; unknown keys fail.

        The inverse of :meth:`to_dict`:
        ``EngineConfig.from_dict(cfg.to_dict()) == cfg`` for every valid
        config.  Missing keys take their defaults, so partial dicts from
        CLI flags or JSON files are fine; unknown keys raise
        :class:`~repro.errors.ConfigError` so typos do not silently
        configure nothing.
        """
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(
                f"unknown EngineConfig keys: {', '.join(unknown)}; "
                f"valid keys: {', '.join(sorted(known))}"
            )
        return cls(**dict(data))

    def replace(self, **changes: object) -> "EngineConfig":
        """Return a copy with the given knobs changed (re-validated)."""
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def semantics_instance(self) -> PeelingSemantics:
        """Instantiate the configured built-in semantics."""
        return semantics_instance(self.semantics)

    def build(self, semantics: Optional[PeelingSemantics] = None):
        """Build the configured detection engine.

        ``semantics`` overrides the named built-in with a custom
        :class:`~repro.peeling.semantics.PeelingSemantics` instance (the
        Listing 1 ``vsusp`` / ``esusp`` plug-in path).  Returns a
        :class:`~repro.engine.protocol.DetectionEngine` — the single
        ``Spade`` for ``shards == 1``, a ``ShardedSpade`` otherwise.
        """
        from repro.engine import create_engine

        instance = semantics if semantics is not None else self.semantics_instance()
        options = {}
        if self.shards > 1:
            options = {
                "coordinator_interval": self.coordinator_interval,
                "executor": self.executor,
            }
        return create_engine(
            instance,
            shards=self.shards,
            edge_grouping=self.edge_grouping,
            backend=self.backend,
            kernel=self.kernel,
            **options,
        )
