"""``SpadeClient``: the config-driven context-manager façade over the engine.

The paper's Listing 1/2 pitch — "load graph, plug in vsusp/esusp, feed
updates" — as one stable v1 surface::

    from repro.api import EngineConfig, Insert, SpadeClient

    with SpadeClient(EngineConfig(semantics="DW", backend="array")) as client:
        client.load(history)                       # static init (Algorithm 1)
        report = client.apply([Insert("u", "v", 3.0)])
        print(report.density, sorted(report.vertices))

One ingestion method (:meth:`SpadeClient.apply`) accepts the whole typed
tagged-union stream (:class:`~repro.api.events.Insert` /
:class:`~repro.api.events.InsertBatch` / :class:`~repro.api.events.Delete`
/ :class:`~repro.api.events.Flush`, plus plain ``EdgeUpdate`` objects and
``(src, dst[, weight])`` tuples) and always returns one structured
:class:`~repro.api.report.DetectionReport`.  The legacy mutator names
remain as thin delegating shims that emit :class:`DeprecationWarning`.

The client never names a concrete engine class: construction goes through
:meth:`EngineConfig.build`, so the single ``Spade``, the hash-partitioned
``ShardedSpade`` and any future native/process-resident backend are
interchangeable behind it.
"""

from __future__ import annotations

import time
import warnings
from typing import Iterable, Mapping, Optional, Sequence, Tuple, Union

from repro.api.config import EngineConfig
from repro.api.events import Delete, Event, Flush, Insert, InsertBatch, as_events
from repro.api.report import DetectionReport, EventOutcome
from repro.config import VALID_SEMANTICS
from repro.core.batch import BatchInput
from repro.errors import StateError
from repro.core.enumeration import CommunityInstance
from repro.core.reorder import ReorderStats
from repro.core.state import Community
from repro.engine.protocol import DetectionEngine
from repro.graph.backend import convert_graph
from repro.graph.csr import CsrSnapshot
from repro.graph.graph import Vertex
from repro.peeling.result import PeelingResult
from repro.peeling.semantics import PeelingSemantics

__all__ = ["SpadeClient"]


def _copy_stats(stats: ReorderStats) -> ReorderStats:
    copied = ReorderStats()
    copied.merge(stats)
    return copied


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"SpadeClient.{old} is deprecated; use SpadeClient.{new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


class SpadeClient:
    """Config-driven façade over a :class:`DetectionEngine`.

    Parameters
    ----------
    config:
        An :class:`EngineConfig`, a plain mapping (passed through
        :meth:`EngineConfig.from_dict`), or ``None`` for all defaults.
        Keyword ``overrides`` are applied on top (re-validated).
    semantics:
        Optional custom :class:`~repro.peeling.semantics.PeelingSemantics`
        instance overriding the config's named built-in (the ``vsusp`` /
        ``esusp`` plug-in path of Listing 1).
    engine:
        Adopt an already-constructed engine instead of building one — the
        interop path for callers that still hold a raw ``Spade`` /
        ``ShardedSpade`` (see :meth:`wrap`).

    The client is a context manager: ``__exit__`` flushes deferred work so
    no accepted update is silently dropped when the block ends.
    """

    def __init__(
        self,
        config: Union[EngineConfig, Mapping[str, object], None] = None,
        *,
        semantics: Optional[PeelingSemantics] = None,
        engine: Optional[DetectionEngine] = None,
        **overrides: object,
    ) -> None:
        if isinstance(config, Mapping):
            config = EngineConfig.from_dict(config)
        elif config is None:
            config = EngineConfig()
        if overrides:
            config = config.replace(**overrides)
        if engine is not None:
            # Adopting: reconcile the config with the engine's actual shape
            # so reports carry truthful provenance.
            config = config.replace(
                shards=getattr(engine, "num_shards", 1),
                backend=engine.backend,
            )
            if engine.semantics.name in VALID_SEMANTICS:
                config = config.replace(semantics=engine.semantics.name)
            self._engine = engine
        else:
            self._engine = config.build(semantics)
        self._config = config

    @classmethod
    def wrap(cls, engine: DetectionEngine) -> "SpadeClient":
        """Adopt an existing engine behind the façade (no copy)."""
        return cls(engine=engine)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def config(self) -> EngineConfig:
        """The validated configuration this client was built from."""
        return self._config

    @property
    def engine(self) -> DetectionEngine:
        """The underlying detection engine (single or sharded)."""
        return self._engine

    @property
    def semantics(self) -> PeelingSemantics:
        """The active peeling semantics."""
        return self._engine.semantics

    @property
    def backend(self) -> str:
        """The resolved graph backend."""
        return self._engine.backend

    @property
    def kernel(self) -> Optional[str]:
        """The requested hot-loop kernel (``None`` = process default)."""
        return getattr(self._engine, "kernel", None)

    @property
    def shards(self) -> int:
        """Number of shard engines behind the façade (1 = single)."""
        return getattr(self._engine, "num_shards", 1)

    @property
    def graph(self):
        """The evolving transaction graph (the global mirror when sharded)."""
        return self._engine.graph

    @property
    def last_stats(self) -> ReorderStats:
        """Cost accounting of the most recent maintenance pass."""
        return self._engine.last_stats

    def pending_edges(self) -> int:
        """Deferred work: benign buffers plus any cross-shard queue."""
        return self._engine.pending_edges()

    def is_benign(self, src: Vertex, dst: Vertex, weight: float = 1.0) -> bool:
        """Classify an incoming transaction (Definition 4.1)."""
        return self._engine.is_benign(src, dst, weight)

    # ------------------------------------------------------------------ #
    # Context management
    # ------------------------------------------------------------------ #
    def __enter__(self) -> "SpadeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Flush deferred work (safe before a graph is loaded)."""
        try:
            self._engine.flush_pending()
        except StateError:
            # Nothing loaded yet — nothing to flush.  Any other failure
            # must propagate: a swallowed flush error would silently drop
            # accepted updates.
            pass

    # ------------------------------------------------------------------ #
    # Report plumbing
    # ------------------------------------------------------------------ #
    def _report(
        self,
        community: Community,
        outcomes: Tuple[EventOutcome, ...] = (),
        stats: Optional[ReorderStats] = None,
        result: Optional[PeelingResult] = None,
        exact: bool = True,
        elapsed: float = 0.0,
    ) -> DetectionReport:
        return DetectionReport(
            community=community,
            outcomes=outcomes,
            stats=stats if stats is not None else ReorderStats(),
            result=result,
            semantics=self._engine.semantics.name,
            backend=self._engine.backend,
            shards=self.shards,
            exact=exact,
            elapsed_seconds=elapsed,
        )

    @staticmethod
    def _community_of(result: PeelingResult) -> Community:
        return Community(result.community, result.best_density, result.best_index)

    # ------------------------------------------------------------------ #
    # Load
    # ------------------------------------------------------------------ #
    def load(
        self,
        source,
        vertex_priors: Optional[Mapping[Vertex, float]] = None,
    ) -> DetectionReport:
        """Load the initial graph and run the static peel (Listing 1 line 8).

        ``source`` is either an already-weighted graph (adopted, converted
        to the configured backend if needed) or an iterable of
        ``(src, dst[, raw_weight])`` transactions weighted by the
        semantics.  Returns the initial detection with the full peeling
        result attached.
        """
        began = time.perf_counter()
        if hasattr(source, "add_edge"):
            if vertex_priors is not None:
                raise TypeError("vertex_priors only apply when loading raw edges")
            result = self._engine.load_graph(source)
        else:
            result = self._engine.load_edges(source, vertex_priors=vertex_priors)
        elapsed = time.perf_counter() - began
        return self._report(
            self._community_of(result), result=result, exact=True, elapsed=elapsed
        )

    # ------------------------------------------------------------------ #
    # The single ingestion method
    # ------------------------------------------------------------------ #
    def apply(self, updates) -> DetectionReport:
        """Apply a stream of update events; return one structured report.

        ``updates`` is anything :func:`repro.api.events.as_events`
        accepts: a single event, an iterable mixing
        :class:`Insert` / :class:`InsertBatch` / :class:`Delete` /
        :class:`Flush` events, plain :class:`~repro.graph.delta.EdgeUpdate`
        objects (``delete`` flag honoured) and ``(src, dst[, weight])``
        tuples, or a whole :class:`~repro.graph.delta.GraphDelta`.

        Each event dispatches to exactly the legacy maintenance path
        (``insert_edge`` / ``insert_batch_edges`` / ``delete_edges`` /
        ``flush_pending``), so the resulting engine state — and the
        returned community — is bit-identical to the equivalent sequence
        of legacy calls.  The report's community is the view after the
        last event: exact for a single engine, the shard-local lower
        bound for a sharded one (``report.exact`` says which).
        """
        engine = self._engine
        outcomes = []
        merged = ReorderStats()
        community: Optional[Community] = None
        began = time.perf_counter()
        for event in as_events(updates):
            if isinstance(event, Insert):
                community = engine.insert_edge(
                    event.src,
                    event.dst,
                    event.weight,
                    timestamp=event.timestamp,
                    src_prior=event.src_prior,
                    dst_prior=event.dst_prior,
                )
                kind, edges = "insert", 1
            elif isinstance(event, InsertBatch):
                community = engine.insert_batch_edges(event.updates)
                kind, edges = "insert_batch", len(event.updates)
            elif isinstance(event, Delete):
                community = engine.delete_edges(event.edges)
                kind, edges = "delete", len(event.edges)
            else:  # Flush
                community = engine.flush_pending()
                kind, edges = "flush", 0
            stats = _copy_stats(engine.last_stats)
            merged.merge(stats)
            outcomes.append(
                EventOutcome(
                    kind=kind,
                    edges=edges,
                    density=community.density,
                    community_size=len(community.vertices),
                    stats=stats,
                )
            )
        elapsed = time.perf_counter() - began
        if community is None:
            # Empty stream: report the current (cheap) view without
            # forcing any deferred work — the shard-local view for a
            # sharded engine, the cached community for a single one
            # (whose detect() never touches the benign buffer).
            local = getattr(engine, "detect_local", None)
            community = local() if local is not None else engine.detect()
        return self._report(
            community,
            outcomes=tuple(outcomes),
            stats=merged,
            exact=self.shards == 1,
            elapsed=elapsed,
        )

    # ------------------------------------------------------------------ #
    # Detection and exports
    # ------------------------------------------------------------------ #
    def detect(self, include_result: bool = False) -> DetectionReport:
        """Return the exact current detection (Listing 1 line 9).

        For a sharded engine this runs the coordinator pass and the merged
        global peel, so it is always the exact community regardless of the
        per-update shard-local views.  ``include_result=True`` attaches
        the full peeling sequence export.
        """
        began = time.perf_counter()
        if include_result:
            result = self._engine.result()
            community = self._community_of(result)
        else:
            result = None
            community = self._engine.detect()
        elapsed = time.perf_counter() - began
        return self._report(community, result=result, exact=True, elapsed=elapsed)

    def flush(self) -> DetectionReport:
        """Force-flush deferred work; equivalent to ``apply([Flush()])``."""
        return self.apply([Flush()])

    def communities(
        self,
        max_instances: int = 10,
        min_density: float = 0.0,
        min_size: int = 2,
    ) -> Sequence[CommunityInstance]:
        """Enumerate individual dense fraud instances (Appendix C.2)."""
        return self._engine.enumerate_frauds(
            max_instances=max_instances,
            min_density=min_density,
            min_size=min_size,
        )

    def snapshot(self) -> CsrSnapshot:
        """Freeze the current graph into an immutable CSR snapshot.

        The snapshot reflects exactly what :meth:`detect` would see (for a
        sharded engine: the coordinator's global mirror).  Graphs on the
        ``dict`` backend are converted to array pools first (a copy);
        ``array`` graphs hit the version-guarded snapshot cache.
        """
        graph = self._engine.graph
        if not hasattr(graph, "freeze"):
            graph = convert_graph(graph, "array")
        return graph.freeze()

    # ------------------------------------------------------------------ #
    # Deprecated legacy shims (kept so migrations can be mechanical)
    # ------------------------------------------------------------------ #
    def insert_edge(
        self,
        src: Vertex,
        dst: Vertex,
        weight: float = 1.0,
        timestamp: Optional[float] = None,
        src_prior: Optional[float] = None,
        dst_prior: Optional[float] = None,
    ) -> Community:
        """Deprecated: use ``apply([Insert(...)])``."""
        _deprecated("insert_edge", "apply([Insert(...)])")
        return self._engine.insert_edge(
            src, dst, weight, timestamp=timestamp, src_prior=src_prior, dst_prior=dst_prior
        )

    def insert_batch_edges(self, batch: BatchInput) -> Community:
        """Deprecated: use ``apply([InsertBatch.of(...)])``."""
        _deprecated("insert_batch_edges", "apply([InsertBatch.of(...)])")
        return self._engine.insert_batch_edges(batch)

    def delete_edges(self, edges: Iterable[Tuple[Vertex, Vertex]]) -> Community:
        """Deprecated: use ``apply([Delete.of(...)])``."""
        _deprecated("delete_edges", "apply([Delete.of(...)])")
        return self._engine.delete_edges(edges)

    def flush_pending(self) -> Community:
        """Deprecated: use ``flush()`` (or ``apply([Flush()])``)."""
        _deprecated("flush_pending", "flush()")
        return self._engine.flush_pending()

    def enumerate_frauds(
        self,
        max_instances: int = 10,
        min_density: float = 0.0,
        min_size: int = 2,
    ) -> Sequence[CommunityInstance]:
        """Deprecated: use ``communities()``."""
        _deprecated("enumerate_frauds", "communities()")
        return self.communities(
            max_instances=max_instances, min_density=min_density, min_size=min_size
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SpadeClient(config={self._config!r}, engine={self._engine!r})"
