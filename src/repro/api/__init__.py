"""``repro.api`` — the stable, versioned public surface (v1).

One config object, one client, one update stream, one report:

* :class:`EngineConfig` — every construction knob (semantics, backend,
  static path, shards, edge grouping, coordinator/executor options) in a
  single validated frozen dataclass with dict/JSON round-tripping;
* :class:`SpadeClient` — the context-manager façade over the engine
  layer: ``load`` / ``apply`` / ``detect`` / ``snapshot`` /
  ``communities``;
* :class:`Insert` / :class:`InsertBatch` / :class:`Delete` /
  :class:`Flush` — the typed tagged-union update stream consumed by
  :meth:`SpadeClient.apply` (interoperable with the structural
  :class:`~repro.graph.delta.EdgeUpdate`);
* :class:`DetectionReport` / :class:`EventOutcome` — the unified
  structured result (community, density, per-event outcomes, reorder
  stats, timing, exactness).

Everything else in the package — the engine internals, the graph
backends, the bench harness — may keep churning behind this surface;
consumers (and the future native backend) program against ``repro.api``
only.
"""

from __future__ import annotations

from repro.api.client import SpadeClient
from repro.api.config import EngineConfig
from repro.api.events import Delete, Event, Flush, Insert, InsertBatch, as_events
from repro.api.report import DetectionReport, EventOutcome
from repro.config import (
    SEMANTICS_FACTORIES,
    VALID_BACKENDS,
    VALID_EXECUTORS,
    VALID_SEMANTICS,
    VALID_STATIC,
    semantics_instance,
    validate_config,
)
from repro.errors import ConfigError

#: The v1 API surface — the contract test snapshots this list.
__all__ = [
    "EngineConfig",
    "SpadeClient",
    "Insert",
    "InsertBatch",
    "Delete",
    "Flush",
    "Event",
    "as_events",
    "DetectionReport",
    "EventOutcome",
    "ConfigError",
    "validate_config",
    "semantics_instance",
    "SEMANTICS_FACTORIES",
    "VALID_BACKENDS",
    "VALID_EXECUTORS",
    "VALID_SEMANTICS",
    "VALID_STATIC",
]
