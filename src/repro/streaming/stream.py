"""Timestamped edge updates and update streams (``ΔG_τ`` in the paper).

Section 4.3 models the arriving transactions as an update stream
``ΔG_τ = [(e_0, τ_0), ..., (e_n, τ_n)]`` with a timestamp per edge.  The
:class:`TimestampedEdge` record additionally carries the raw transaction
weight, an optional fraud label (the injected ground-truth community the
edge belongs to) and the vertex priors, so the same object flows through
workload generation, replay and metric computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import StreamError
from repro.graph.delta import EdgeUpdate
from repro.graph.graph import Vertex

__all__ = ["TimestampedEdge", "UpdateStream"]


@dataclass(frozen=True)
class TimestampedEdge:
    """One streamed transaction."""

    src: Vertex
    dst: Vertex
    timestamp: float
    weight: float = 1.0
    #: Ground-truth fraud community identifier, or ``None`` for benign edges.
    fraud_label: Optional[str] = None
    src_prior: float = 0.0
    dst_prior: float = 0.0

    @property
    def is_fraud(self) -> bool:
        """Whether this transaction belongs to a labelled fraud community."""
        return self.fraud_label is not None

    def as_update(self) -> EdgeUpdate:
        """Convert to the structural :class:`EdgeUpdate` consumed by Spade."""
        return EdgeUpdate(
            src=self.src,
            dst=self.dst,
            weight=self.weight,
            # A zero stream prior means "unspecified" (the stream layer's
            # historical convention); map it to EdgeUpdate's None so the
            # engine falls back to the semantics' vsusp.
            src_weight=self.src_prior if self.src_prior else None,
            dst_weight=self.dst_prior if self.dst_prior else None,
        )

    def shifted(self, delta: float) -> "TimestampedEdge":
        """Return a copy with the timestamp shifted by ``delta``."""
        return replace(self, timestamp=self.timestamp + delta)


class UpdateStream:
    """An ordered sequence of :class:`TimestampedEdge`.

    The stream enforces non-decreasing timestamps (the paper replays edges
    in increasing timestamp order) and offers the slicing and batching
    helpers the replay driver and the benchmarks need.
    """

    def __init__(self, edges: Iterable[TimestampedEdge], sort: bool = False) -> None:
        items = list(edges)
        if sort:
            items.sort(key=lambda e: e.timestamp)
        for earlier, later in zip(items, items[1:]):
            if later.timestamp < earlier.timestamp:
                raise StreamError(
                    "update stream timestamps must be non-decreasing; "
                    f"{later.timestamp} follows {earlier.timestamp}"
                )
        self._edges: List[TimestampedEdge] = items

    # ------------------------------------------------------------------ #
    # Container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._edges)

    def __iter__(self) -> Iterator[TimestampedEdge]:
        return iter(self._edges)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return UpdateStream(self._edges[index])
        return self._edges[index]

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #
    @property
    def edges(self) -> Sequence[TimestampedEdge]:
        """The underlying edge list (read-only by convention)."""
        return self._edges

    def span(self) -> Tuple[float, float]:
        """Return ``(first_timestamp, last_timestamp)`` (0, 0 when empty)."""
        if not self._edges:
            return (0.0, 0.0)
        return (self._edges[0].timestamp, self._edges[-1].timestamp)

    def fraud_edges(self) -> List[TimestampedEdge]:
        """Return only the labelled fraudulent transactions."""
        return [e for e in self._edges if e.is_fraud]

    def fraud_labels(self) -> List[str]:
        """Return the distinct fraud community labels, in first-seen order."""
        seen = []
        known = set()
        for edge in self._edges:
            if edge.fraud_label is not None and edge.fraud_label not in known:
                known.add(edge.fraud_label)
                seen.append(edge.fraud_label)
        return seen

    def batches(self, size: int) -> Iterator[List[TimestampedEdge]]:
        """Yield consecutive batches of ``size`` edges (last may be shorter)."""
        if size <= 0:
            raise ValueError(f"batch size must be positive, got {size}")
        for start in range(0, len(self._edges), size):
            yield self._edges[start : start + size]

    def window(self, start: float, end: float) -> "UpdateStream":
        """Return the sub-stream with ``start <= timestamp < end``."""
        return UpdateStream([e for e in self._edges if start <= e.timestamp < end])

    def merged_with(self, other: "UpdateStream") -> "UpdateStream":
        """Merge two streams preserving timestamp order."""
        return UpdateStream(list(self._edges) + list(other.edges), sort=True)

    def as_timestamped_updates(self) -> List[Tuple[float, EdgeUpdate]]:
        """Export as ``(timestamp, EdgeUpdate)`` pairs for the window detector."""
        return [(e.timestamp, e.as_update()) for e in self._edges]

    @classmethod
    def from_tuples(cls, rows: Iterable[tuple]) -> "UpdateStream":
        """Build a stream from ``(src, dst, timestamp[, weight])`` tuples."""
        edges = []
        for row in rows:
            if len(row) == 3:
                edges.append(TimestampedEdge(row[0], row[1], float(row[2])))
            else:
                edges.append(TimestampedEdge(row[0], row[1], float(row[2]), float(row[3])))
        return cls(edges, sort=True)
