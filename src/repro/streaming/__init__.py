"""Streaming substrate: timestamped updates, clocks, policies and metrics.

The evaluation of the paper is entirely stream-driven: edges are replayed
in timestamp order, the detector processes them under some batching policy,
and two effectiveness metrics are reported —

* the **latency** ``L(ΔG_τ)`` of Equation 4 (response time minus generation
  time, summed over labelled fraudulent activities), and
* the **prevention ratio** ``R``: the fraction of a fraudster's transactions
  that arrive *after* the fraudster was first recognised and can therefore
  be blocked.

This subpackage provides the pieces shared by every experiment:

* :mod:`repro.streaming.stream` — timestamped edges and update streams;
* :mod:`repro.streaming.clock` — the simulated event-time clock that maps
  measured compute times back into stream time;
* :mod:`repro.streaming.policies` — the processing policies compared in the
  paper (periodic static re-peel, per-edge incremental, fixed-size batches,
  edge grouping);
* :mod:`repro.streaming.metrics` — latency and prevention-ratio accounting;
* :mod:`repro.streaming.replay` — the replay driver that feeds a stream to
  a detector under a policy and collects the metrics.
"""

from repro.streaming.stream import TimestampedEdge, UpdateStream
from repro.streaming.clock import SimulatedClock
from repro.streaming.metrics import LatencyTracker, PreventionTracker, StreamMetrics
from repro.streaming.policies import (
    BatchPolicy,
    EdgeGroupingPolicy,
    PerEdgePolicy,
    PeriodicStaticPolicy,
    ProcessingPolicy,
)
from repro.streaming.replay import ReplayReport, replay_stream

__all__ = [
    "TimestampedEdge",
    "UpdateStream",
    "SimulatedClock",
    "LatencyTracker",
    "PreventionTracker",
    "StreamMetrics",
    "ProcessingPolicy",
    "PerEdgePolicy",
    "BatchPolicy",
    "EdgeGroupingPolicy",
    "PeriodicStaticPolicy",
    "ReplayReport",
    "replay_stream",
]
