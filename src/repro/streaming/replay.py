"""The stream replay driver: feed a stream to Spade under a policy.

Every evaluation experiment boils down to the same loop:

1. load the initial graph (90 % of the edges, per the paper's setup);
2. replay the increments in timestamp order under a processing policy;
3. measure, per flush, the compute time of maintenance + detection;
4. convert compute times into response times with the simulated clock;
5. accumulate latency (Equation 4), prevention ratio and per-edge elapsed
   time.

:func:`replay_stream` implements that loop once so that Table 4, Table 5,
Figure 9(a), Figure 10 and Figure 11 all measure policies identically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import AbstractSet, Dict, Mapping, Optional, Sequence, Union

from repro.api.client import SpadeClient
from repro.api.events import Delete
from repro.engine.protocol import DetectionEngine
from repro.graph.graph import Vertex
from repro.streaming.clock import SimulatedClock
from repro.streaming.metrics import LatencyTracker, PreventionTracker, StreamMetrics
from repro.streaming.policies import ProcessingPolicy
from repro.streaming.stream import TimestampedEdge, UpdateStream

__all__ = ["ReplayReport", "replay_stream"]


@dataclass
class ReplayReport:
    """Everything measured while replaying one (stream, policy) pair."""

    metrics: StreamMetrics
    latency: LatencyTracker
    prevention: PreventionTracker
    #: Compute seconds spent per flush (maintenance + detection).
    flush_durations: Sequence[float] = field(default_factory=list)
    #: Stream time at which each labelled community was first recognised.
    detection_times: Dict[str, float] = field(default_factory=dict)

    @property
    def name(self) -> str:
        """The policy name the report belongs to."""
        return self.metrics.name

    def summary(self) -> str:
        """Return a one-line human-readable summary."""
        m = self.metrics
        return (
            f"{m.name}: {m.edges} edges, {m.flushes} flushes, "
            f"E={m.mean_elapsed_per_edge * 1e6:.1f}us/edge, "
            f"L={m.total_latency:.3f}s, R={m.prevention_ratio:.2%}"
        )


def _check_detections(
    community: AbstractSet[Vertex],
    fraud_communities: Mapping[str, AbstractSet[Vertex]],
    prevention: PreventionTracker,
    now: float,
    min_overlap: float,
) -> None:
    """Mark fraud communities whose members appear in the detected community."""
    for label, members in fraud_communities.items():
        if prevention.detection_time(label) is not None:
            continue
        if not members:
            continue
        hits = sum(1 for vertex in members if vertex in community)
        if hits / len(members) >= min_overlap:
            prevention.record_detection(label, now)


def replay_stream(
    spade: Union[SpadeClient, DetectionEngine],
    stream: UpdateStream,
    policy: ProcessingPolicy,
    fraud_communities: Optional[Mapping[str, AbstractSet[Vertex]]] = None,
    clock: Optional[SimulatedClock] = None,
    detection_overlap: float = 0.5,
    detect_after_flush: bool = True,
    ban_detected: bool = False,
) -> ReplayReport:
    """Replay ``stream`` into ``spade`` under ``policy`` and measure it.

    Parameters
    ----------
    spade:
        A :class:`~repro.api.SpadeClient` — or a raw detection engine
        (single ``Spade`` or ``ShardedSpade``), which is wrapped into one
        — with the initial graph already loaded.  All maintenance goes
        through the public façade (:meth:`SpadeClient.apply` /
        :meth:`SpadeClient.detect`), so the replay measures exactly what a
        consumer of the v1 API would observe.
    stream:
        The timestamped increments, replayed in order.
    policy:
        Decides when flushes happen and how they are applied.
    fraud_communities:
        Ground-truth fraud label -> member vertices, used for the prevention
        ratio.  Omit for pure efficiency experiments.
    clock:
        The simulated event-time clock; a fresh one is created by default
        and initialised to the first stream timestamp.
    detection_overlap:
        Fraction of a fraud community's members that must appear in the
        detected dense community before the community counts as recognised.
    detect_after_flush:
        When true (default) a detection is performed after every flush and
        is included in the measured compute time — matching the paper's
        ``InsertEdge``/``InsertBatchEdges`` API, which returns the new
        fraudsters.
    ban_detected:
        When true, a freshly recognised fraud community is *banned*: all of
        its incident edges are removed from the graph, mirroring step 4 of
        Grab's pipeline (Figure 1).  Banning is the moderator's action and
        is therefore excluded from the measured compute time; it lets later
        fraud bursts surface as the new densest community.
    """
    client = spade if isinstance(spade, SpadeClient) else SpadeClient.wrap(spade)
    fraud_communities = fraud_communities or {}
    latency = LatencyTracker()
    prevention = PreventionTracker()
    flush_durations = []

    if clock is None:
        clock = SimulatedClock()
    start_ts, _end_ts = stream.span()
    clock.reset(start_ts)

    for edge in stream:
        if edge.is_fraud:
            prevention.record_transaction(edge)

    processed_edges = 0
    banned_labels: set = set()

    def ban_new_detections() -> None:
        """Moderator action: remove the edges of freshly recognised communities."""
        for label, members in fraud_communities.items():
            if label in banned_labels or prevention.detection_time(label) is None:
                continue
            banned_labels.add(label)
            graph = client.graph
            doomed = []
            for vertex in members:
                if not graph.has_vertex(vertex):
                    continue
                doomed.extend((vertex, dst) for dst in list(graph.out_neighbors(vertex)))
                doomed.extend((src, vertex) for src in list(graph.in_neighbors(vertex)))
            if doomed:
                client.apply([Delete.of(doomed)])

    def run_flush(batch: Sequence[TimestampedEdge], arrival: float) -> None:
        nonlocal processed_edges
        queue_start = max(clock.now, arrival)
        began = time.perf_counter()
        policy.process(client, batch)
        if detect_after_flush:
            community = client.detect().vertices
        else:
            community = frozenset()
        duration = time.perf_counter() - began
        finish = clock.process(arrival, duration)
        flush_durations.append(duration)
        latency.record_batch(batch, queue_start, finish)
        processed_edges += len(batch)
        if fraud_communities and detect_after_flush:
            _check_detections(community, fraud_communities, prevention, finish, detection_overlap)
            if ban_detected:
                ban_new_detections()

    for edge in stream:
        if ban_detected and edge.fraud_label in banned_labels:
            # The community was already recognised and banned: this
            # transaction is blocked by the moderator and never reaches the
            # graph.  It still counts towards the prevention ratio (it was
            # recorded above and arrives after the detection time).
            continue
        batch = policy.offer(client, edge)
        if batch:
            run_flush(batch, arrival=edge.timestamp)

    leftover = policy.drain()
    if leftover:
        run_flush(leftover, arrival=leftover[-1].timestamp)

    total_compute = float(sum(flush_durations))
    metrics = StreamMetrics(
        name=policy.name,
        mean_elapsed_per_edge=(total_compute / processed_edges) if processed_edges else 0.0,
        total_latency=latency.total_latency(fraud_only=True),
        mean_latency=latency.mean_latency(fraud_only=True),
        queueing_share=latency.queueing_share(fraud_only=True),
        prevention_ratio=prevention.overall_prevention_ratio(),
        edges=processed_edges,
        flushes=len(flush_durations),
    )
    return ReplayReport(
        metrics=metrics,
        latency=latency,
        prevention=prevention,
        flush_durations=flush_durations,
        detection_times={label: t for label in prevention.labels() if (t := prevention.detection_time(label)) is not None},
    )
