"""Processing policies compared in the paper's evaluation.

A *policy* decides when buffered stream edges are handed to the detector
and how they are applied:

* :class:`PeriodicStaticPolicy` — the pre-Spade baseline (Figure 1): edges
  accumulate and every ``period`` stream-seconds the whole graph is
  re-peeled from scratch (DG / DW / FD).
* :class:`PerEdgePolicy` — incremental maintenance per edge insertion
  (Section 4.1); ``IncDG`` / ``IncDW`` / ``IncFD`` with ``|ΔE| = 1``.
* :class:`BatchPolicy` — incremental maintenance in batches of a fixed
  number of edges (Algorithm 2); ``Inc*-x`` in the paper's notation.
* :class:`EdgeGroupingPolicy` — benign edges are deferred, urgent edges
  flush the buffer immediately (Algorithm 3); ``Inc*G`` in the paper.

Policies only decide *when* to flush and *how* the flush is executed; all
timing, latency and prevention accounting lives in
:mod:`repro.streaming.replay` so that every policy is measured identically.

Policies speak the v1 public API: each flush is applied through
:meth:`repro.api.SpadeClient.apply` with the typed event stream
(:class:`~repro.api.events.Insert` / :class:`~repro.api.events.InsertBatch`),
so the same policy drives any engine the façade can host.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Sequence

from repro.api.client import SpadeClient
from repro.api.events import Insert, InsertBatch
from repro.streaming.stream import TimestampedEdge

__all__ = [
    "ProcessingPolicy",
    "PerEdgePolicy",
    "BatchPolicy",
    "EdgeGroupingPolicy",
    "PeriodicStaticPolicy",
]


def _as_client(spade) -> SpadeClient:
    """Accept either a :class:`SpadeClient` or a raw engine (wrapped).

    The replay driver always hands policies a client; the raw-engine
    path keeps direct callers (tests, notebooks) working unchanged.
    """
    if isinstance(spade, SpadeClient):
        return spade
    return SpadeClient.wrap(spade)


class ProcessingPolicy(ABC):
    """Decides when to flush buffered edges and how to apply a flush."""

    #: Human-readable policy name used in benchmark tables.
    name: str = "policy"

    @abstractmethod
    def offer(self, client: SpadeClient, edge: TimestampedEdge) -> Optional[List[TimestampedEdge]]:
        """Feed one edge; return a batch if it should be processed now."""

    def drain(self) -> Optional[List[TimestampedEdge]]:
        """Return whatever is still buffered at end of stream (may be None)."""
        return None

    def process(self, client: SpadeClient, batch: Sequence[TimestampedEdge]) -> None:
        """Apply a flushed batch (default: incremental batch insertion)."""
        _as_client(client).apply([InsertBatch.of([e.as_update() for e in batch])])

    def describe(self) -> str:
        """Return a one-line description for reports."""
        return self.name


class PerEdgePolicy(ProcessingPolicy):
    """Process every edge immediately with single-edge maintenance."""

    def __init__(self, label: Optional[str] = None) -> None:
        self.name = label or "inc-per-edge"

    def offer(self, client: SpadeClient, edge: TimestampedEdge) -> Optional[List[TimestampedEdge]]:
        return [edge]

    def process(self, client: SpadeClient, batch: Sequence[TimestampedEdge]) -> None:
        _as_client(client).apply(
            Insert(e.src, e.dst, e.weight, timestamp=e.timestamp) for e in batch
        )


class BatchPolicy(ProcessingPolicy):
    """Process edges in fixed-size batches (Algorithm 2)."""

    def __init__(self, batch_size: int, label: Optional[str] = None) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch size must be positive, got {batch_size}")
        self.batch_size = batch_size
        self.name = label or f"inc-batch-{batch_size}"
        self._buffer: List[TimestampedEdge] = []

    def offer(self, client: SpadeClient, edge: TimestampedEdge) -> Optional[List[TimestampedEdge]]:
        self._buffer.append(edge)
        if len(self._buffer) >= self.batch_size:
            batch, self._buffer = self._buffer, []
            return batch
        return None

    def drain(self) -> Optional[List[TimestampedEdge]]:
        if not self._buffer:
            return None
        batch, self._buffer = self._buffer, []
        return batch


class EdgeGroupingPolicy(ProcessingPolicy):
    """Defer benign edges, flush immediately on urgent ones (Algorithm 3)."""

    def __init__(
        self,
        label: Optional[str] = None,
        max_buffer: Optional[int] = None,
    ) -> None:
        self.name = label or "inc-grouping"
        self.max_buffer = max_buffer
        self._buffer: List[TimestampedEdge] = []
        self.urgent_flushes = 0
        self.forced_flushes = 0

    def offer(self, client: SpadeClient, edge: TimestampedEdge) -> Optional[List[TimestampedEdge]]:
        self._buffer.append(edge)
        urgent = not client.is_benign(edge.src, edge.dst, edge.weight)
        full = self.max_buffer is not None and len(self._buffer) >= self.max_buffer
        if urgent or full:
            if urgent:
                self.urgent_flushes += 1
            else:
                self.forced_flushes += 1
            batch, self._buffer = self._buffer, []
            return batch
        return None

    def drain(self) -> Optional[List[TimestampedEdge]]:
        if not self._buffer:
            return None
        batch, self._buffer = self._buffer, []
        return batch


class PeriodicStaticPolicy(ProcessingPolicy):
    """The static baseline: re-peel the whole graph every ``period`` seconds.

    This reproduces Grab's pre-Spade pipeline where DG / DW / FD is run on a
    periodic snapshot of the transaction graph; the period in the paper's
    case studies is roughly one static-run duration (~30–60 s).
    """

    def __init__(self, period: float, label: Optional[str] = None) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.period = period
        self.name = label or f"static-every-{period:g}s"
        self._buffer: List[TimestampedEdge] = []
        self._next_deadline: Optional[float] = None

    def offer(self, client: SpadeClient, edge: TimestampedEdge) -> Optional[List[TimestampedEdge]]:
        if self._next_deadline is None:
            self._next_deadline = edge.timestamp + self.period
        self._buffer.append(edge)
        if edge.timestamp >= self._next_deadline:
            self._next_deadline += self.period
            batch, self._buffer = self._buffer, []
            return batch
        return None

    def drain(self) -> Optional[List[TimestampedEdge]]:
        if not self._buffer:
            return None
        batch, self._buffer = self._buffer, []
        return batch

    def process(self, client: SpadeClient, batch: Sequence[TimestampedEdge]) -> None:
        """Apply the batch structurally, then recompute the peel from scratch."""
        client = _as_client(client)
        graph = client.graph
        semantics = client.semantics
        for edge in batch:
            for vertex, prior in ((edge.src, edge.src_prior), (edge.dst, edge.dst_prior)):
                if not graph.has_vertex(vertex):
                    graph.add_vertex(vertex, prior or semantics.vertex_weight(vertex, graph))
            weight = semantics.edge_weight(edge.src, edge.dst, edge.weight, graph)
            graph.add_edge(edge.src, edge.dst, weight)
        # Re-running the static algorithm is exactly "detect from scratch".
        client.load(graph)
