"""A simulated event-time clock for stream replay.

The paper's latency metric (Equation 4) is defined over *stream* time: an
edge generated at ``τ_i`` is responded to at ``τ_i^r`` and the latency is
their difference.  When replaying a recorded stream faster than real time —
which every experiment does — the response time has to be simulated: the
detector is a single-threaded server whose service times are the *measured*
compute times of the reordering calls, while arrivals follow the recorded
timestamps.  :class:`SimulatedClock` implements exactly that single-server
queueing behaviour, with an optional scale factor so that compute measured
on a slower substrate (pure Python instead of C++) can be mapped onto the
stream's real-time axis without changing the relative comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SimulatedClock"]


@dataclass
class SimulatedClock:
    """Single-server event-time clock.

    Attributes
    ----------
    compute_scale:
        Multiplier applied to measured compute durations before they are
        charged against stream time.  ``1.0`` charges them verbatim;
        experiments that only compare policies typically leave it at 1.
    now:
        The time at which the detector becomes free.
    """

    compute_scale: float = 1.0
    now: float = 0.0
    busy_time: float = 0.0
    processed_batches: int = 0

    def reset(self, start: float = 0.0) -> None:
        """Reset the clock to ``start``."""
        self.now = start
        self.busy_time = 0.0
        self.processed_batches = 0

    def process(self, arrival: float, compute_seconds: float) -> float:
        """Account for one processing step and return its completion time.

        ``arrival`` is the stream timestamp at which the work became
        available (for a batch: the timestamp of the edge that triggered the
        flush).  Processing starts when both the work has arrived and the
        server is free, and lasts ``compute_seconds * compute_scale``.
        """
        start = max(self.now, arrival)
        duration = compute_seconds * self.compute_scale
        finish = start + duration
        self.now = finish
        self.busy_time += duration
        self.processed_batches += 1
        return finish

    def utilisation(self, horizon: float) -> float:
        """Return the fraction of ``horizon`` spent computing (diagnostics)."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time / horizon)
