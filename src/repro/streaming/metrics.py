"""Latency and prevention-ratio metrics (Section 4.3, Figure 8).

For every labelled fraudulent transaction ``e_i`` generated at ``τ_i``:

* **queueing time** is ``τ_s - τ_i`` where ``τ_s`` is when the batch
  containing the edge starts being processed;
* **latency** is ``τ_f - τ_i`` where ``τ_f`` is when processing finishes —
  the edge has then been *responded to* (Equation 4 sums these);
* the **prevention ratio** of a fraud community is the fraction of its
  transactions generated *after* the community was first recognised; those
  are the transactions a moderator can block.

:class:`LatencyTracker` accumulates the first two per edge;
:class:`PreventionTracker` accumulates the third per fraud label;
:class:`StreamMetrics` bundles the aggregate numbers reported by the
benchmark tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.streaming.stream import TimestampedEdge

__all__ = ["LatencyRecord", "LatencyTracker", "PreventionTracker", "StreamMetrics"]


@dataclass(frozen=True)
class LatencyRecord:
    """Timing of one responded transaction."""

    timestamp: float
    queue_start: float
    response_time: float
    is_fraud: bool

    @property
    def latency(self) -> float:
        """``τ_f - τ_i`` (Equation 4 summand)."""
        return self.response_time - self.timestamp

    @property
    def queueing_time(self) -> float:
        """``τ_s - τ_i``."""
        return self.queue_start - self.timestamp


class LatencyTracker:
    """Accumulates per-edge response latencies during a replay."""

    def __init__(self) -> None:
        self._records: List[LatencyRecord] = []

    def record_batch(
        self,
        edges: Sequence[TimestampedEdge],
        queue_start: float,
        response_time: float,
    ) -> None:
        """Record that ``edges`` were processed together.

        ``queue_start`` is when the batch started being processed and
        ``response_time`` when it finished; every edge in the batch shares
        them (the paper's batching model, Figure 8).
        """
        for edge in edges:
            self._records.append(
                LatencyRecord(
                    timestamp=edge.timestamp,
                    queue_start=queue_start,
                    response_time=response_time,
                    is_fraud=edge.is_fraud,
                )
            )

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> Sequence[LatencyRecord]:
        """All recorded responses."""
        return self._records

    def total_latency(self, fraud_only: bool = True) -> float:
        """Return ``L(ΔG_τ)`` (Equation 4): the summed latency."""
        return float(
            sum(r.latency for r in self._records if r.is_fraud or not fraud_only)
        )

    def mean_latency(self, fraud_only: bool = True) -> float:
        """Return the mean per-edge latency."""
        values = [r.latency for r in self._records if r.is_fraud or not fraud_only]
        return float(np.mean(values)) if values else 0.0

    def mean_queueing_time(self, fraud_only: bool = True) -> float:
        """Return the mean per-edge queueing time."""
        values = [r.queueing_time for r in self._records if r.is_fraud or not fraud_only]
        return float(np.mean(values)) if values else 0.0

    def queueing_share(self, fraud_only: bool = True) -> float:
        """Return the fraction of total latency that is queueing time.

        The paper observes this is 99.99 % for large batches: almost all of
        the response delay is waiting for the batch to fill up.
        """
        latency = self.total_latency(fraud_only=fraud_only)
        if latency <= 0:
            return 0.0
        queueing = sum(
            r.queueing_time for r in self._records if r.is_fraud or not fraud_only
        )
        return float(queueing / latency)

    def percentile_latency(self, percentile: float, fraud_only: bool = True) -> float:
        """Return a latency percentile (e.g. 99 for p99)."""
        values = [r.latency for r in self._records if r.is_fraud or not fraud_only]
        return float(np.percentile(values, percentile)) if values else 0.0


class PreventionTracker:
    """Computes the prevention ratio ``R`` per fraud community and overall."""

    def __init__(self) -> None:
        #: label -> timestamps of that community's transactions.
        self._transactions: Dict[str, List[float]] = {}
        #: label -> stream time at which the community was first recognised.
        self._detection_time: Dict[str, float] = {}

    def record_transaction(self, edge: TimestampedEdge) -> None:
        """Register one labelled fraudulent transaction."""
        if edge.fraud_label is None:
            return
        self._transactions.setdefault(edge.fraud_label, []).append(edge.timestamp)

    def record_detection(self, label: str, time: float) -> None:
        """Register that the community ``label`` was recognised at ``time``.

        Only the earliest detection matters.
        """
        current = self._detection_time.get(label)
        if current is None or time < current:
            self._detection_time[label] = time

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #
    def labels(self) -> List[str]:
        """Return every fraud label with at least one transaction."""
        return sorted(self._transactions)

    def detection_time(self, label: str) -> Optional[float]:
        """Return the first detection time of ``label`` (None if never)."""
        return self._detection_time.get(label)

    def prevention_ratio(self, label: str) -> float:
        """Return ``R`` for one community: share of transactions after detection."""
        timestamps = self._transactions.get(label, [])
        if not timestamps:
            return 0.0
        detected_at = self._detection_time.get(label)
        if detected_at is None:
            return 0.0
        prevented = sum(1 for t in timestamps if t > detected_at)
        return prevented / len(timestamps)

    def overall_prevention_ratio(self) -> float:
        """Return ``R`` pooled over all labelled communities."""
        total = 0
        prevented = 0
        for label, timestamps in self._transactions.items():
            detected_at = self._detection_time.get(label)
            total += len(timestamps)
            if detected_at is None:
                continue
            prevented += sum(1 for t in timestamps if t > detected_at)
        return prevented / total if total else 0.0

    def detection_delays(self) -> Dict[str, float]:
        """Return, per label, the delay between its first transaction and detection."""
        delays = {}
        for label, timestamps in self._transactions.items():
            detected_at = self._detection_time.get(label)
            if detected_at is None or not timestamps:
                continue
            delays[label] = detected_at - min(timestamps)
        return delays


@dataclass
class StreamMetrics:
    """Aggregate numbers reported for one replayed configuration."""

    #: Identifier of the policy / algorithm (``IncFD-1K``, ``IncDGG``...).
    name: str
    #: Mean elapsed compute time per edge, in seconds (column E of Table 5).
    mean_elapsed_per_edge: float
    #: Total latency of labelled fraud (Equation 4), in stream seconds.
    total_latency: float
    #: Mean per-edge latency of labelled fraud, in stream seconds.
    mean_latency: float
    #: Fraction of the latency that is queueing time.
    queueing_share: float
    #: Overall prevention ratio R.
    prevention_ratio: float
    #: Number of edges processed.
    edges: int
    #: Number of reordering / detection invocations.
    flushes: int
    #: Extra per-experiment numbers (batch size, dataset name, ...).
    extra: Dict[str, float] = field(default_factory=dict)

    def as_row(self) -> Dict[str, object]:
        """Flatten into a dict for table rendering."""
        row: Dict[str, object] = {
            "name": self.name,
            "E (us/edge)": round(self.mean_elapsed_per_edge * 1e6, 3),
            "L total (s)": round(self.total_latency, 6),
            "L mean (s)": round(self.mean_latency, 6),
            "queueing share": round(self.queueing_share, 6),
            "R": round(self.prevention_ratio, 4),
            "edges": self.edges,
            "flushes": self.flushes,
        }
        row.update(self.extra)
        return row
