"""Time-travel reads: reconstruct the graph at any past WAL sequence.

The write-ahead log is a total order over every accepted operation, so
"the graph as of sequence ``S``" is fully determined: load the nearest
checkpoint at or below ``S`` and replay the WAL records with
``seq <= S`` through the same pool-faithful path crash recovery uses
(:func:`repro.serve.recovery.graph_from_snapshot` + ``client.apply``
with identical rejection-skipping).  Because that path is bit-identical
to the original process — checkpoint zero, which carries the initial
edge list, is never pruned — ``detect?asof=S`` equals an offline engine
replayed through exactly the first ``S`` operations; the hypothesis
property test in ``tests/test_history.py`` pins this across checkpoint
boundaries.

Reconstruction costs a checkpoint load plus a WAL-suffix replay, so the
service keeps a small LRU cache of frozen :class:`CsrSnapshot` s keyed
by sequence.  Cached reads are plain snapshot peels — the same price as
a live ``/v1/detect``.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.api.client import SpadeClient
from repro.api.config import EngineConfig
from repro.core.enumeration import CommunityInstance, enumerate_csr
from repro.errors import AsofRangeError, ReproError
from repro.graph.csr import CsrSnapshot
from repro.peeling.semantics import PeelingSemantics
from repro.peeling.static import peel_csr
from repro.serve.recovery import CheckpointStore, graph_from_snapshot
from repro.serve.wal import WriteAheadLog, iter_ops

__all__ = ["AsofService", "paginate_instances"]


def paginate_instances(
    instances: List[CommunityInstance],
    start: int,
    limit: int,
) -> Tuple[List[CommunityInstance], bool, Optional[int]]:
    """Slice one page out of an enumeration fetched with one extra row.

    ``instances`` must have been enumerated with ``max_instances >=
    start + limit + 1`` so the extra row makes ``has_more`` exact.
    Returns ``(page, has_more, next_rank)`` where ``next_rank`` is the
    keyset position a follow-up cursor resumes after.
    """
    page = instances[start : start + limit]
    has_more = len(instances) > start + limit
    next_rank = page[-1].rank if page else None
    return page, has_more, next_rank


class AsofService:
    """Reconstruct, cache, and query graph states at past WAL sequences."""

    def __init__(
        self,
        config: EngineConfig,
        semantics: Optional[PeelingSemantics] = None,
        cache_size: int = 8,
        counters: Optional[Dict[str, Callable[[], None]]] = None,
    ) -> None:
        serve = config.serve
        if serve is None or serve.wal_dir is None:
            raise ReproError("as-of reads require a WAL directory")
        self._wal_dir = Path(serve.wal_dir)
        self._wal_path = WriteAheadLog.path_in(self._wal_dir)
        # Replay single-engine with no serving section: the merged sharded
        # detect is bit-identical to a single engine (the PR 3 guarantee),
        # and a past state needs no workers, batching, or fault knobs.
        self._config = config.replace(serve=None, shards=1)
        self._semantics = semantics
        self._semantics_name = (
            semantics.name if semantics is not None else self._config.semantics
        )
        self._cache: "OrderedDict[int, CsrSnapshot]" = OrderedDict()
        self._cache_size = max(1, int(cache_size))
        self._lock = threading.Lock()
        # Plain ints under _lock; /healthz reads them, /metrics mirrors
        # them through the hooks below when the app wires counters in.
        self.hits = 0
        self.misses = 0
        self.reconstruct_seconds = 0.0
        self._counters = counters or {}

    # ------------------------------------------------------------------ #
    # Reconstruction
    # ------------------------------------------------------------------ #
    def client_at(self, seq: int) -> SpadeClient:
        """A fresh single-engine client replayed to exactly sequence ``seq``."""
        return self.client_with_position(seq)[0]

    def client_with_position(
        self, seq: int
    ) -> Tuple[SpadeClient, int, int]:
        """``(client, wal_offset, at_seq)`` replayed to sequence ``seq``.

        The as-of core, shared with the history indexer (which keeps the
        returned client resident and streams further ops into it from
        ``wal_offset``).  ``at_seq`` is the sequence the client actually
        reflects — equal to ``seq`` whenever the WAL reaches it.
        """
        store = CheckpointStore(self._wal_dir)
        checkpoint = store.latest(max_seq=seq)
        client = SpadeClient(self._config, semantics=self._semantics)
        if checkpoint is not None:
            snapshot, meta = checkpoint
            graph = graph_from_snapshot(snapshot, backend=client.backend)
            client.engine.load_graph(graph)
            offset = int(meta["wal_offset"])
            at_seq = int(meta["wal_seq"])
            if at_seq >= seq:
                return client, offset, at_seq  # covered exactly
        else:
            # No checkpoint at or below seq.  Checkpoint zero is
            # prune-exempt, so this is a deployment that never cut one (or
            # a pre-time-travel directory): replay the whole prefix from
            # an empty graph, which is correct whenever the WAL is the
            # full history.
            client.load([])
            offset = 0
            at_seq = 0
        _, offset, at_seq = self.replay_into(client, offset, seq, at_seq)
        return client, offset, at_seq

    def replay_into(
        self, client: SpadeClient, offset: int, seq: int, at_seq: int = 0
    ) -> Tuple[int, int, int]:
        """Apply WAL records from byte ``offset`` with record seq <= ``seq``.

        Mirrors :func:`repro.serve.recovery.recover`'s replay loop exactly
        (same rejection-skipping), which is what keeps as-of states in
        lockstep with what the live process computed.  Returns
        ``(applied, next_offset, at_seq)`` where ``next_offset`` is the
        byte just past the last applied record — the position a resident
        client resumes streaming from.
        """
        applied = 0
        if not self._wal_path.exists():
            return applied, offset, at_seq
        scan = iter_ops(self._wal_path, offset)
        try:
            for rec_seq, op in scan:
                if rec_seq > seq:
                    break
                try:
                    client.apply([op])
                except (ReproError, TypeError, ValueError):
                    # Deterministic engine rejection the original process
                    # also hit (and answered 400 for); skipping reproduces
                    # its partial effect identically.
                    pass
                applied += 1
                offset = scan.next_offset
                at_seq = rec_seq
        finally:
            scan.close()
        return applied, offset, at_seq

    def head_seq(self) -> int:
        """Last durable WAL sequence, probed from disk.

        The serving app passes its in-memory head instead; this probe is
        for standalone use (bench, ``python -m repro.history``).  Starts
        the scan at the newest checkpoint's offset so it is O(suffix).
        """
        store = CheckpointStore(self._wal_dir)
        meta = store.newest_meta()
        head = int(meta["wal_seq"]) if meta else 0
        offset = int(meta["wal_offset"]) if meta else 0
        if not self._wal_path.exists():
            return head
        scan = iter_ops(self._wal_path, offset)
        try:
            for rec_seq, _ in scan:
                head = rec_seq
        finally:
            scan.close()
        return head

    # ------------------------------------------------------------------ #
    # Cached snapshot access
    # ------------------------------------------------------------------ #
    def snapshot_at(self, seq: int, head: int) -> CsrSnapshot:
        """Frozen snapshot of the graph at ``seq`` (LRU-cached).

        ``head`` is the last durable sequence; ``seq`` outside
        ``[0, head]`` raises :class:`~repro.errors.AsofRangeError`
        (→ HTTP 400).  Reconstruction happens outside the lock, so two
        concurrent cold reads of the same sequence may both pay the
        replay — harmless, the results are identical.
        """
        seq = int(seq)
        if seq < 0 or seq > head:
            raise AsofRangeError(seq, head)
        with self._lock:
            cached = self._cache.get(seq)
            if cached is not None:
                self._cache.move_to_end(seq)
                self.hits += 1
                self._tick("hit")
                return cached
            self.misses += 1
            self._tick("miss")
        started = time.perf_counter()
        client = self.client_at(seq)
        snapshot = client.snapshot()
        elapsed = time.perf_counter() - started
        with self._lock:
            self.reconstruct_seconds += elapsed
            self._cache[seq] = snapshot
            self._cache.move_to_end(seq)
            while len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
        self._tick("reconstruct", elapsed)
        return snapshot

    def _tick(self, event: str, value: float = 1.0) -> None:
        """Fire the app-supplied metrics hook for ``event``, if any.

        ``counters`` maps ``"hit"`` / ``"miss"`` / ``"reconstruct"`` to a
        one-float callable (counter inc / histogram observe); the service
        itself stays metrics-framework-agnostic.
        """
        hook = self._counters.get(event)
        if hook is not None:
            hook(value)

    def cache_stats(self) -> Dict[str, object]:
        """``/healthz``'s ``asof_cache`` section."""
        with self._lock:
            return {
                "size": len(self._cache),
                "capacity": self._cache_size,
                "hits": self.hits,
                "misses": self.misses,
                "reconstruct_seconds": round(self.reconstruct_seconds, 6),
            }

    # ------------------------------------------------------------------ #
    # Query surface (mirrors SnapshotService's response shapes + "asof")
    # ------------------------------------------------------------------ #
    def detect_at(self, seq: int, head: int) -> Dict[str, object]:
        """Exact detection over the graph as of ``seq``."""
        snapshot = self.snapshot_at(seq, head)
        semantics = self._semantics_name
        result = peel_csr(snapshot, semantics)
        return {
            "version": int(seq),
            "asof": int(seq),
            "community": sorted(map(str, result.community)),
            "density": result.best_density,
            "peel_index": result.best_index,
            "vertices": snapshot.num_vertices,
            "edges": snapshot.num_edges,
            "semantics": semantics,
            "backend": self._config.backend,
            "shards": 1,
            "exact": True,
        }

    def communities_at(
        self,
        seq: int,
        head: int,
        start: int = 0,
        limit: int = 10,
        min_density: float = 0.0,
        min_size: int = 2,
    ) -> Dict[str, object]:
        """Paginated dense-instance enumeration as of ``seq``.

        ``start`` is the absolute rank the page begins at (offset mode
        passes the offset; cursor mode passes ``last_rank + 1``); the
        HTTP layer turns ``next_rank`` into an opaque cursor token.
        """
        snapshot = self.snapshot_at(seq, head)
        semantics = self._semantics_name
        instances = enumerate_csr(
            snapshot,
            max_instances=start + limit + 1,
            min_density=min_density,
            min_size=min_size,
            semantics_name=semantics,
        )
        page, has_more, next_rank = paginate_instances(instances, start, limit)
        return {
            "version": int(seq),
            "asof": int(seq),
            "limit": limit,
            "count": len(page),
            "communities": [
                {
                    "rank": instance.rank,
                    "density": instance.density,
                    "size": len(instance.vertices),
                    "vertices": sorted(map(str, instance.vertices)),
                }
                for instance in page
            ],
            "has_more": has_more,
            "next_rank": next_rank,
        }
