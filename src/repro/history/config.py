"""``HistoryConfig``: knobs for time-travel reads and the cold store.

Nested inside :class:`~repro.serve.config.ServeConfig` (which is itself
nested inside :class:`~repro.api.EngineConfig`), so one JSON document
still describes the whole deployment — engine, server, *and* the
historical-analytics sidecar.  Mirrors the same contract: a frozen
dataclass that validates on construction and round-trips through plain
dicts.

This module deliberately imports only :mod:`repro.errors` so that
``repro.serve.config`` can nest it without pulling SQLite/indexer code
into every ``import repro.api``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.errors import ConfigError

__all__ = ["HistoryConfig"]


@dataclass(frozen=True)
class HistoryConfig:
    """A complete, validated historical-analytics configuration.

    Attributes
    ----------
    db_path:
        SQLite cold-store file.  ``None`` (the default) resolves to
        ``<wal_dir>/history.sqlite`` when serving; the standalone indexer
        (``python -m repro.history``) resolves it the same way.
    epoch_interval:
        WAL sequences between detection epochs.  The indexer reconstructs
        the graph at every multiple of this interval and appends that
        epoch's dense communities to the cold store.  Smaller intervals
        give finer-grained timelines at more indexing work.
    poll_ms:
        How often the background indexer checks the WAL head for newly
        due epochs.
    asof_cache_size:
        LRU capacity (in reconstructed snapshots) of the as-of read
        cache.  Each entry holds one frozen
        :class:`~repro.graph.csr.CsrSnapshot` of the graph at a past
        sequence.
    max_instances:
        Communities recorded per epoch (the enumeration's
        report-remove-repeel cycle stops there).
    min_density / min_size:
        Enumeration thresholds for what counts as a dense community in
        the cold store.  Epoch rows are only comparable across an
        unchanged threshold pair, so pick them per deployment and keep
        them.
    """

    db_path: Optional[str] = None
    epoch_interval: int = 64
    poll_ms: float = 500.0
    asof_cache_size: int = 8
    max_instances: int = 20
    min_density: float = 0.0
    min_size: int = 2

    def __post_init__(self) -> None:
        if self.db_path is not None and not isinstance(self.db_path, str):
            raise ConfigError(
                f"db_path must be a string path or None, got {self.db_path!r}"
            )
        if self.epoch_interval < 1:
            raise ConfigError(
                f"epoch_interval must be >= 1, got {self.epoch_interval}"
            )
        if self.poll_ms <= 0:
            raise ConfigError(f"poll_ms must be > 0, got {self.poll_ms}")
        if self.asof_cache_size < 1:
            raise ConfigError(
                f"asof_cache_size must be >= 1, got {self.asof_cache_size}"
            )
        if self.max_instances < 1:
            raise ConfigError(
                f"max_instances must be >= 1, got {self.max_instances}"
            )
        if self.min_density < 0:
            raise ConfigError(f"min_density must be >= 0, got {self.min_density}")
        if self.min_size < 1:
            raise ConfigError(f"min_size must be >= 1, got {self.min_size}")

    # ------------------------------------------------------------------ #
    # Round-tripping (mirrors ServeConfig's contract)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """Export as a plain JSON-serialisable dict (all knobs, always)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "HistoryConfig":
        """Build (and validate) a config from a dict; unknown keys fail."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(
                f"unknown HistoryConfig keys: {', '.join(unknown)}; "
                f"valid keys: {', '.join(sorted(known))}"
            )
        return cls(**dict(data))

    def replace(self, **changes: object) -> "HistoryConfig":
        """Return a copy with the given knobs changed (re-validated)."""
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]
