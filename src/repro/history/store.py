"""The SQLite historical-analytics cold store.

One file (default ``<wal_dir>/history.sqlite``) holds the detection
history of one deployment: every ``epoch_interval`` WAL sequences the
indexer reconstructs the graph at that sequence, enumerates its dense
communities, and appends them here.  The schema follows the SQLite
discipline of the article-index exemplar (SNIPPETS.md §1): pragmas
``journal_mode=WAL`` / ``synchronous=NORMAL`` / ``busy_timeout`` /
``foreign_keys=ON``, UTC ISO-8601 text timestamps, integer 0/1 booleans.

Tables
------
``meta``
    One row per indexing knob (``epoch_interval``, thresholds,
    semantics).  Verified on every open: epoch rows are only comparable
    across unchanged knobs, so re-indexing with different ones into the
    same file is refused instead of silently mixing timelines.
``epochs``
    One row per indexed epoch, keyed by its WAL sequence, carrying the
    graph shape at that sequence and a CRC32 checksum over the canonical
    serialisation of the epoch's communities — the idempotency witness.
``communities``
    One row per dense community per epoch (``rank`` is enumeration
    order: rank 0 is the densest instance).
``memberships``
    One row per (epoch, community, vertex) — the join table "when did
    vertex X first enter a dense community" queries walk.
``vertex_spans``
    Materialized per-vertex summary (first/last dense epoch, dense-epoch
    count), maintained transactionally with each epoch append.

Crash safety is SQLite's: :meth:`HistoryStore.record_epoch` writes each
epoch in **one transaction**, so a ``kill -9`` mid-epoch rolls back to
the previous epoch boundary and the restarted indexer resumes from
``last_indexed_seq()`` — no duplicated rows, no skipped epochs (the CI
``history`` job proves exactly this).
"""

from __future__ import annotations

import json
import sqlite3
import time
import zlib
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import HistoryError

__all__ = ["HistoryStore", "connect", "canonical_epoch_payload", "HISTORY_FILENAME"]

#: Default cold-store file name inside ``wal_dir``.
HISTORY_FILENAME = "history.sqlite"

PathLike = Union[str, Path]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS epochs (
    seq             INTEGER PRIMARY KEY,
    indexed_at      TEXT    NOT NULL,
    num_vertices    INTEGER NOT NULL,
    num_edges       INTEGER NOT NULL,
    num_communities INTEGER NOT NULL,
    checksum        INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS communities (
    epoch_seq INTEGER NOT NULL REFERENCES epochs(seq) ON DELETE CASCADE,
    rank      INTEGER NOT NULL,
    density   REAL    NOT NULL,
    size      INTEGER NOT NULL,
    PRIMARY KEY (epoch_seq, rank)
);
CREATE TABLE IF NOT EXISTS memberships (
    epoch_seq INTEGER NOT NULL,
    rank      INTEGER NOT NULL,
    vertex    TEXT    NOT NULL,
    PRIMARY KEY (epoch_seq, rank, vertex),
    FOREIGN KEY (epoch_seq, rank)
        REFERENCES communities(epoch_seq, rank) ON DELETE CASCADE
);
CREATE INDEX IF NOT EXISTS idx_memberships_vertex
    ON memberships(vertex, epoch_seq);
CREATE TABLE IF NOT EXISTS vertex_spans (
    vertex       TEXT PRIMARY KEY,
    first_seq    INTEGER NOT NULL,
    last_seq     INTEGER NOT NULL,
    dense_epochs INTEGER NOT NULL
);
"""


def connect(path: PathLike) -> sqlite3.Connection:
    """Open the cold store with the standard pragma discipline applied."""
    conn = sqlite3.connect(str(path), timeout=30.0)
    conn.execute("PRAGMA journal_mode=WAL")
    conn.execute("PRAGMA synchronous=NORMAL")
    conn.execute("PRAGMA busy_timeout=30000")
    conn.execute("PRAGMA foreign_keys=ON")
    return conn


def canonical_epoch_payload(
    instances: Sequence[Tuple[int, float, Sequence[str]]]
) -> bytes:
    """The byte string an epoch's checksum is computed over.

    ``instances`` is ``[(rank, density, sorted_vertex_labels), ...]`` in
    rank order.  The serialisation is canonical (sorted labels, compact
    separators, ``repr``-exact floats via ``json``), so re-indexing the
    same WAL prefix reproduces the same checksum bit for bit — which is
    what lets the idempotency check distinguish a benign re-run from a
    diverging one.
    """
    rows = [
        [int(rank), float(density), [str(v) for v in vertices]]
        for rank, density, vertices in instances
    ]
    return json.dumps(rows, separators=(",", ":")).encode("utf-8")


class HistoryStore:
    """Writer-side handle on one cold-store file (schema + epoch appends)."""

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            self._conn = connect(self.path)
            self._conn.executescript(_SCHEMA)
            self._conn.commit()
        except sqlite3.Error as exc:
            raise HistoryError(f"cannot open history store {self.path}: {exc}") from exc

    @property
    def conn(self) -> sqlite3.Connection:
        return self._conn

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "HistoryStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Indexing-knob guard
    # ------------------------------------------------------------------ #
    def ensure_meta(self, expected: Mapping[str, object]) -> None:
        """Record the indexing knobs on first use; refuse a mismatch later.

        Epoch rows indexed under one ``(epoch_interval, thresholds,
        semantics)`` tuple are meaningless next to rows from another, so
        a knob change requires a fresh database file.
        """
        stored = dict(
            self._conn.execute("SELECT key, value FROM meta").fetchall()
        )
        mismatches = []
        with self._conn:
            for key, value in expected.items():
                text = json.dumps(value)
                if key not in stored:
                    self._conn.execute(
                        "INSERT INTO meta (key, value) VALUES (?, ?)", (key, text)
                    )
                elif stored[key] != text:
                    mismatches.append(f"{key}: stored {stored[key]} != {text}")
        if mismatches:
            raise HistoryError(
                f"{self.path} was indexed with different knobs "
                f"({'; '.join(mismatches)}); use a fresh db_path to re-index"
            )

    # ------------------------------------------------------------------ #
    # Epoch appends
    # ------------------------------------------------------------------ #
    def last_indexed_seq(self) -> int:
        """WAL sequence of the newest indexed epoch (0 when empty)."""
        row = self._conn.execute("SELECT MAX(seq) FROM epochs").fetchone()
        return int(row[0]) if row and row[0] is not None else 0

    def epoch_count(self) -> int:
        row = self._conn.execute("SELECT COUNT(*) FROM epochs").fetchone()
        return int(row[0])

    def epoch_seqs(self) -> List[int]:
        """All indexed epoch sequences, ascending."""
        return [
            int(seq)
            for (seq,) in self._conn.execute(
                "SELECT seq FROM epochs ORDER BY seq"
            ).fetchall()
        ]

    def record_epoch(
        self,
        seq: int,
        num_vertices: int,
        num_edges: int,
        instances: Sequence[Tuple[int, float, Sequence[str]]],
    ) -> bool:
        """Append one epoch atomically; idempotent keyed by ``seq``.

        ``instances`` is ``[(rank, density, sorted_vertex_labels), ...]``.
        Returns ``True`` when the epoch was written, ``False`` when an
        identical epoch (same checksum) already exists — the resume path
        after a crash or a standalone re-index.  An existing epoch whose
        checksum **differs** raises :class:`~repro.errors.HistoryError`:
        the same WAL prefix can only ever enumerate one answer, so a
        mismatch means corruption or a knob change, never business as
        usual.
        """
        checksum = zlib.crc32(canonical_epoch_payload(instances))
        existing = self._conn.execute(
            "SELECT checksum FROM epochs WHERE seq = ?", (seq,)
        ).fetchone()
        if existing is not None:
            if int(existing[0]) != checksum:
                raise HistoryError(
                    f"epoch {seq} already indexed with checksum {existing[0]}, "
                    f"re-index produced {checksum}; the WAL prefix or the "
                    f"indexing knobs changed"
                )
            return False
        indexed_at = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
        try:
            with self._conn:  # one transaction: all of the epoch or none
                self._conn.execute(
                    "INSERT INTO epochs (seq, indexed_at, num_vertices, "
                    "num_edges, num_communities, checksum) "
                    "VALUES (?, ?, ?, ?, ?, ?)",
                    (seq, indexed_at, num_vertices, num_edges, len(instances), checksum),
                )
                for rank, density, vertices in instances:
                    self._conn.execute(
                        "INSERT INTO communities (epoch_seq, rank, density, size) "
                        "VALUES (?, ?, ?, ?)",
                        (seq, rank, float(density), len(vertices)),
                    )
                    self._conn.executemany(
                        "INSERT INTO memberships (epoch_seq, rank, vertex) "
                        "VALUES (?, ?, ?)",
                        [(seq, rank, str(vertex)) for vertex in vertices],
                    )
                    self._conn.executemany(
                        "INSERT INTO vertex_spans "
                        "(vertex, first_seq, last_seq, dense_epochs) "
                        "VALUES (?, ?, ?, 1) "
                        "ON CONFLICT(vertex) DO UPDATE SET "
                        "last_seq = excluded.last_seq, "
                        "dense_epochs = dense_epochs + 1",
                        [(str(vertex), seq, seq) for vertex in vertices],
                    )
        except sqlite3.IntegrityError as exc:
            # Two indexers racing on the same seq: the loser's transaction
            # rolled back whole; the winner's epoch is the one truth.
            raise HistoryError(f"concurrent index of epoch {seq}: {exc}") from exc
        return True

    def verify_epoch(self, seq: int) -> bool:
        """Recompute epoch ``seq``'s checksum from its rows; True if intact."""
        head = self._conn.execute(
            "SELECT checksum FROM epochs WHERE seq = ?", (seq,)
        ).fetchone()
        if head is None:
            raise HistoryError(f"epoch {seq} is not in the store")
        instances = []
        for rank, density in self._conn.execute(
            "SELECT rank, density FROM communities WHERE epoch_seq = ? ORDER BY rank",
            (seq,),
        ).fetchall():
            vertices = [
                vertex
                for (vertex,) in self._conn.execute(
                    "SELECT vertex FROM memberships "
                    "WHERE epoch_seq = ? AND rank = ? ORDER BY vertex",
                    (seq, rank),
                ).fetchall()
            ]
            instances.append((rank, density, vertices))
        return zlib.crc32(canonical_epoch_payload(instances)) == int(head[0])

    def stats(self) -> Dict[str, object]:
        """Operational summary (``/healthz``'s ``history`` section)."""
        return {
            "epochs": self.epoch_count(),
            "last_indexed_seq": self.last_indexed_seq(),
            "vertices_tracked": int(
                self._conn.execute("SELECT COUNT(*) FROM vertex_spans").fetchone()[0]
            ),
        }
