"""The historical-analytics indexer: WAL tail → epoch rows.

The indexer turns the write-ahead log into the cold store's timeline.
It keeps one resident replay client (the same reconstruction path as-of
reads use), streams WAL records into it, and every ``epoch_interval``
sequences freezes the graph, enumerates its dense communities, and
appends the epoch to :class:`~repro.history.store.HistoryStore` in a
single SQLite transaction.

Idempotency is structural, not best-effort.  Epochs are keyed by their
WAL sequence; each append is one transaction; resume starts from
``last_indexed_seq()``.  A ``kill -9`` mid-epoch rolls the partial
transaction back, and the restarted indexer re-derives exactly that
epoch — same WAL prefix, same checksum, same row.  Re-indexing an
already-covered prefix is a no-op (checksum-verified), and a checksum
*mismatch* on an existing epoch fails loudly, because one WAL prefix can
only ever enumerate one answer.

Two front ends share the core:

* :class:`IndexerTask` — asyncio background task inside the serving app
  (``--history-db`` / ``serve.history`` config), polling every
  ``poll_ms``.
* ``python -m repro.history`` — the standalone catch-up / follow CLI,
  for indexing a WAL directory without (or beside) a live server.
"""

from __future__ import annotations

import asyncio
from pathlib import Path
from typing import Dict, Optional

from repro.api.client import SpadeClient
from repro.api.config import EngineConfig
from repro.core.enumeration import enumerate_csr
from repro.errors import ReproError
from repro.history.asof import AsofService
from repro.history.config import HistoryConfig
from repro.history.store import HISTORY_FILENAME, HistoryStore
from repro.peeling.semantics import PeelingSemantics
from repro.serve.wal import WriteAheadLog, iter_ops

__all__ = ["HistoryIndexer", "IndexerTask", "resolve_db_path"]


def resolve_db_path(wal_dir: object, history: HistoryConfig) -> Path:
    """The cold-store file for a deployment (explicit or ``<wal_dir>/``)."""
    if history.db_path is not None:
        return Path(history.db_path)
    return Path(str(wal_dir)) / HISTORY_FILENAME


class HistoryIndexer:
    """Tail one WAL directory into one cold-store file.

    Synchronous core; call :meth:`step` repeatedly (each call is one
    catch-up pass over everything currently durable).  Not thread-safe —
    one indexer per store file, driven from one thread at a time, which
    is exactly what :class:`IndexerTask` and the CLI do.
    """

    def __init__(
        self,
        wal_dir: object,
        history: HistoryConfig,
        config: Optional[EngineConfig] = None,
        semantics: Optional[PeelingSemantics] = None,
    ) -> None:
        self._wal_dir = Path(str(wal_dir))
        self._history = history
        base = config if config is not None else EngineConfig()
        if base.serve is None or base.serve.wal_dir is None:
            from repro.serve.config import ServeConfig

            base = base.replace(serve=ServeConfig(wal_dir=str(self._wal_dir)))
        self._asof = AsofService(base, semantics=semantics)
        self._semantics_name = (
            semantics.name if semantics is not None else base.semantics
        )
        self.db_path = resolve_db_path(self._wal_dir, history)
        self._wal_path = WriteAheadLog.path_in(self._wal_dir)
        # Resident replay position: the client mirrors the graph at
        # _seq, having consumed the WAL through _offset bytes.
        self._client: Optional[SpadeClient] = None
        self._seq = 0
        self._offset = 0
        self.last_error: Optional[str] = None

    # ------------------------------------------------------------------ #
    def _meta_knobs(self) -> Dict[str, object]:
        """The knob tuple epoch rows are only comparable within."""
        return {
            "epoch_interval": self._history.epoch_interval,
            "max_instances": self._history.max_instances,
            "min_density": self._history.min_density,
            "min_size": self._history.min_size,
            "semantics": self._semantics_name,
        }

    def _position_client(self, last_indexed: int) -> None:
        """Seat the resident client at or below the first un-indexed epoch.

        Boot (or re-seat after an error): reconstruct at ``last_indexed``
        via the as-of path, then note the byte offset the follow-on
        stream resumes from.  The client may land *below* ``last_indexed``
        when no checkpoint covers it — the stream then replays through
        already-indexed boundaries, which the seq guard in :meth:`step`
        skips re-enumerating.
        """
        client, offset, at_seq = self._asof.client_with_position(last_indexed)
        self._client = client
        self._seq = at_seq
        self._offset = offset

    def step(self) -> Dict[str, int]:
        """One catch-up pass: index every due epoch now durable in the WAL.

        Returns ``{"new_epochs", "last_indexed_seq", "head_seq", "lag"}``.
        Raises on store knob mismatches and checksum divergence; WAL
        corruption simply ends the pass at the valid prefix (the serving
        process truncates it on its own restart).
        """
        interval = self._history.epoch_interval
        with HistoryStore(self.db_path) as store:
            store.ensure_meta(self._meta_knobs())
            last_indexed = store.last_indexed_seq()
            if self._client is None or self._seq > last_indexed:
                # First pass, or the store went backwards relative to the
                # resident client (fresh db file swapped in): (re)seat.
                self._position_client(last_indexed)
            new_epochs = 0
            head = self._seq
            if self._wal_path.exists():
                scan = iter_ops(self._wal_path, self._offset)
                try:
                    for rec_seq, op in scan:
                        try:
                            self._client.apply([op])
                        except (ReproError, TypeError, ValueError):
                            # Same deterministic-rejection skip as crash
                            # recovery — lockstep with the live process.
                            pass
                        self._seq = rec_seq
                        self._offset = scan.next_offset
                        head = rec_seq
                        if rec_seq % interval == 0 and rec_seq > last_indexed:
                            if self._record_epoch(store, rec_seq):
                                new_epochs += 1
                            last_indexed = rec_seq
                finally:
                    scan.close()
            return {
                "new_epochs": new_epochs,
                "last_indexed_seq": store.last_indexed_seq(),
                "head_seq": head,
                "lag": max(0, head - store.last_indexed_seq()),
            }

    def _record_epoch(self, store: HistoryStore, seq: int) -> bool:
        """Freeze, enumerate, append one epoch (one transaction)."""
        snapshot = self._client.snapshot()
        instances = enumerate_csr(
            snapshot,
            max_instances=self._history.max_instances,
            min_density=self._history.min_density,
            min_size=self._history.min_size,
            semantics_name=self._semantics_name,
        )
        rows = [
            (inst.rank, inst.density, sorted(map(str, inst.vertices)))
            for inst in instances
        ]
        return store.record_epoch(
            seq, snapshot.num_vertices, snapshot.num_edges, rows
        )


class IndexerTask:
    """Asyncio wrapper running :meth:`HistoryIndexer.step` off the loop.

    One poll every ``poll_ms``; each poll runs the synchronous step in
    the default executor so epoch enumeration never stalls the serving
    loop.  Errors are recorded (``last_error``, surfaced via
    ``/healthz``) and polling continues — a sick indexer must not take
    ingest down with it.
    """

    def __init__(
        self,
        indexer: HistoryIndexer,
        poll_ms: float,
        on_step: Optional[object] = None,
    ) -> None:
        self.indexer = indexer
        self._poll_s = max(poll_ms, 1.0) / 1000.0
        self._on_step = on_step
        self._task: Optional[asyncio.Task] = None
        self._stopping = asyncio.Event()
        self.steps = 0
        self.epochs_indexed = 0
        self.lag = 0
        self.last_indexed_seq = 0

    def start(self) -> None:
        self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        self._stopping.set()
        if self._task is not None:
            await self._task
            self._task = None

    async def poke(self) -> None:
        """Run one step immediately (tests; deterministic smoke phases)."""
        report = await asyncio.get_running_loop().run_in_executor(
            None, self._step_once
        )
        self._absorb(report)

    def _step_once(self) -> Optional[Dict[str, int]]:
        """The blocking half (executor thread); returns None on error."""
        try:
            report = self.indexer.step()
        except Exception as exc:  # keep serving; surface via /healthz
            self.indexer.last_error = f"{type(exc).__name__}: {exc}"
            return None
        self.indexer.last_error = None
        return report

    def _absorb(self, report: Optional[Dict[str, int]]) -> None:
        """Fold one step's report into the task state (loop thread)."""
        if report is None:
            return
        self.steps += 1
        self.epochs_indexed += report["new_epochs"]
        self.lag = report["lag"]
        self.last_indexed_seq = report["last_indexed_seq"]
        if self._on_step is not None:
            self._on_step(report)  # type: ignore[operator]

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while not self._stopping.is_set():
            report = await loop.run_in_executor(None, self._step_once)
            self._absorb(report)
            try:
                await asyncio.wait_for(self._stopping.wait(), self._poll_s)
            except asyncio.TimeoutError:
                pass

    def status(self) -> Dict[str, object]:
        """``/healthz``'s ``history`` section (merged with store stats)."""
        return {
            "db_path": str(self.indexer.db_path),
            "epoch_interval": self.indexer._history.epoch_interval,
            "steps": self.steps,
            "epochs_indexed": self.epochs_indexed,
            "last_indexed_seq": self.last_indexed_seq,
            "lag": self.lag,
            "last_error": self.indexer.last_error,
        }
