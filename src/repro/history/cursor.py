"""Opaque keyset-pagination cursors.

A cursor is the base64url encoding of a compact JSON object carrying a
``k`` kind tag plus the keyset position of the last row the client saw
(e.g. ``{"k": "communities", "rank": 4}``).  Clients treat the token as
opaque — the encoding is an implementation detail that may change — and
the decoder enforces the kind tag so a cursor minted by one endpoint
cannot silently page a different one.

Keyset pagination (``WHERE key > last_seen ORDER BY key LIMIT n``) keeps
page cost independent of page depth and stays stable under concurrent
appends, unlike ``OFFSET`` which re-skips (and re-counts) everything
before the page on every request.
"""

from __future__ import annotations

import base64
import binascii
import json
from typing import Dict, Optional

from repro.errors import HistoryError

__all__ = ["encode_cursor", "decode_cursor", "cursor_int"]


def encode_cursor(kind: str, **position: object) -> str:
    """Mint an opaque cursor token for ``kind`` at ``position``."""
    payload = {"k": kind}
    payload.update(position)
    raw = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("ascii")
    return base64.urlsafe_b64encode(raw).rstrip(b"=").decode("ascii")


def decode_cursor(token: str, kind: str) -> Dict[str, object]:
    """Decode ``token``, requiring kind ``kind``; the position dict.

    Raises :class:`~repro.errors.HistoryError` (→ HTTP 400) for garbage
    tokens or a kind mismatch — a client pasting a cursor across
    endpoints gets an explicit error, not a silently wrong page.
    """
    padded = token + "=" * (-len(token) % 4)
    try:
        raw = base64.urlsafe_b64decode(padded.encode("ascii"))
        payload = json.loads(raw.decode("ascii"))
    except (ValueError, binascii.Error, UnicodeError) as exc:
        raise HistoryError(f"undecodable cursor token: {token!r}") from exc
    if not isinstance(payload, dict) or payload.get("k") != kind:
        raise HistoryError(
            f"cursor token is not a {kind!r} cursor: {token!r}"
        )
    position = dict(payload)
    position.pop("k", None)
    return position


def cursor_int(position: Dict[str, object], key: str) -> int:
    """Integer field ``key`` out of a decoded cursor (400 on anything else)."""
    value = position.get(key)
    if isinstance(value, bool) or not isinstance(value, int):
        raise HistoryError(f"cursor field {key!r} must be an integer, got {value!r}")
    return value
