"""``repro.history``: time travel and historical analytics over the WAL.

The write-ahead log already is a total order over every accepted
operation; this package makes it queryable along the time axis:

* **As-of reads** (:mod:`repro.history.asof`) — reconstruct the graph at
  any past WAL sequence (nearest checkpoint + suffix replay through the
  bit-identical recovery path) and answer ``detect`` / ``communities``
  against it, behind an LRU snapshot cache.  Exposed as
  ``GET /v1/detect?asof=SEQ``.
* **The cold store** (:mod:`repro.history.store`) — a checksummed SQLite
  file holding dense-community detections at every ``epoch_interval``
  sequences, appended idempotently by the indexer
  (:mod:`repro.history.indexer`), which runs either inside the serving
  app or standalone::

      python -m repro.history --wal-dir ./wal --epoch-interval 64

* **Analytics** (:mod:`repro.history.queries`) — window-function SQL
  ("when did vertex X first enter a dense community", "community density
  over time") served via ``GET /v1/history/...`` with keyset-cursor
  pagination.

Only :class:`HistoryConfig` is imported eagerly — it nests inside
:class:`~repro.serve.config.ServeConfig` and must stay import-light; the
heavier members load lazily on first attribute access (PEP 562).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.history.config import HistoryConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.history.asof import AsofService
    from repro.history.indexer import HistoryIndexer, IndexerTask
    from repro.history.store import HistoryStore

__all__ = [
    "HistoryConfig",
    "AsofService",
    "HistoryIndexer",
    "IndexerTask",
    "HistoryStore",
]

_LAZY = {
    "AsofService": ("repro.history.asof", "AsofService"),
    "HistoryIndexer": ("repro.history.indexer", "HistoryIndexer"),
    "IndexerTask": ("repro.history.indexer", "IndexerTask"),
    "HistoryStore": ("repro.history.store", "HistoryStore"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro.history' has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
