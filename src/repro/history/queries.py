"""Window-function analytics over the cold store, keyset-paginated.

Read side of :mod:`repro.history.store`: every function takes an open
SQLite connection (the HTTP layer opens one per request in a worker
thread), returns plain dicts, and pages with opaque keyset cursors
(:mod:`repro.history.cursor`).

The window functions are computed in an inner query over the *full*
filtered set and the keyset predicate is applied outside, so ``LAG``
deltas and ``ROW_NUMBER`` positions are identical no matter how the
result is paged — a cursor boundary never turns a real delta into a
NULL.
"""

from __future__ import annotations

import sqlite3
from typing import Dict, List, Optional

from repro.errors import HistoryError
from repro.history.cursor import cursor_int, decode_cursor, encode_cursor

__all__ = [
    "vertex_first_entry",
    "vertex_history",
    "community_timeline",
    "epochs_page",
]


def _page(rows: List[Dict[str, object]], limit: int) -> bool:
    """Trim the one-extra probe row; True when a further page exists."""
    if len(rows) > limit:
        del rows[limit:]
        return True
    return False


def vertex_first_entry(
    conn: sqlite3.Connection,
    vertex: str,
    min_density: float = 0.0,
    min_size: int = 1,
) -> Optional[Dict[str, object]]:
    """When did ``vertex`` first enter a dense community?

    The paper's post-hoc forensic question: given a flagged account,
    find the epoch its fraud neighbourhood first condensed.  ``None``
    when the vertex never appears above the thresholds.
    """
    row = conn.execute(
        """
        SELECT epoch_seq, rank, density, size, total_epochs FROM (
            SELECT m.epoch_seq, m.rank, c.density, c.size,
                   ROW_NUMBER() OVER (ORDER BY m.epoch_seq, m.rank) AS rn,
                   COUNT(*) OVER () AS total_epochs
            FROM memberships m
            JOIN communities c
              ON c.epoch_seq = m.epoch_seq AND c.rank = m.rank
            WHERE m.vertex = ? AND c.density >= ? AND c.size >= ?
        ) WHERE rn = 1
        """,
        (str(vertex), min_density, min_size),
    ).fetchone()
    if row is None:
        return None
    return {
        "vertex": str(vertex),
        "first_seq": int(row[0]),
        "rank": int(row[1]),
        "density": float(row[2]),
        "size": int(row[3]),
        "dense_epochs": int(row[4]),
    }


def vertex_history(
    conn: sqlite3.Connection,
    vertex: str,
    cursor: Optional[str] = None,
    limit: int = 50,
    min_density: float = 0.0,
    min_size: int = 1,
) -> Dict[str, object]:
    """Every dense-community appearance of ``vertex``, oldest first.

    Each row carries ``seqs_since_prev`` (``LAG`` over the full history)
    — the gap since the vertex's previous dense appearance, NULL on the
    first.  Keyset-paged on ``(epoch_seq, rank)``.
    """
    after_seq, after_rank = -1, -1
    if cursor is not None:
        position = decode_cursor(cursor, "vertex-history")
        after_seq = cursor_int(position, "seq")
        after_rank = cursor_int(position, "rank")
    rows = [
        {
            "epoch_seq": int(seq),
            "rank": int(rank),
            "density": float(density),
            "size": int(size),
            "seqs_since_prev": int(gap) if gap is not None else None,
        }
        for seq, rank, density, size, gap in conn.execute(
            """
            SELECT epoch_seq, rank, density, size, gap FROM (
                SELECT m.epoch_seq, m.rank, c.density, c.size,
                       m.epoch_seq - LAG(m.epoch_seq)
                           OVER (ORDER BY m.epoch_seq, m.rank) AS gap
                FROM memberships m
                JOIN communities c
                  ON c.epoch_seq = m.epoch_seq AND c.rank = m.rank
                WHERE m.vertex = ? AND c.density >= ? AND c.size >= ?
            )
            WHERE (epoch_seq, rank) > (?, ?)
            ORDER BY epoch_seq, rank LIMIT ?
            """,
            (str(vertex), min_density, min_size, after_seq, after_rank, limit + 1),
        ).fetchall()
    ]
    has_more = _page(rows, limit)
    next_cursor = (
        encode_cursor(
            "vertex-history",
            seq=rows[-1]["epoch_seq"],
            rank=rows[-1]["rank"],
        )
        if has_more and rows
        else None
    )
    first = vertex_first_entry(conn, vertex, min_density, min_size)
    return {
        "vertex": str(vertex),
        "first_entry": first,
        "count": len(rows),
        "appearances": rows,
        "has_more": has_more,
        "next_cursor": next_cursor,
    }


def community_timeline(
    conn: sqlite3.Connection,
    rank: int = 0,
    cursor: Optional[str] = None,
    limit: int = 50,
) -> Dict[str, object]:
    """Size and density of the rank-``rank`` community, epoch over epoch.

    ``density_delta`` / ``size_delta`` are ``LAG`` differences over the
    full timeline — the burst signature the paper's fraud campaigns show
    (density jumping between adjacent epochs).  Keyset-paged on
    ``epoch_seq``.
    """
    if rank < 0:
        raise HistoryError(f"rank must be >= 0, got {rank}")
    after_seq = -1
    if cursor is not None:
        position = decode_cursor(cursor, "community-timeline")
        after_seq = cursor_int(position, "seq")
    rows = [
        {
            "epoch_seq": int(seq),
            "density": float(density),
            "size": int(size),
            "density_delta": float(d_delta) if d_delta is not None else None,
            "size_delta": int(s_delta) if s_delta is not None else None,
        }
        for seq, density, size, d_delta, s_delta in conn.execute(
            """
            SELECT epoch_seq, density, size, density_delta, size_delta FROM (
                SELECT epoch_seq, density, size,
                       density - LAG(density) OVER w AS density_delta,
                       size - LAG(size) OVER w AS size_delta
                FROM communities WHERE rank = ?
                WINDOW w AS (ORDER BY epoch_seq)
            )
            WHERE epoch_seq > ? ORDER BY epoch_seq LIMIT ?
            """,
            (rank, after_seq, limit + 1),
        ).fetchall()
    ]
    has_more = _page(rows, limit)
    next_cursor = (
        encode_cursor("community-timeline", seq=rows[-1]["epoch_seq"])
        if has_more and rows
        else None
    )
    return {
        "rank": rank,
        "count": len(rows),
        "timeline": rows,
        "has_more": has_more,
        "next_cursor": next_cursor,
    }


def epochs_page(
    conn: sqlite3.Connection,
    cursor: Optional[str] = None,
    limit: int = 50,
) -> Dict[str, object]:
    """The epoch catalogue (graph shape + community count per epoch)."""
    after_seq = -1
    if cursor is not None:
        position = decode_cursor(cursor, "epochs")
        after_seq = cursor_int(position, "seq")
    rows = [
        {
            "seq": int(seq),
            "indexed_at": indexed_at,
            "num_vertices": int(nv),
            "num_edges": int(ne),
            "num_communities": int(nc),
        }
        for seq, indexed_at, nv, ne, nc in conn.execute(
            """
            SELECT seq, indexed_at, num_vertices, num_edges, num_communities
            FROM epochs WHERE seq > ? ORDER BY seq LIMIT ?
            """,
            (after_seq, limit + 1),
        ).fetchall()
    ]
    has_more = _page(rows, limit)
    next_cursor = (
        encode_cursor("epochs", seq=rows[-1]["seq"]) if has_more and rows else None
    )
    return {
        "count": len(rows),
        "epochs": rows,
        "has_more": has_more,
        "next_cursor": next_cursor,
    }
