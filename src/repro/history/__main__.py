"""``python -m repro.history``: the standalone cold-store indexer.

Usage::

    python -m repro.history --wal-dir ./wal                 # catch up, exit
    python -m repro.history --wal-dir ./wal --follow        # tail forever
    python -m repro.history --wal-dir ./wal --verify        # checksum audit

Indexes a WAL directory into its SQLite cold store without (or beside) a
live server — the append path is idempotent, so running this while the
serving app's background indexer is also active wastes work but corrupts
nothing, and re-running it over an already-indexed WAL is a no-op.
``--config`` accepts the same EngineConfig JSON the server takes, so the
epochs are enumerated under the deployment's own semantics and backend.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.api.config import EngineConfig
from repro.history.config import HistoryConfig
from repro.history.indexer import HistoryIndexer
from repro.history.store import HistoryStore

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.history",
        description="Index a WAL directory into its SQLite historical cold store.",
    )
    parser.add_argument(
        "--wal-dir", required=True, help="WAL directory of the deployment to index"
    )
    parser.add_argument(
        "--config",
        type=Path,
        default=None,
        help="EngineConfig JSON (semantics/backend the epochs are enumerated under)",
    )
    parser.add_argument(
        "--history-db",
        default=None,
        help="cold-store SQLite file (default <wal-dir>/history.sqlite)",
    )
    parser.add_argument(
        "--epoch-interval",
        type=int,
        default=None,
        help="WAL sequences between detection epochs (default 64)",
    )
    parser.add_argument(
        "--follow",
        action="store_true",
        help="keep tailing the WAL instead of exiting after catch-up",
    )
    parser.add_argument(
        "--poll-ms",
        type=float,
        default=None,
        help="poll interval while following (default 500)",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="recompute every epoch checksum and exit (0 = all intact)",
    )
    return parser


def _resolve(args: argparse.Namespace) -> tuple:
    if args.config is not None:
        with args.config.open("r", encoding="utf-8") as handle:
            config = EngineConfig.from_dict(json.load(handle))
    else:
        config = EngineConfig()
    serve = config.serve
    history = (serve.history if serve is not None else None) or HistoryConfig()
    overrides = {}
    if args.history_db is not None:
        overrides["db_path"] = args.history_db
    if args.epoch_interval is not None:
        overrides["epoch_interval"] = args.epoch_interval
    if args.poll_ms is not None:
        overrides["poll_ms"] = args.poll_ms
    if overrides:
        history = history.replace(**overrides)
    return config, history


def _verify(indexer: HistoryIndexer) -> int:
    with HistoryStore(indexer.db_path) as store:
        seqs = store.epoch_seqs()
        bad = [seq for seq in seqs if not store.verify_epoch(seq)]
    print(
        f"repro.history verify: {len(seqs)} epochs, {len(bad)} corrupt"
        + (f" ({bad})" if bad else ""),
        flush=True,
    )
    return 1 if bad else 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    config, history = _resolve(args)
    indexer = HistoryIndexer(args.wal_dir, history, config=config)
    if args.verify:
        return _verify(indexer)
    try:
        while True:
            report = indexer.step()
            if report["new_epochs"]:
                print(
                    f"repro.history indexed {report['new_epochs']} epochs "
                    f"(last={report['last_indexed_seq']}, head={report['head_seq']}, "
                    f"lag={report['lag']}) -> {indexer.db_path}",
                    flush=True,
                )
            if not args.follow:
                print(
                    f"repro.history caught up at seq {report['last_indexed_seq']} "
                    f"(head {report['head_seq']})",
                    flush=True,
                )
                return 0
            time.sleep(history.poll_ms / 1000.0)
    except KeyboardInterrupt:  # pragma: no cover - interactive convenience
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
