"""The public Spade API (Listing 1 and Listing 2 of the paper).

:class:`Spade` is the developer-facing object.  A developer supplies the
fraud semantics — either one of the built-ins (DG / DW / FD) or custom
``vsusp`` / ``esusp`` plug-ins — loads a transaction graph, and then feeds
edge updates; the framework takes care of incrementalizing the peeling
algorithm (``ReorderSeq``), of batching (``InsertBatchEdges``) and of edge
grouping (``IsBenign``) transparently.

Mapping to the paper's C++ API:

========================  =====================================================
Paper (Listing 1)          This class
==========================  ===================================================
``LoadGraph(path)``         :meth:`Spade.load_graph` / :meth:`Spade.load_edges`
``VSusp(f)`` / ``ESusp(f)`` constructor ``semantics=`` or :meth:`Spade.set_suspiciousness`
``Detect()``                :meth:`Spade.detect`
``InsertEdge(e)``           :meth:`Spade.insert_edge`
``InsertBatchEdges(e*)``    :meth:`Spade.insert_batch_edges`
``TurnOnEdgeGrouping()``    :meth:`Spade.enable_edge_grouping`
``IsBenign(e)``             :meth:`Spade.is_benign` (built-in, used internally)
``ReorderSeq()``            internal (:mod:`repro.core.reorder`)
==========================  ===================================================

Example
-------
>>> from repro import Spade, dg_semantics
>>> spade = Spade(dg_semantics())
>>> spade.load_edges([("u1", "u2"), ("u2", "u3"), ("u1", "u3")])
>>> sorted(spade.detect().vertices)
['u1', 'u2', 'u3']
>>> community = spade.insert_edge("u4", "u1")
>>> "u4" in community.vertices
False
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence, Tuple

from repro.core.batch import BatchInput, insert_batch
from repro.core.deletion import delete_edges
from repro.core.enumeration import CommunityInstance, enumerate_communities
from repro.core.grouping import EdgeGrouper, is_benign
from repro.core.insertion import insert_edge as _insert_edge
from repro.core.reorder import ReorderStats
from repro.core.state import Community, PeelingState
from repro.config import validate_config
from repro.errors import StateError
from repro.graph.backend import backend_of, convert_graph, get_default_backend
from repro.graph.delta import EdgeUpdate
from repro.graph.graph import DynamicGraph, Vertex
from repro.peeling.result import PeelingResult
from repro.peeling.semantics import (
    EdgeSuspFn,
    PeelingSemantics,
    VertexSuspFn,
    custom_semantics,
    dg_semantics,
)

__all__ = ["Spade"]


class Spade:
    """Real-time fraud detection by incremental peeling on evolving graphs.

    This is the *single-shard* implementation of the
    :class:`repro.engine.protocol.DetectionEngine` protocol; consumers
    that should scale across cores construct engines through
    :func:`repro.engine.create_engine`, which partitions the vertex space
    over several of these behind a coordinator
    (:class:`repro.engine.sharded.ShardedSpade`).

    Parameters
    ----------
    semantics:
        The peeling semantics.  Defaults to DG (unweighted densest
        subgraph); use :func:`repro.peeling.semantics.dw_semantics`,
        :func:`repro.peeling.semantics.fraudar_semantics` or
        :func:`repro.peeling.semantics.custom_semantics` for the others.
    edge_grouping:
        When true, benign edges are buffered and only urgent edges trigger
        reordering (Section 4.3).  Can also be toggled later with
        :meth:`enable_edge_grouping`.
    backend:
        Graph backend name — ``"dict"`` (label-keyed adjacency dicts) or
        ``"array"`` (interned ids over numpy edge pools, the fast path).
        ``None`` uses the process default
        (:func:`repro.graph.backend.get_default_backend`).  When set
        explicitly, :meth:`load_graph` converts an adopted graph of a
        different backend.
    kernel:
        Hot-loop implementation (``"python"`` / ``"native"`` /
        ``"auto"``; ``None`` = process default) — see
        :mod:`repro.native`.  Bit-identical results either way.
    """

    def __init__(
        self,
        semantics: Optional[PeelingSemantics] = None,
        edge_grouping: bool = False,
        backend: Optional[str] = None,
        kernel: Optional[str] = None,
    ) -> None:
        validate_config(backend=backend, kernel=kernel)
        self._semantics = semantics or dg_semantics()
        self._backend = backend
        self._kernel = kernel
        self._state: Optional[PeelingState] = None
        self._grouper: Optional[EdgeGrouper] = None
        self._grouping_enabled = edge_grouping
        self.last_stats: ReorderStats = ReorderStats()

    # ------------------------------------------------------------------ #
    # Configuration (VSusp / ESusp / TurnOnEdgeGrouping)
    # ------------------------------------------------------------------ #
    @property
    def semantics(self) -> PeelingSemantics:
        """The active peeling semantics."""
        return self._semantics

    def set_suspiciousness(
        self,
        vertex_susp: Optional[VertexSuspFn] = None,
        edge_susp: Optional[EdgeSuspFn] = None,
        name: str = "custom",
    ) -> None:
        """Plug in custom ``vsusp`` / ``esusp`` functions (Listing 1 lines 5-7).

        Must be called before the graph is loaded — the suspiciousness
        functions define the edge weights baked into the loaded graph.
        """
        if self._state is not None:
            raise StateError("suspiciousness functions must be set before loading the graph")
        self._semantics = custom_semantics(
            name=name,
            vertex_susp=vertex_susp,
            edge_susp=edge_susp,
            recompute_on_insert=True,
        )

    def enable_edge_grouping(
        self,
        max_buffer: Optional[int] = None,
        max_delay: Optional[float] = None,
    ) -> None:
        """Turn on edge grouping (``TurnOnEdgeGrouping`` in Listing 2)."""
        self._grouping_enabled = True
        if self._state is not None:
            self._grouper = EdgeGrouper(self._state, max_buffer=max_buffer, max_delay=max_delay)

    def disable_edge_grouping(self) -> None:
        """Flush any pending benign edges and turn grouping off."""
        if self._grouper is not None:
            self._grouper.flush()
        self._grouper = None
        self._grouping_enabled = False

    # ------------------------------------------------------------------ #
    # Graph loading
    # ------------------------------------------------------------------ #
    @property
    def backend(self) -> str:
        """The graph backend this engine uses (resolved)."""
        if self._state is not None:
            return backend_of(self._state.graph)
        return self._backend or get_default_backend()

    @property
    def kernel(self) -> Optional[str]:
        """The requested hot-loop kernel (``None`` = process default)."""
        return self._kernel

    def load_graph(self, graph: DynamicGraph) -> PeelingResult:
        """Adopt an already-weighted graph and run the initial static peel.

        The graph is owned by the engine afterwards and mutated in place as
        updates arrive.  When the engine was constructed with an explicit
        ``backend`` that differs from the graph's, the graph is converted
        (copied) into that backend first.
        """
        if self._backend is not None and backend_of(graph) != self._backend:
            graph = convert_graph(graph, self._backend)
        self._state = PeelingState(graph, self._semantics, kernel=self._kernel)
        if self._grouping_enabled:
            self._grouper = EdgeGrouper(self._state)
        return self._state.as_result()

    def load_edges(
        self,
        edges: Iterable[tuple],
        vertex_priors: Optional[Mapping[Vertex, float]] = None,
    ) -> PeelingResult:
        """Build the weighted graph from raw transactions, then load it.

        ``edges`` are ``(src, dst)`` or ``(src, dst, raw_weight)`` tuples;
        the semantics converts raw weights into suspiciousness.
        """
        graph = self._semantics.materialize(
            edges, vertex_priors=vertex_priors, backend=self.backend
        )
        return self.load_graph(graph)

    # ------------------------------------------------------------------ #
    # Detection
    # ------------------------------------------------------------------ #
    @property
    def state(self) -> PeelingState:
        """The maintained peeling state (raises before a graph is loaded)."""
        if self._state is None:
            raise StateError("no graph loaded; call load_graph or load_edges first")
        return self._state

    @property
    def graph(self) -> DynamicGraph:
        """The evolving transaction graph."""
        return self.state.graph

    def detect(self) -> Community:
        """Return the current fraudulent community ``S_P`` (Listing 1 line 9)."""
        return self.state.community()

    def result(self) -> PeelingResult:
        """Export the full peeling result (sequence, weights, community)."""
        return self.state.as_result()

    def enumerate_frauds(
        self,
        max_instances: int = 10,
        min_density: float = 0.0,
        min_size: int = 2,
    ) -> Sequence[CommunityInstance]:
        """Enumerate individual dense fraud instances (Appendix C.2)."""
        return enumerate_communities(
            self.state,
            max_instances=max_instances,
            min_density=min_density,
            min_size=min_size,
        )

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #
    def insert_edge(
        self,
        src: Vertex,
        dst: Vertex,
        weight: float = 1.0,
        timestamp: Optional[float] = None,
        src_prior: Optional[float] = None,
        dst_prior: Optional[float] = None,
    ) -> Community:
        """Insert one transaction and return the updated community.

        With edge grouping enabled the edge may be deferred (benign) — the
        returned community then reflects the graph *without* the buffered
        benign edges, exactly as in the paper's deployment.

        ``src_prior`` / ``dst_prior`` are optional vertex suspiciousness
        priors ("side information") honoured only when the endpoint is
        new; existing vertices keep their current prior.
        """
        state = self.state
        if self._grouper is not None:
            update = EdgeUpdate(src, dst, weight, src_weight=src_prior, dst_weight=dst_prior)
            flush = self._grouper.offer(update, timestamp=timestamp)
            self.last_stats = flush.stats
            return state.community()
        self.last_stats = _insert_edge(
            state, src, dst, raw_weight=weight, src_prior=src_prior, dst_prior=dst_prior
        )
        return state.community()

    def insert_batch_edges(self, batch: BatchInput) -> Community:
        """Insert a batch of transactions (Algorithm 2) and return the community."""
        state = self.state
        if self._grouper is not None and self._grouper.pending():
            # Pending benign edges must not be reordered past an explicit batch.
            self._grouper.flush()
        self.last_stats = insert_batch(state, batch)
        return state.community()

    def delete_edge(self, src: Vertex, dst: Vertex) -> Community:
        """Delete one outdated transaction and return the updated community.

        Singular convenience symmetric with :meth:`insert_edge`; delegates
        to :meth:`delete_edges`, so :attr:`last_stats` is updated the same
        way.
        """
        return self.delete_edges([(src, dst)])

    def delete_edges(self, edges: Iterable[Tuple[Vertex, Vertex]]) -> Community:
        """Delete outdated transactions (Appendix C.1) and return the community.

        Like the insert paths, the cost of the maintenance pass is recorded
        in :attr:`last_stats` (see ``ReorderStats.repeeled_positions``).
        """
        state = self.state
        self.last_stats = delete_edges(state, edges)
        return state.community()

    def flush_pending(self) -> Community:
        """Force-flush the benign-edge buffer (no-op without edge grouping).

        With nothing buffered this is a guaranteed fast path: the grouper
        is never invoked and the cached community is returned as-is.  The
        sharded coordinator (:class:`repro.engine.sharded.ShardedSpade`)
        calls this on every tick for every shard, so the empty case is
        pinned O(1) by an explicit guard and a regression test rather
        than left to the grouper's own early return.
        """
        if self._grouper is not None and self._grouper.pending():
            self._grouper.flush()
        return self.state.community()

    def pending_edges(self) -> int:
        """Return the number of buffered benign edges awaiting a flush."""
        return self._grouper.pending() if self._grouper is not None else 0

    # ------------------------------------------------------------------ #
    # Built-ins exposed for inspection
    # ------------------------------------------------------------------ #
    def is_benign(self, src: Vertex, dst: Vertex, weight: float = 1.0) -> bool:
        """Classify an incoming transaction as benign or urgent (Definition 4.1)."""
        state = self.state
        edge_weight = self._semantics.edge_weight(src, dst, weight, state.graph)
        return is_benign(state, src, dst, edge_weight)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self._state is None:
            loaded = "unloaded"
        else:
            graph = self._state.graph
            loaded = f"|V|={graph.num_vertices()}, |E|={graph.num_edges()}"
        return (
            f"Spade(semantics={self._semantics.name}, "
            f"backend={self.backend}, {loaded})"
        )
