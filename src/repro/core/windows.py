"""Fraud detection during a time period (Appendix C.3 of the paper).

Moderators sometimes need the fraudulent community for transactions that
happened in a specific window ``[τ_s', τ_e']`` when the maintained state
covers a different window ``[τ_s, τ_e]``.  Rather than re-peeling the new
window from scratch, the appendix distinguishes five overlap cases and
reuses incremental insertion (Algorithm 2) for edges entering the window
and incremental deletion (Appendix C.1) for edges leaving it:

* **Case 1** — disjoint windows: build and peel the new window directly.
* **Case 2** — the new window contains the old: insert ``E[s', s]`` and
  ``E[e, e']``.
* **Case 3** — the old window contains the new: delete ``E[s, s']`` and
  ``E[e', e]``.
* **Case 4** — slide left: insert ``E[s', s]``, delete ``E[e', e]``.
* **Case 5** — slide right: insert ``E[e, e']``, delete ``E[s, s']``.

:class:`TimeWindowDetector` owns the full timestamped transaction history
(the "storage system" box of Figure 4), the current window and the peeling
state for it, and shifts the window with exactly those operations.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.batch import insert_batch
from repro.core.deletion import delete_edges
from repro.core.state import PeelingState
from repro.graph.delta import EdgeUpdate
from repro.graph.graph import DynamicGraph
from repro.peeling.semantics import PeelingSemantics

__all__ = ["WindowShift", "TimeWindowDetector"]


@dataclass(frozen=True)
class WindowShift:
    """Summary of one window move."""

    case: int
    inserted: int
    deleted: int
    rebuilt: bool


class TimeWindowDetector:
    """Maintain the fraudulent community for a sliding time window.

    Parameters
    ----------
    history:
        The full list of ``(timestamp, EdgeUpdate)`` pairs, sorted by
        timestamp (an exception is raised otherwise).
    semantics:
        The peeling semantics used to weight edges.
    backend:
        Graph backend used when a window is (re)materialised
        (``"dict"`` / ``"array"``; ``None`` = process default).
    """

    def __init__(
        self,
        history: Sequence[Tuple[float, EdgeUpdate]],
        semantics: PeelingSemantics,
        backend: Optional[str] = None,
    ) -> None:
        timestamps = [t for t, _u in history]
        if any(b < a for a, b in zip(timestamps, timestamps[1:])):
            raise ValueError("history must be sorted by timestamp")
        self._timestamps: List[float] = list(timestamps)
        self._updates: List[EdgeUpdate] = [u for _t, u in history]
        self._semantics = semantics
        self._backend = backend
        self._window: Optional[Tuple[float, float]] = None
        self._state: Optional[PeelingState] = None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def window(self) -> Optional[Tuple[float, float]]:
        """The currently materialised window, or ``None`` before first use."""
        return self._window

    @property
    def state(self) -> Optional[PeelingState]:
        """The peeling state of the current window."""
        return self._state

    def _slice(self, start: float, end: float) -> List[EdgeUpdate]:
        """Return updates with ``start <= timestamp < end``."""
        lo = bisect.bisect_left(self._timestamps, start)
        hi = bisect.bisect_left(self._timestamps, end)
        return self._updates[lo:hi]

    # ------------------------------------------------------------------ #
    # Window maintenance
    # ------------------------------------------------------------------ #
    def _build(self, start: float, end: float) -> WindowShift:
        """Case 1 (or first use): materialise the window from scratch."""
        updates = self._slice(start, end)
        graph = self._semantics.materialize(
            [(u.src, u.dst, u.weight) for u in updates], backend=self._backend
        )
        self._state = PeelingState(graph, self._semantics)
        self._window = (start, end)
        return WindowShift(case=1, inserted=len(updates), deleted=0, rebuilt=True)

    def set_window(self, start: float, end: float) -> WindowShift:
        """Move the detector to the window ``[start, end)``.

        Chooses among the five cases of Appendix C.3 based on the overlap
        with the current window, applying incremental insertions and
        deletions instead of rebuilding whenever the windows overlap.
        """
        if start >= end:
            raise ValueError(f"empty window [{start}, {end})")
        if self._window is None or self._state is None:
            return self._build(start, end)

        old_start, old_end = self._window
        if end <= old_start or start >= old_end:
            return self._build(start, end)

        inserted = 0
        deleted = 0
        case = 0
        if start <= old_start and end >= old_end:
            case = 2
        elif start >= old_start and end <= old_end:
            case = 3
        elif start <= old_start and end <= old_end:
            case = 4
        else:
            case = 5

        # Deletions first so that re-inserted weights see a smaller graph;
        # both orders are valid, this one keeps the graph minimal.
        to_delete = []
        if start > old_start:
            to_delete.extend(self._slice(old_start, start))
        if end < old_end:
            to_delete.extend(self._slice(end, old_end))
        if to_delete:
            delete_edges(self._state, [(u.src, u.dst) for u in to_delete])
            deleted = len(to_delete)

        to_insert = []
        if start < old_start:
            to_insert.extend(self._slice(start, old_start))
        if end > old_end:
            to_insert.extend(self._slice(old_end, end))
        if to_insert:
            insert_batch(self._state, to_insert)
            inserted = len(to_insert)

        self._window = (start, end)
        return WindowShift(case=case, inserted=inserted, deleted=deleted, rebuilt=False)

    def detect(self):
        """Return the current window's fraudulent community."""
        if self._state is None:
            raise RuntimeError("set_window must be called before detect")
        return self._state.community()
