"""Dense-subgraph enumeration (Appendix C.2 of the paper).

A single densest community is often the union of several *fraud instances*
(Figure 14: three blocks of equal density form one dense subgraph).  When
moderators need the individual instances, Spade enumerates them by
repeatedly reporting the current community and peeling it out of the graph:

1. run the peeling algorithm (or reuse the maintained state) to get ``S_P``;
2. report ``S_P``, remove it (and its incident edges) from consideration;
3. re-peel what remains — the appendix notes this does not need to start
   from scratch, which :func:`enumerate_communities` honours by running the
   restricted :func:`repro.peeling.static.peel_subset` on the shrinking
   remainder only;
4. stop when the remaining density falls below a threshold, the instance
   budget is exhausted, or nothing is left.

The connected-component split (:func:`split_instances`) further separates a
reported community into its weakly connected parts, which is how Figure 15
counts "fraud instances" per timespan.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Set

from repro.core.state import PeelingState
from repro.graph.graph import DynamicGraph, Vertex
from repro.peeling.result import PeelingResult
from repro.peeling.semantics import subset_density
from repro.peeling.static import peel_subset, peel_subset_csr

__all__ = [
    "CommunityInstance",
    "enumerate_communities",
    "enumerate_csr",
    "split_instances",
]


@dataclass(frozen=True)
class CommunityInstance:
    """One enumerated dense community."""

    vertices: FrozenSet[Vertex]
    density: float
    rank: int

    def __len__(self) -> int:
        return len(self.vertices)


def split_instances(graph: DynamicGraph, community: FrozenSet[Vertex]) -> List[FrozenSet[Vertex]]:
    """Split a community into weakly connected fraud instances.

    Vertices of the community that are isolated within it form singleton
    instances; they typically correspond to vertices kept only because the
    density metric tolerates them (e.g. zero-weight spectators) and are
    reported last.
    """
    remaining: Set[Vertex] = set(community)
    instances: List[FrozenSet[Vertex]] = []
    while remaining:
        root = next(iter(remaining))
        component: Set[Vertex] = set()
        frontier = deque([root])
        remaining.discard(root)
        while frontier:
            vertex = frontier.popleft()
            component.add(vertex)
            for neighbor in graph.neighbors(vertex):
                if neighbor in remaining:
                    remaining.discard(neighbor)
                    frontier.append(neighbor)
        instances.append(frozenset(component))
    instances.sort(key=len, reverse=True)
    return instances


def enumerate_communities(
    state_or_graph,
    max_instances: int = 10,
    min_density: float = 0.0,
    min_size: int = 2,
) -> List[CommunityInstance]:
    """Enumerate dense communities in decreasing density order.

    Parameters
    ----------
    state_or_graph:
        Either a :class:`PeelingState` (preferred — its maintained sequence
        seeds the first community for free) or a plain weighted
        :class:`DynamicGraph`.
    max_instances:
        Upper bound on the number of reported communities.
    min_density:
        Stop when the next community's density drops to or below this value.
    min_size:
        Stop when the next community would be smaller than this.
    """
    if isinstance(state_or_graph, PeelingState):
        graph = state_or_graph.graph
        first: Optional[PeelingResult] = state_or_graph.as_result()
        semantics_name = state_or_graph.semantics.name
    else:
        graph = state_or_graph
        first = None
        semantics_name = "custom"

    remaining: Set[Vertex] = set(graph.vertices())
    instances: List[CommunityInstance] = []

    # Enumeration is read-only: on backends that can freeze (array), peel
    # every shrinking remainder over one immutable CSR snapshot instead of
    # hammering the mutable pools.  The freeze is deferred to the first
    # re-peel so detector-style calls that only consume the maintained
    # sequence (``first``) never pay for it.
    use_csr = hasattr(graph, "freeze")
    snapshot = None

    while remaining and len(instances) < max_instances:
        if first is not None:
            result = first
            first = None
        elif use_csr:
            if snapshot is None:
                snapshot = graph.freeze()
            result = peel_subset_csr(snapshot, remaining, semantics_name=semantics_name)
        else:
            result = peel_subset(graph, remaining, semantics_name=semantics_name)
        community = set(result.community) & remaining
        if not community:
            break
        # Density via the label path on purpose: it accumulates in the
        # same association order on every backend, keeping dict and array
        # enumeration bit-identical (snapshot.subset_density sums pairwise
        # and can drift by ulps on non-dyadic weights).
        density = subset_density(graph, community)
        if density <= min_density or len(community) < min_size:
            break
        instances.append(
            CommunityInstance(vertices=frozenset(community), density=density, rank=len(instances))
        )
        remaining -= community
    return instances


def _subset_density_csr(snapshot, subset: Set[Vertex]) -> float:
    """Label-path ``g(S)`` over a snapshot, bit-matching the mutable path.

    Accumulates in exactly the association order of
    :func:`repro.peeling.semantics.subset_suspiciousness` — per vertex of
    ``set(subset)``, prior first, then out-neighbors in pool order — so an
    enumeration over a snapshot reports the same densities as one over the
    live graph it froze.
    """
    if not subset:
        return 0.0
    members = set(subset)
    out_offsets = snapshot.out_offsets
    out_neighbors = snapshot.out_neighbors
    out_weights = snapshot.out_weights
    vertex_weights = snapshot.vertex_weights
    labels = snapshot.labels
    total = 0.0
    for vertex in members:
        vid = snapshot.id_of(vertex)
        if vid < 0 or not snapshot.member[vid]:
            continue
        total += float(vertex_weights[vid])
        for pos in range(int(out_offsets[vid]), int(out_offsets[vid + 1])):
            if labels[int(out_neighbors[pos])] in members:
                total += float(out_weights[pos])
    return total / len(subset)


def enumerate_csr(
    snapshot,
    max_instances: int = 10,
    min_density: float = 0.0,
    min_size: int = 2,
    semantics_name: str = "custom",
) -> List[CommunityInstance]:
    """Enumerate dense communities from an immutable CSR snapshot alone.

    The read-isolated twin of :func:`enumerate_communities`: the serving
    layer answers ``GET /v1/communities`` from a frozen
    :class:`~repro.graph.csr.CsrSnapshot` while the writer keeps mutating
    the live graph.  The loop is the same report-remove-repeel cycle; the
    first community comes from a fresh peel rather than the maintained
    sequence, which is identical for the exactly-maintained semantics
    (DG / DW — the property the serve consistency tests pin).
    """
    if snapshot.labels is None:
        raise ValueError("enumerate_csr needs a snapshot saved with labels")
    remaining: Set[Vertex] = set(snapshot.labels_for(snapshot.order))
    instances: List[CommunityInstance] = []
    while remaining and len(instances) < max_instances:
        result = peel_subset_csr(snapshot, remaining, semantics_name=semantics_name)
        community = set(result.community) & remaining
        if not community:
            break
        density = _subset_density_csr(snapshot, community)
        if density <= min_density or len(community) < min_size:
            break
        instances.append(
            CommunityInstance(vertices=frozenset(community), density=density, rank=len(instances))
        )
        remaining -= community
    return instances
