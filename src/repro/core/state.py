"""The peeling-sequence state maintained incrementally by Spade.

Listing 1 of the paper keeps two vectors next to the graph: ``_seq`` (the
peeling sequence ``O``) and ``_weight`` (the peeling weights ``Δ``).  This
module wraps them — together with the total suspiciousness ``f(V)`` and a
position index — into :class:`PeelingState`, the object every incremental
algorithm in :mod:`repro.core` operates on.

Implementation notes
--------------------
* The sequence is stored as a dense ``int32`` id array (ids assigned by the
  graph backend's :class:`~repro.graph.interning.VertexInterner`), aligned
  with a ``float64`` weight array.  Both live inside a shared buffer with
  *head-room*: the paper's rule for vertex insertion prepends new vertices
  to the head of the sequence, and the head-room turns that prepend into an
  O(1)-amortized pointer decrement instead of an ``np.concatenate`` copy.
* Vertex positions are a numpy ``int64`` array indexed by dense id holding
  *buffer* indices, so a prepend shifts every logical position by one
  without renumbering anything, and the reorder engine can gather the
  positions of a whole neighbourhood with one fancy-index.
* Tie-breaking between equal peeling weights uses the order in which
  vertices entered the graph — which is exactly the dense id — so the
  incrementally maintained sequence is *identical* to a from-scratch run,
  not merely equivalent.

The label-facing API (``order``, ``position``, ``write_segment``, …) is
unchanged from the dict-era state; the ``*_id`` twins expose the dense-id
surface the hot paths use.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import FrozenSet, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import StateError
from repro.graph.graph import Vertex
from repro.graph.interning import VertexInterner
from repro.peeling.result import PeelingResult
from repro.peeling.semantics import PeelingSemantics
from repro.peeling.static import peel

__all__ = ["PeelingState", "Community"]

#: Initial head-room reserved for prepends in front of the sequence.
_INITIAL_HEADROOM = 32


class Community(Tuple[FrozenSet[Vertex], float, int]):
    """``(vertices, density, peel_index)`` of the current densest suffix."""

    __slots__ = ()

    def __new__(cls, vertices: FrozenSet[Vertex], density: float, peel_index: int) -> "Community":
        return super().__new__(cls, (frozenset(vertices), float(density), int(peel_index)))

    @property
    def vertices(self) -> FrozenSet[Vertex]:
        """The fraudulent community ``S_P``."""
        return self[0]

    @property
    def density(self) -> float:
        """Its density ``g(S_P)``."""
        return self[1]

    @property
    def peel_index(self) -> int:
        """Number of vertices peeled before the community."""
        return self[2]

    def __contains__(self, vertex: object) -> bool:  # type: ignore[override]
        return vertex in self[0]


class _TieBreakView(Mapping):
    """Read-only mapping view ``label -> tie-break index`` over the interner.

    The tie-break index of a vertex *is* its dense id, so this view simply
    re-exposes the interner under the historical ``state.tie_break`` name.
    """

    __slots__ = ("_interner",)

    def __init__(self, interner: VertexInterner) -> None:
        self._interner = interner

    def __getitem__(self, label: Vertex) -> int:
        return self._interner.id_of(label)

    def __len__(self) -> int:
        return len(self._interner)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._interner)


class PeelingState:
    """The incrementally maintained peeling sequence over a weighted graph.

    Parameters
    ----------
    graph:
        The weighted graph ``G`` — any
        :class:`~repro.graph.backend.GraphBackend` (owned by the caller;
        mutated in place as updates arrive).
    semantics:
        The peeling semantics that weighted the graph; used for labelling
        and for weighting future updates.
    result:
        An optional precomputed static peeling result.  When omitted the
        state runs the static algorithm once (the "initialisation" step of
        the paper's pipeline).
    kernel:
        The hot-loop implementation choice (``"python"`` / ``"native"`` /
        ``"auto"``; ``None`` = process default) honored by every
        maintenance pass over this state — see :mod:`repro.native`.
    """

    def __init__(
        self,
        graph,
        semantics: PeelingSemantics,
        result: Optional[PeelingResult] = None,
        kernel: Optional[str] = None,
    ) -> None:
        self.graph = graph
        self.semantics = semantics
        self.kernel = kernel
        if result is None:
            result = peel(graph, semantics_name=semantics.name)
        if len(result.order) != graph.num_vertices():
            raise StateError(
                "peeling result does not cover the graph: "
                f"{len(result.order)} sequence entries vs {graph.num_vertices()} vertices"
            )
        interner = graph.interner
        n = len(result.order)
        head = _INITIAL_HEADROOM
        capacity = head + n
        self._order_buf = np.empty(capacity, dtype=np.int32)
        self._weights_buf = np.empty(capacity, dtype=np.float64)
        self._head = head
        self._tail = head + n
        if n:
            ids = interner.ids_for(result.order)
            self._order_buf[head : head + n] = ids
            self._weights_buf[head : head + n] = np.asarray(result.weights, dtype=np.float64)
        self._pos_buf = np.full(max(len(interner), 1), -1, dtype=np.int64)
        if n:
            self._pos_buf[self._order_buf[head : head + n]] = np.arange(head, head + n)
        self.total: float = float(result.total_suspiciousness)
        self._community_cache: Optional[Community] = None
        self._touched_scratch: Optional[np.ndarray] = None
        self._inq_scratch: Optional[np.ndarray] = None
        self._inq_val_scratch: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # Interner plumbing
    # ------------------------------------------------------------------ #
    @property
    def interner(self) -> VertexInterner:
        """The label ↔ dense-id interner shared with the graph."""
        return self.graph.interner

    @property
    def tie_break(self) -> Mapping:
        """Mapping view ``label -> tie-break index`` (the dense id)."""
        return _TieBreakView(self.graph.interner)

    def _ensure_pos_capacity(self, vid: int) -> None:
        if vid >= len(self._pos_buf):
            grown = np.full(max(16, 2 * len(self._pos_buf), vid + 1), -1, dtype=np.int64)
            grown[: len(self._pos_buf)] = self._pos_buf
            self._pos_buf = grown

    def reorder_masks(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return the persistent ``(touched, in_queue)`` scratch masks.

        Owned by the state so a maintenance pass costs O(affected area),
        not O(|V|): the reorder engine borrows these id-indexed boolean
        arrays and must leave every entry ``False`` when it returns (it
        resets exactly the entries it set).  Grown to the interner's
        current capacity on demand.
        """
        capacity = max(len(self.graph.interner), 1)
        if self._touched_scratch is None or len(self._touched_scratch) < capacity:
            grown_capacity = max(16, capacity)
            if self._touched_scratch is not None:
                grown_capacity = max(grown_capacity, 2 * len(self._touched_scratch))
            self._touched_scratch = np.zeros(grown_capacity, dtype=bool)
            self._inq_scratch = np.zeros(grown_capacity, dtype=bool)
            # Companion f64 scratch for the native reorder kernel: the
            # queue priority per id, meaningful only where the in-queue
            # mask is set (so it never needs resetting).
            self._inq_val_scratch = np.zeros(grown_capacity, dtype=np.float64)
        return self._touched_scratch, self._inq_scratch

    def reorder_queue_values(self) -> np.ndarray:
        """The f64 queue-priority scratch paired with :meth:`reorder_masks`."""
        self.reorder_masks()
        return self._inq_val_scratch

    # ------------------------------------------------------------------ #
    # Sequence views
    # ------------------------------------------------------------------ #
    @property
    def order(self) -> List[Vertex]:
        """The peeling sequence as original vertex labels (materialised)."""
        return self.graph.interner.labels_for(self._order_buf[self._head : self._tail])

    @property
    def order_ids(self) -> np.ndarray:
        """The peeling sequence as dense ids (a live view — do not mutate)."""
        return self._order_buf[self._head : self._tail]

    @property
    def weights(self) -> np.ndarray:
        """The peeling weights ``Δ`` (a live, writable view)."""
        return self._weights_buf[self._head : self._tail]

    # ------------------------------------------------------------------ #
    # Positions
    # ------------------------------------------------------------------ #
    def position(self, vertex: Vertex) -> int:
        """Return the current 0-based position of ``vertex`` in the sequence."""
        try:
            vid = self.graph.interner.id_of(vertex)
        except KeyError:
            raise StateError(f"vertex {vertex!r} is not in the peeling sequence") from None
        return self.position_id(vid)

    def position_id(self, vid: int) -> int:
        """Return the current 0-based position of the vertex with id ``vid``."""
        raw = self._pos_buf[vid] if 0 <= vid < len(self._pos_buf) else -1
        if raw < 0:
            label = self.graph.interner.label_of(vid) if vid >= 0 else vid
            raise StateError(f"vertex {label!r} is not in the peeling sequence")
        return int(raw - self._head)

    def set_position(self, vertex: Vertex, position: int) -> None:
        """Record that ``vertex`` now sits at ``position`` (used by reorders)."""
        vid = self.graph.interner.id_of(vertex)
        self._ensure_pos_capacity(vid)
        self._pos_buf[vid] = position + self._head

    def __len__(self) -> int:
        return self._tail - self._head

    def __contains__(self, vertex: Vertex) -> bool:
        vid = self.graph.interner.get_id(vertex)
        return self.contains_id(vid)

    def contains_id(self, vid: int) -> bool:
        """Return whether the vertex with id ``vid`` is in the sequence."""
        return 0 <= vid < len(self._pos_buf) and self._pos_buf[vid] >= 0

    # ------------------------------------------------------------------ #
    # Mutations
    # ------------------------------------------------------------------ #
    def register_vertex(self, vertex: Vertex) -> int:
        """Assign a tie-break index (dense id) to a newly seen vertex."""
        vid = self.graph.interner.intern(vertex)
        self._ensure_pos_capacity(vid)
        return vid

    def prepend_vertex(self, vertex: Vertex, weight: float) -> int:
        """Insert a brand-new vertex at the head of the peeling sequence.

        This is the paper's rule for vertex insertion (Section 4.1): the new
        vertex starts at the head; the subsequent edge reordering moves it to
        the position its peeling weight deserves.  O(1) amortized thanks to
        the head-room buffer.  Returns the dense id of the vertex.
        """
        vid = self.register_vertex(vertex)
        if self.contains_id(vid):
            raise StateError(f"vertex {vertex!r} is already in the peeling sequence")
        if self._head == 0:
            self._grow_headroom()
        self._head -= 1
        self._order_buf[self._head] = vid
        self._weights_buf[self._head] = float(weight)
        self._pos_buf[vid] = self._head
        self.invalidate()
        return vid

    def _grow_headroom(self) -> None:
        """Reallocate the sequence buffers with fresh head-room in front."""
        n = self._tail - self._head
        head = max(_INITIAL_HEADROOM, n // 2)
        capacity = head + n
        order = np.empty(capacity, dtype=np.int32)
        weights = np.empty(capacity, dtype=np.float64)
        order[head : head + n] = self._order_buf[self._head : self._tail]
        weights[head : head + n] = self._weights_buf[self._head : self._tail]
        shift = head - self._head
        live = self._pos_buf >= 0
        self._pos_buf[live] += shift
        self._order_buf = order
        self._weights_buf = weights
        self._head = head
        self._tail = head + n

    def write_segment(
        self,
        start: int,
        vertices: Sequence[Vertex],
        weights: Sequence[float],
    ) -> None:
        """Overwrite the sequence segment ``[start, start + len(vertices))``."""
        interner = self.graph.interner
        ids = np.fromiter(
            (interner.id_of(v) for v in vertices), dtype=np.int32, count=len(vertices)
        )
        self.write_segment_ids(start, ids, np.asarray(weights, dtype=np.float64))

    def write_segment_ids(
        self,
        start: int,
        ids: np.ndarray,
        weights: np.ndarray,
    ) -> None:
        """Id-based :meth:`write_segment` used by the reorder hot path."""
        end = start + len(ids)
        if end > len(self):
            raise StateError(
                f"segment [{start}, {end}) exceeds the sequence length {len(self)}"
            )
        a = self._head + start
        b = self._head + end
        self._order_buf[a:b] = ids
        self._weights_buf[a:b] = weights
        self._pos_buf[self._order_buf[a:b]] = np.arange(a, b)
        self.invalidate()

    def add_total(self, amount: float) -> None:
        """Account for suspiciousness added to (or removed from) the graph."""
        self.total += float(amount)
        self.invalidate()

    def invalidate(self) -> None:
        """Drop the cached community (called after any mutation)."""
        self._community_cache = None

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def full_set_weight(self, vertex: Vertex) -> float:
        """Return ``w_u(S_0)``: the peeling weight w.r.t. the whole graph."""
        graph = self.graph
        return graph.vertex_weight(vertex) + graph.incident_weight(vertex)

    def community(self) -> Community:
        """Return the current fraudulent community ``S_P`` and its density.

        The density profile is derived from the maintained weights via the
        telescoping identity ``f(S_i) = f(S_{i-1}) - Δ_i`` and scanned with
        numpy, so a detection costs ``O(|V|)`` vectorised work — orders of
        magnitude below a static re-peel.
        """
        if self._community_cache is not None:
            return self._community_cache
        n = len(self)
        if n == 0:
            self._community_cache = Community(frozenset(), 0.0, 0)
            return self._community_cache
        weights = self.weights
        prefix = np.concatenate(([0.0], np.cumsum(weights)[:-1]))
        remaining = self.total - prefix
        sizes = np.arange(n, 0, -1, dtype=np.float64)
        densities = remaining / sizes
        best = int(np.argmax(densities))
        members = self.graph.interner.labels_for(self._order_buf[self._head + best : self._tail])
        community = Community(frozenset(members), float(densities[best]), best)
        self._community_cache = community
        return community

    def density_profile(self) -> np.ndarray:
        """Return ``[g(S_0), ..., g(S_{n-1})]`` as a numpy array."""
        n = len(self)
        if n == 0:
            return np.zeros(0)
        weights = self.weights
        prefix = np.concatenate(([0.0], np.cumsum(weights)[:-1]))
        return (self.total - prefix) / np.arange(n, 0, -1, dtype=np.float64)

    def as_result(self) -> PeelingResult:
        """Export the maintained state as an immutable :class:`PeelingResult`."""
        community = self.community()
        return PeelingResult(
            order=tuple(self.order),
            weights=tuple(float(w) for w in self.weights),
            total_suspiciousness=self.total,
            best_index=community.peel_index,
            best_density=community.density,
            community=community.vertices,
            semantics_name=self.semantics.name,
        )

    def check_consistency(self, tolerance: float = 1e-6) -> None:
        """Verify internal invariants; raises :class:`StateError` on failure.

        Intended for tests and debugging: checks position-index alignment
        and the telescoping identity ``sum(Δ) == f(V)``.
        """
        if len(self.order_ids) != len(self.weights):
            raise StateError("order and weights arrays are misaligned")
        if len(self) != self.graph.num_vertices():
            raise StateError(
                f"sequence covers {len(self)} vertices but the graph has "
                f"{self.graph.num_vertices()}"
            )
        for index, vid in enumerate(self.order_ids.tolist()):
            if self.position_id(vid) != index:
                label = self.graph.interner.label_of(vid)
                raise StateError(f"position index for {label!r} is stale")
        drift = abs(float(np.sum(self.weights)) - self.total)
        scale = max(1.0, abs(self.total))
        if drift > tolerance * scale:
            raise StateError(
                f"telescoping violated: sum(Δ)={float(np.sum(self.weights)):.6f} "
                f"!= f(V)={self.total:.6f}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PeelingState({self.semantics.name}, |V|={len(self)}, "
            f"f(V)={self.total:.3f})"
        )
