"""The peeling-sequence state maintained incrementally by Spade.

Listing 1 of the paper keeps two vectors next to the graph: ``_seq`` (the
peeling sequence ``O``) and ``_weight`` (the peeling weights ``Δ``).  This
module wraps them — together with the total suspiciousness ``f(V)`` and a
position index — into :class:`PeelingState`, the object every incremental
algorithm in :mod:`repro.core` operates on.

Implementation notes
--------------------
* ``order`` is a plain Python list; ``weights`` is a ``numpy.float64``
  array aligned with it, which makes the suffix-density scan used by
  :meth:`PeelingState.community` a handful of vectorised operations instead
  of a Python loop.
* Vertex positions are kept in a dictionary of *raw* indices plus a global
  offset, so that prepending new vertices to the head of the sequence
  (the paper's rule for vertex insertion) does not require renumbering
  every existing vertex.
* Tie-breaking between equal peeling weights uses the order in which
  vertices entered the graph — the same rule as the static algorithm in
  :mod:`repro.peeling.static` — so that the incrementally maintained
  sequence is *identical* to a from-scratch run, not merely equivalent.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import StateError
from repro.graph.graph import DynamicGraph, Vertex
from repro.peeling.result import PeelingResult
from repro.peeling.semantics import PeelingSemantics
from repro.peeling.static import peel

__all__ = ["PeelingState", "Community"]


class Community(Tuple[FrozenSet[Vertex], float, int]):
    """``(vertices, density, peel_index)`` of the current densest suffix."""

    __slots__ = ()

    def __new__(cls, vertices: FrozenSet[Vertex], density: float, peel_index: int) -> "Community":
        return super().__new__(cls, (frozenset(vertices), float(density), int(peel_index)))

    @property
    def vertices(self) -> FrozenSet[Vertex]:
        """The fraudulent community ``S_P``."""
        return self[0]

    @property
    def density(self) -> float:
        """Its density ``g(S_P)``."""
        return self[1]

    @property
    def peel_index(self) -> int:
        """Number of vertices peeled before the community."""
        return self[2]

    def __contains__(self, vertex: object) -> bool:  # type: ignore[override]
        return vertex in self[0]


class PeelingState:
    """The incrementally maintained peeling sequence over a weighted graph.

    Parameters
    ----------
    graph:
        The weighted graph ``G`` (owned by the caller; mutated in place as
        updates arrive).
    semantics:
        The peeling semantics that weighted the graph; used for labelling
        and for weighting future updates.
    result:
        An optional precomputed static peeling result.  When omitted the
        state runs the static algorithm once (the "initialisation" step of
        the paper's pipeline).
    """

    def __init__(
        self,
        graph: DynamicGraph,
        semantics: PeelingSemantics,
        result: Optional[PeelingResult] = None,
    ) -> None:
        self.graph = graph
        self.semantics = semantics
        if result is None:
            result = peel(graph, semantics_name=semantics.name)
        if len(result.order) != graph.num_vertices():
            raise StateError(
                "peeling result does not cover the graph: "
                f"{len(result.order)} sequence entries vs {graph.num_vertices()} vertices"
            )
        self.order: List[Vertex] = list(result.order)
        self.weights: np.ndarray = np.array(result.weights, dtype=np.float64)
        self.total: float = float(result.total_suspiciousness)
        self._offset: int = 0
        self._raw_pos: Dict[Vertex, int] = {v: i for i, v in enumerate(self.order)}
        self.tie_break: Dict[Vertex, int] = {v: i for i, v in enumerate(graph.vertices())}
        self._community_cache: Optional[Community] = None

    # ------------------------------------------------------------------ #
    # Positions
    # ------------------------------------------------------------------ #
    def position(self, vertex: Vertex) -> int:
        """Return the current 0-based position of ``vertex`` in the sequence."""
        try:
            return self._raw_pos[vertex] + self._offset
        except KeyError:
            raise StateError(f"vertex {vertex!r} is not in the peeling sequence") from None

    def set_position(self, vertex: Vertex, position: int) -> None:
        """Record that ``vertex`` now sits at ``position`` (used by reorders)."""
        self._raw_pos[vertex] = position - self._offset

    def __len__(self) -> int:
        return len(self.order)

    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._raw_pos

    # ------------------------------------------------------------------ #
    # Mutations
    # ------------------------------------------------------------------ #
    def register_vertex(self, vertex: Vertex) -> None:
        """Assign a tie-break index to a vertex newly added to the graph."""
        if vertex not in self.tie_break:
            self.tie_break[vertex] = len(self.tie_break)

    def prepend_vertex(self, vertex: Vertex, weight: float) -> None:
        """Insert a brand-new vertex at the head of the peeling sequence.

        This is the paper's rule for vertex insertion (Section 4.1): the new
        vertex starts at the head; the subsequent edge reordering moves it to
        the position its peeling weight deserves.
        """
        if vertex in self._raw_pos:
            raise StateError(f"vertex {vertex!r} is already in the peeling sequence")
        self.order.insert(0, vertex)
        self.weights = np.concatenate(([float(weight)], self.weights))
        self._offset += 1
        self._raw_pos[vertex] = -self._offset
        self.register_vertex(vertex)
        self.invalidate()

    def write_segment(
        self,
        start: int,
        vertices: Sequence[Vertex],
        weights: Sequence[float],
    ) -> None:
        """Overwrite the sequence segment ``[start, start + len(vertices))``."""
        end = start + len(vertices)
        if end > len(self.order):
            raise StateError(
                f"segment [{start}, {end}) exceeds the sequence length {len(self.order)}"
            )
        self.order[start:end] = list(vertices)
        self.weights[start:end] = np.asarray(weights, dtype=np.float64)
        for index, vertex in enumerate(vertices, start=start):
            self.set_position(vertex, index)
        self.invalidate()

    def add_total(self, amount: float) -> None:
        """Account for suspiciousness added to (or removed from) the graph."""
        self.total += float(amount)
        self.invalidate()

    def invalidate(self) -> None:
        """Drop the cached community (called after any mutation)."""
        self._community_cache = None

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def full_set_weight(self, vertex: Vertex) -> float:
        """Return ``w_u(S_0)``: the peeling weight w.r.t. the whole graph."""
        graph = self.graph
        return graph.vertex_weight(vertex) + graph.incident_weight(vertex)

    def community(self) -> Community:
        """Return the current fraudulent community ``S_P`` and its density.

        The density profile is derived from the maintained weights via the
        telescoping identity ``f(S_i) = f(S_{i-1}) - Δ_i`` and scanned with
        numpy, so a detection costs ``O(|V|)`` vectorised work — orders of
        magnitude below a static re-peel.
        """
        if self._community_cache is not None:
            return self._community_cache
        n = len(self.order)
        if n == 0:
            self._community_cache = Community(frozenset(), 0.0, 0)
            return self._community_cache
        prefix = np.concatenate(([0.0], np.cumsum(self.weights)[:-1]))
        remaining = self.total - prefix
        sizes = np.arange(n, 0, -1, dtype=np.float64)
        densities = remaining / sizes
        best = int(np.argmax(densities))
        community = Community(frozenset(self.order[best:]), float(densities[best]), best)
        self._community_cache = community
        return community

    def density_profile(self) -> np.ndarray:
        """Return ``[g(S_0), ..., g(S_{n-1})]`` as a numpy array."""
        n = len(self.order)
        if n == 0:
            return np.zeros(0)
        prefix = np.concatenate(([0.0], np.cumsum(self.weights)[:-1]))
        return (self.total - prefix) / np.arange(n, 0, -1, dtype=np.float64)

    def as_result(self) -> PeelingResult:
        """Export the maintained state as an immutable :class:`PeelingResult`."""
        community = self.community()
        return PeelingResult(
            order=tuple(self.order),
            weights=tuple(float(w) for w in self.weights),
            total_suspiciousness=self.total,
            best_index=community.peel_index,
            best_density=community.density,
            community=community.vertices,
            semantics_name=self.semantics.name,
        )

    def check_consistency(self, tolerance: float = 1e-6) -> None:
        """Verify internal invariants; raises :class:`StateError` on failure.

        Intended for tests and debugging: checks position-index alignment
        and the telescoping identity ``sum(Δ) == f(V)``.
        """
        if len(self.order) != len(self.weights):
            raise StateError("order and weights arrays are misaligned")
        if len(self.order) != self.graph.num_vertices():
            raise StateError(
                f"sequence covers {len(self.order)} vertices but the graph has "
                f"{self.graph.num_vertices()}"
            )
        for index, vertex in enumerate(self.order):
            if self.position(vertex) != index:
                raise StateError(f"position index for {vertex!r} is stale")
        drift = abs(float(np.sum(self.weights)) - self.total)
        scale = max(1.0, abs(self.total))
        if drift > tolerance * scale:
            raise StateError(
                f"telescoping violated: sum(Δ)={float(np.sum(self.weights)):.6f} "
                f"!= f(V)={self.total:.6f}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PeelingState({self.semantics.name}, |V|={len(self.order)}, "
            f"f(V)={self.total:.3f})"
        )
