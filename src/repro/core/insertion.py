"""Single-edge insertion maintenance (Section 4.1 of the paper).

Given the peeling state for ``G`` and one new edge ``(u_i, u_j)`` with
suspiciousness ``Δ = c_ij``, Spade:

1. prepends any brand-new endpoint to the head of the sequence with its
   prior as the initial peeling weight (the paper initialises ``Δ_0 = 0``;
   we use the prior ``a_u`` which coincides with 0 for DG/DW and is the
   correct recovered value for FD);
2. applies the edge to the graph and bumps ``f(V)``;
3. marks the endpoint that appears *earlier* in the sequence as the seed —
   Lemma 4.1 guarantees everything before it is untouched — and runs the
   reordering engine from there.

The returned :class:`~repro.core.reorder.ReorderStats` quantifies the
affected area ``G_T`` that Section 4.1 uses in its complexity analysis.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.reorder import ReorderStats, reorder_after_insertions
from repro.core.state import PeelingState
from repro.graph.graph import Vertex

__all__ = ["insert_edge"]


def insert_edge(
    state: PeelingState,
    src: Vertex,
    dst: Vertex,
    raw_weight: float = 1.0,
    src_prior: Optional[float] = None,
    dst_prior: Optional[float] = None,
) -> ReorderStats:
    """Insert one edge and incrementally restore the peeling sequence.

    Parameters
    ----------
    state:
        The maintained peeling state (graph + sequence + weights).
    src, dst:
        Edge endpoints; unknown endpoints become new vertices.
    raw_weight:
        The raw transaction weight carried by the update.  The state's
        semantics decides how it maps to the edge suspiciousness ``c_ij``
        (identically for DW, ignored by DG, degree-discounted by FD).
    src_prior, dst_prior:
        Optional vertex priors ("side information") for new endpoints.
        Existing vertices keep their current prior.
    """
    graph = state.graph
    semantics = state.semantics

    added_suspiciousness = 0.0
    seed_ids = []

    for vertex, prior in ((src, src_prior), (dst, dst_prior)):
        if graph.has_vertex(vertex):
            continue
        vertex_weight = float(prior) if prior is not None else semantics.vertex_weight(vertex, graph)
        graph.add_vertex(vertex, vertex_weight)
        seed_ids.append(state.prepend_vertex(vertex, vertex_weight))
        added_suspiciousness += vertex_weight

    edge_weight = semantics.edge_weight(src, dst, raw_weight, graph)
    graph.add_edge(src, dst, edge_weight)
    added_suspiciousness += edge_weight
    state.add_total(added_suspiciousness)

    # Lemma 4.1: only the suffix starting at the earlier endpoint can change.
    interner = graph.interner
    src_id, dst_id = interner.id_of(src), interner.id_of(dst)
    earlier = src_id if state.position_id(src_id) <= state.position_id(dst_id) else dst_id
    if earlier not in seed_ids:
        seed_ids.append(earlier)

    return reorder_after_insertions(state, seed_ids=seed_ids)
