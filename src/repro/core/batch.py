"""Batched insertion maintenance (Section 4.2, Algorithm 2 of the paper).

Reordering the peeling sequence once per edge wastes work: a reordering
caused by an early insertion is frequently reversed by a later one in the
same batch (Example 4.2 / Figure 7, "stale incremental maintenance").
Algorithm 2 therefore applies a whole batch ``ΔG`` to the graph first and
repairs the sequence in a single pass:

* the seeds of all edges are collected (sorted by their index in ``O``) and
  coloured **black**;
* the reordering engine then walks the sequence once, recolouring
  neighbours **gray** as vertices enter the pending queue and re-emitting
  untouched **white** vertices verbatim.

The asymptotic cost drops from ``O(|ΔE| · |E_T| log |V_T|)`` for one-by-one
maintenance to ``O(|E_T| + |E_T| log |V_T|)`` for the whole batch.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.reorder import ReorderStats, reorder_after_insertions
from repro.core.state import PeelingState
from repro.graph.delta import EdgeUpdate, GraphDelta
from repro.graph.graph import Vertex

__all__ = ["insert_batch", "normalize_updates"]

BatchInput = Union[GraphDelta, Iterable[Union[EdgeUpdate, Tuple]]]


def normalize_updates(batch: BatchInput) -> List[EdgeUpdate]:
    """Coerce the accepted batch shapes into a list of :class:`EdgeUpdate`.

    Accepted shapes: a :class:`GraphDelta`, an iterable of
    :class:`EdgeUpdate`, or an iterable of ``(src, dst[, weight])``
    sequences — tuples, lists, or any other 2/3-length sequence (JSONL
    replay hands back lists, for instance).  Strings are rejected rather
    than being misread as two single-character endpoints.
    """
    if isinstance(batch, GraphDelta):
        return list(batch.updates)
    updates: List[EdgeUpdate] = []
    for item in batch:
        if isinstance(item, EdgeUpdate):
            updates.append(item)
            continue
        if isinstance(item, (str, bytes)):
            raise TypeError(f"unsupported update {item!r}")
        try:
            length = len(item)
        except TypeError:
            raise TypeError(f"unsupported update {item!r}") from None
        if length == 2:
            updates.append(EdgeUpdate(item[0], item[1]))
        elif length == 3:
            updates.append(EdgeUpdate(item[0], item[1], float(item[2])))
        else:
            raise TypeError(f"unsupported update {item!r}")
    return updates


def insert_batch(state: PeelingState, batch: BatchInput) -> ReorderStats:
    """Insert a batch of edges and repair the peeling sequence in one pass.

    Deletions present in the batch are rejected here; mixed batches are
    handled by :func:`repro.core.deletion.delete_edges` /
    :class:`repro.core.windows.TimeWindowDetector`, which fall back to a
    suffix re-peel.
    """
    updates = normalize_updates(batch)
    if any(update.delete for update in updates):
        raise ValueError("insert_batch only handles insertions; use delete_edges for deletions")
    if not updates:
        return ReorderStats()

    graph = state.graph
    semantics = state.semantics
    interner = graph.interner

    added = 0.0
    seed_ids: List[int] = []
    seen_seeds = set()

    # Pass 1: create any new vertices so every endpoint has a position.
    for update in updates:
        for vertex, prior in ((update.src, update.src_weight), (update.dst, update.dst_weight)):
            if graph.has_vertex(vertex):
                continue
            weight = float(prior) if prior is not None else semantics.vertex_weight(vertex, graph)
            graph.add_vertex(vertex, weight)
            vid = state.prepend_vertex(vertex, weight)
            added += weight
            if vid not in seen_seeds:
                seen_seeds.add(vid)
                seed_ids.append(vid)

    # Pass 2: apply the edges and collect the earlier endpoint of each.
    for update in updates:
        edge_weight = semantics.edge_weight(update.src, update.dst, update.weight, graph)
        graph.add_edge(update.src, update.dst, edge_weight)
        added += edge_weight
        src_id = interner.id_of(update.src)
        dst_id = interner.id_of(update.dst)
        earlier = src_id if state.position_id(src_id) <= state.position_id(dst_id) else dst_id
        if earlier not in seen_seeds:
            seen_seeds.add(earlier)
            seed_ids.append(earlier)

    state.add_total(added)
    return reorder_after_insertions(state, seed_ids=seed_ids)
