"""Edge deletion maintenance (Appendix C.1 of the paper).

Companies periodically drop outdated transactions.  Deleting an edge
``(u_i, u_j)`` can only make its endpoints *lighter*, so — unlike
insertion — the affected region can extend **backwards**: a now-lighter
endpoint may deserve to be peeled earlier than before.

The reproduction uses a conservative but exactly correct variant of the
appendix sketch:

1. Compute a *safe prefix* bound.  By Lemma A.1 (monotonicity of peeling
   weights) the new weight of ``u_i`` with respect to any earlier suffix is
   at least ``Δ_i - c`` (its old weight at its own position minus the
   deleted weight), and likewise for ``u_j``.  Every prefix position whose
   recorded weight stays strictly below that bound is therefore still a
   valid greedy choice and is kept untouched.
2. Re-peel the remaining suffix of the sequence on the updated graph
   (a restricted run of Algorithm 1) and splice it back.

This preserves the incremental flavour — the untouched prefix is usually
the bulk of the sequence — while avoiding the subtle bookkeeping of a
bidirectional pending queue.  The same routine also powers mixed
insert/delete maintenance for the time-window detector (Appendix C.3).

Like the insertion paths, :func:`delete_edges` returns a
:class:`~repro.core.reorder.ReorderStats` so callers (``Spade.last_stats``,
benchmarks) get uniform cost accounting; the deletion-specific counter is
``repeeled_positions``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.core.reorder import ReorderStats
from repro.core.state import PeelingState
from repro.graph.graph import Vertex
from repro.peeling.static import peel_csr_ids, peel_subset_ids

__all__ = ["delete_edges", "safe_prefix_bound", "repeel_suffix"]

#: Suffix sizes below this always take the heap re-peel; freezing a CSR
#: snapshot is O(|V| + |E|), which only pays off for big affected areas.
_CSR_REPEEL_MIN_SUFFIX = 1024


def safe_prefix_bound(state: PeelingState, lightened: Iterable[Tuple[Vertex, float]]) -> int:
    """Return the first sequence position that may be affected by deletions.

    ``lightened`` lists ``(vertex, removed_weight)`` pairs for every vertex
    that lost incident weight.  Positions ``[0, bound)`` are guaranteed to
    be unaffected; the suffix from ``bound`` must be re-peeled.
    """
    lightened = list(lightened)
    if not lightened:
        return len(state)
    removed_per_vertex: dict = {}
    for vertex, removed in lightened:
        removed_per_vertex[vertex] = removed_per_vertex.get(vertex, 0.0) + removed
    floor = float("inf")
    weights = state.weights
    for vertex, removed in removed_per_vertex.items():
        if vertex not in state:
            continue
        position = state.position(vertex)
        floor = min(floor, float(weights[position]) - removed)
    if floor == float("inf"):
        return len(state)
    # First position whose recorded weight reaches the floor (conservative:
    # ties count as affected).
    above = np.nonzero(weights >= floor - 1e-12)[0]
    return int(above[0]) if len(above) else len(state)


def repeel_suffix(state: PeelingState, start: int, use_csr: Optional[bool] = None) -> int:
    """Re-run the static peel on ``order[start:]`` and splice it back.

    Returns the number of re-peeled vertices (the affected area).

    When the suffix dominates the sequence (at least half of it, and at
    least ``_CSR_REPEEL_MIN_SUFFIX`` vertices) and the backend can freeze,
    the re-peel runs over an immutable CSR snapshot
    (:func:`repro.peeling.static.peel_csr_ids`) — bit-identical to the
    heap re-peel but with vectorised weight recovery.  ``use_csr`` forces
    the choice either way (used by the differential tests).
    """
    suffix_ids = state.order_ids[start:]
    if len(suffix_ids) == 0:
        state.invalidate()
        return 0
    graph = state.graph
    if use_csr is None:
        use_csr = (
            hasattr(graph, "freeze")
            and len(suffix_ids) >= _CSR_REPEEL_MIN_SUFFIX
            and 2 * len(suffix_ids) >= len(state)
        )
    if use_csr:
        order_ids, weights, _total = peel_csr_ids(
            graph, suffix_ids, kernel=getattr(state, "kernel", None)
        )
    else:
        order_ids, weights, _total = peel_subset_ids(graph, suffix_ids)
    state.write_segment_ids(start, order_ids, np.asarray(weights, dtype=np.float64))
    return len(suffix_ids)


def delete_edges(
    state: PeelingState,
    edges: Iterable[Tuple[Vertex, Vertex]],
    prune_isolated: bool = False,
) -> ReorderStats:
    """Delete edges from the graph and restore a valid peeling sequence.

    Parameters
    ----------
    state:
        The maintained peeling state.
    edges:
        Iterable of ``(src, dst)`` pairs to remove.  Unknown edges are
        ignored (deletions race benignly with upstream retention jobs).
    prune_isolated:
        Kept for API symmetry; vertices are never removed because the
        paper's model keeps the vertex set fixed.

    Returns
    -------
    ReorderStats
        Cost accounting for the pass: ``repeeled_positions`` counts the
        suffix positions re-peeled (0 when nothing known was deleted) and
        ``moved_vertices`` the positions whose vertex or weight actually
        changed.
    """
    del prune_isolated  # vertices always stay, matching the paper's model
    graph = state.graph
    stats = ReorderStats()
    lightened: List[Tuple[Vertex, float]] = []
    removed_total = 0.0
    for src, dst in edges:
        if not graph.has_edge(src, dst):
            continue
        weight = graph.remove_edge(src, dst)
        removed_total += weight
        lightened.append((src, weight))
        lightened.append((dst, weight))
    if not lightened:
        return stats
    state.add_total(-removed_total)
    bound = safe_prefix_bound(state, lightened)

    before_ids = state.order_ids[bound:].copy()
    before_weights = state.weights[bound:].copy()
    repeeled = repeel_suffix(state, bound)
    stats.repeeled_positions = repeeled
    stats.scanned_positions = repeeled
    if repeeled:
        stats.islands = 1
        stats.moved_vertices = int(
            np.count_nonzero(
                (state.order_ids[bound:] != before_ids)
                | (state.weights[bound:] != before_weights)
            )
        )
    return stats
