"""The Spade framework: incremental peeling on evolving graphs.

Modules
-------
``spade``
    The public :class:`~repro.core.spade.Spade` API mirroring Listing 1 of
    the paper (``VSusp`` / ``ESusp`` / ``Detect`` / ``InsertEdge`` /
    ``InsertBatchEdges`` plus the built-in ``IsBenign`` / ``ReorderSeq``).
``state``
    The maintained peeling-sequence state ``(O, Δ, f(V))``.
``reorder``
    The shared peeling-sequence reordering engine used by both single-edge
    insertion (Section 4.1) and batch insertion (Algorithm 2).
``insertion`` / ``batch``
    Thin, documented entry points for the two insertion granularities.
``grouping``
    Edge grouping: benign vs urgent edges and the deferred-batch paradigm
    of Algorithm 3 (Section 4.3).
``deletion``
    Edge deletion maintenance (Appendix C.1).
``enumeration``
    Dense-subgraph enumeration (Appendix C.2).
``windows``
    Fraud detection during a time period (Appendix C.3).
"""

from repro.core.spade import Spade
from repro.core.state import PeelingState
from repro.core.reorder import ReorderStats
from repro.core.insertion import insert_edge
from repro.core.batch import insert_batch
from repro.core.grouping import EdgeGrouper, is_benign
from repro.core.deletion import delete_edges
from repro.core.enumeration import enumerate_communities
from repro.core.windows import TimeWindowDetector

__all__ = [
    "Spade",
    "PeelingState",
    "ReorderStats",
    "insert_edge",
    "insert_batch",
    "EdgeGrouper",
    "is_benign",
    "delete_edges",
    "enumerate_communities",
    "TimeWindowDetector",
]
